//! The cluster determinism contract, end to end: for every serve method,
//! an explanation computed (1) directly against the library, (2) by a
//! single-shard [`ServeEngine`], and (3) by a multi-shard [`ServeCluster`]
//! is **bit-identical** (`f64::to_bits`) — under the forced-scalar SoA
//! kernel and the forced-SIMD one alike.
//!
//! This is possible because every stochastic explainer is seeded from
//! request *content* (`request_seed(engine seed, cache-key hash)`), never
//! from arrival order, worker identity, or shard identity — so the test
//! can reconstruct the serving layer's exact seeds from public pieces.
//!
//! The SIMD arms share one `#[test]` on purpose: the force switches are
//! process-global, so they must never run concurrently with each other.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::cache::CacheKey;
use nfv_serve::prelude::*;
use nfv_serve::request::request_seed;
use nfv_xai::prelude::*;
use std::time::Duration;

const SEED: u64 = 42;

struct Fixture {
    gbdt: Gbdt,
    packed: SoaForest,
    names: Vec<String>,
    background: Background,
    groups: FeatureGroups,
    rows: Vec<Vec<f64>>,
}

fn fixture() -> Fixture {
    let synth = friedman1(300, 5, 0.1, 11).unwrap();
    let gbdt = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 15,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let packed = SoaForest::from_gbdt(&gbdt).unwrap();
    let names = synth.data.names.clone();
    let d = names.len();
    // The same derivation the registry performs at registration.
    let groups = FeatureGroups::per_stage(&names)
        .unwrap_or_else(|_| FeatureGroups::new(vec!["all".into()], vec![0; d]).unwrap());
    Fixture {
        gbdt,
        packed,
        names,
        background: Background::from_dataset(&synth.data, 16, 1).unwrap(),
        groups,
        rows: vec![
            synth.data.row(0).to_vec(),
            synth.data.row(7).to_vec(),
            synth.data.row(13).to_vec(),
        ],
    }
}

fn methods() -> Vec<ExplainMethod> {
    vec![
        ExplainMethod::TreeShap,
        ExplainMethod::KernelShap { n_coalitions: 32 },
        ExplainMethod::Lime { n_samples: 64 },
        ExplainMethod::SamplingShapley {
            n_permutations: 6,
            antithetic: true,
        },
        ExplainMethod::ExactShapley,
        ExplainMethod::GroupedShapley,
        ExplainMethod::Permutation,
    ]
}

/// The library-level computation the serving layer must reproduce bit for
/// bit, seeded exactly as a worker would seed it for `version`.
fn direct(f: &Fixture, x: &[f64], method: ExplainMethod, version: u64, grid: f64) -> Attribution {
    let key = CacheKey::build("m", version, method, x, grid).unwrap();
    let seed = request_seed(SEED, key.stable_hash());
    let base = Some(f.background.expected_output(&f.packed));
    match method {
        ExplainMethod::TreeShap => gbdt_shap(&f.gbdt, x, &f.names).unwrap(),
        ExplainMethod::KernelShap { n_coalitions } => kernel_shap(
            &f.packed,
            x,
            &f.background,
            &f.names,
            &KernelShapConfig {
                n_coalitions,
                ridge: 0.0,
                seed,
            },
        )
        .unwrap(),
        ExplainMethod::Lime { n_samples } => {
            let cfg = LimeConfig {
                n_samples,
                seed,
                ..LimeConfig::default()
            };
            lime(&f.packed, x, &f.background, &f.names, &cfg)
                .unwrap()
                .attribution
        }
        ExplainMethod::SamplingShapley {
            n_permutations,
            antithetic,
        } => sampling_shapley(
            &f.packed,
            x,
            &f.background,
            &f.names,
            &SamplingConfig {
                n_permutations,
                antithetic,
                seed,
            },
        )
        .unwrap(),
        ExplainMethod::ExactShapley => {
            exact_shapley(&f.packed, x, &f.background, &f.names).unwrap()
        }
        ExplainMethod::GroupedShapley => {
            grouped_shapley(&f.packed, x, &f.background, &f.groups).unwrap()
        }
        ExplainMethod::Permutation => {
            instance_permutation(&f.packed, x, &f.background, &f.names, base).unwrap()
        }
        other => unreachable!("not part of this suite: {other:?}"),
    }
}

fn bits(a: &Attribution) -> (Vec<u64>, u64, u64) {
    (
        a.values.iter().map(|v| v.to_bits()).collect(),
        a.base_value.to_bits(),
        a.prediction.to_bits(),
    )
}

/// One full pass under whichever SoA kernel is currently forced: fresh
/// engine + fresh 3-shard cluster (fresh so no cache entry computed under
/// the *other* kernel can satisfy a request in this arm).
fn run_arm(f: &Fixture, arm: &str) {
    let cfg = ServeConfig {
        seed: SEED,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(cfg);
    let cluster = ServeCluster::start(ClusterConfig {
        shards: 3,
        shard: cfg,
        ..ClusterConfig::default()
    });
    let ev = engine
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(f.gbdt.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();
    let cv = cluster
        .register(
            "m",
            ServeModel::Gbdt(f.gbdt.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();
    assert_eq!(ev, cv, "fresh registries must assign the same version");

    for method in methods() {
        for x in &f.rows {
            let want = bits(&direct(f, x, method, ev, cfg.quantization_grid));
            let req = || ExplainRequest {
                model_id: "m".into(),
                features: x.clone(),
                method,
                budget: Duration::from_secs(30),
            };
            let via_engine = engine.explain(req()).unwrap();
            let via_cluster = cluster.explain(req()).unwrap();
            assert!(!via_engine.cache_hit && !via_cluster.cache_hit);
            assert_eq!(via_engine.model_version, ev);
            assert_eq!(via_cluster.model_version, cv);
            assert_eq!(
                bits(&via_engine.attribution),
                want,
                "[{arm}] engine diverged from direct on {method:?}"
            );
            assert_eq!(
                bits(&via_cluster.attribution),
                want,
                "[{arm}] cluster diverged from direct on {method:?}"
            );
        }
    }
    engine.shutdown();
    cluster.shutdown();
}

#[test]
fn cluster_engine_and_direct_are_bit_identical_under_both_kernels() {
    let f = fixture();

    set_force_scalar(true);
    run_arm(&f, "scalar");

    if set_force_simd(true) {
        run_arm(&f, "simd");
    } else {
        eprintln!("host has no SIMD kernel; scalar arm covered the invariant");
    }
    set_force_simd(false); // back to runtime detection
}
