//! Integration: every explanation method scored against analytic ground
//! truth — the linear-Gaussian task (closed-form Shapley values), known
//! relevant/irrelevant features, and the Clever Hans unmasking.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_xai::prelude::*;

fn names_of(data: &Dataset) -> Vec<String> {
    data.names.clone()
}

/// All local methods must recover w_i(x_i − μ_i) on a linear model over
/// independent features.
#[test]
fn all_methods_agree_with_closed_form_on_linear_ground_truth() {
    let s = linear_gaussian(1_000, 4, 2, 0.0, 5).unwrap();
    let bg = Background::from_dataset(&s.data, 60, 1).unwrap();
    let coefs = s.coefficients.clone();
    let model = FnModel::new(6, move |x: &[f64]| {
        x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
    });
    let x = s.data.row(17).to_vec();
    let truth: Vec<f64> = s
        .coefficients
        .iter()
        .zip(&x)
        .zip(&bg.means)
        .map(|((w, xi), mu)| w * (xi - mu))
        .collect();
    let names = names_of(&s.data);

    let exact = exact_shapley(&model, &x, &bg, &names).unwrap();
    let kernel = kernel_shap(&model, &x, &bg, &names, &KernelShapConfig::for_features(6)).unwrap();
    let sampled = sampling_shapley(
        &model,
        &x,
        &bg,
        &names,
        &SamplingConfig {
            n_permutations: 4_000,
            antithetic: true,
            seed: 2,
        },
    )
    .unwrap();
    let limed = lime(&model, &x, &bg, &names, &LimeConfig::default())
        .unwrap()
        .attribution;

    for (i, &t) in truth.iter().enumerate() {
        assert!((exact.values[i] - t).abs() < 1e-9, "exact[{i}]");
        assert!((kernel.values[i] - t).abs() < 1e-6, "kernel[{i}]");
        assert!(
            (sampled.values[i] - t).abs() < 0.15,
            "sampled[{i}]: {} vs {}",
            sampled.values[i],
            t
        );
        assert!(
            (limed.values[i] - t).abs() < 0.15,
            "lime[{i}]: {} vs {}",
            limed.values[i],
            t
        );
    }
}

/// TreeSHAP's global ranking on Friedman #1 must put the five causal
/// features above every noise feature.
#[test]
fn tree_shap_global_ranking_matches_known_relevance() {
    let s = friedman1(2_000, 10, 0.3, 6).unwrap();
    let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
    let names = names_of(&s.data);
    let instances: Vec<Vec<f64>> = (0..300).map(|i| s.data.row(i).to_vec()).collect();
    let attrs = explain_batch(&instances, 4, |x| gbdt_shap(&g, x, &names)).unwrap();
    let global = mean_absolute_attribution(&attrs);
    let min_relevant = s
        .relevant
        .iter()
        .map(|&i| global[i])
        .fold(f64::INFINITY, f64::min);
    let max_noise = (5..10).map(|i| global[i]).fold(0.0f64, f64::max);
    assert!(
        min_relevant > 2.0 * max_noise,
        "relevant floor {min_relevant} vs noise ceiling {max_noise}"
    );
}

/// Shapley splits pure-interaction credit between the interacting pair;
/// marginal methods (PDP total variation) see nothing.
#[test]
fn interaction_task_separates_shapley_from_marginal_views() {
    let s = interaction_xor(2_000, 2, 7).unwrap();
    let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
    let names = names_of(&s.data);
    let instances: Vec<Vec<f64>> = (0..200).map(|i| s.data.row(i).to_vec()).collect();
    let attrs = explain_batch(&instances, 4, |x| gbdt_shap(&g, x, &names)).unwrap();
    let global = mean_absolute_attribution(&attrs);
    assert!(global[0] > 4.0 * global[2], "{global:?}");
    assert!(global[1] > 4.0 * global[2], "{global:?}");

    // PDP on either interacting feature is nearly flat (no marginal
    // effect), even though the feature is crucial — the documented failure
    // mode of marginal views that Shapley avoids.
    let surface = ProbaSurface(&g);
    let pd0 = partial_dependence(&surface, &s.data, 0, 11, false).unwrap();
    let pd2 = partial_dependence(&surface, &s.data, 2, 11, false).unwrap();
    assert!(
        pd0.total_variation() < 0.2,
        "marginal view is blind to the interaction: {}",
        pd0.total_variation()
    );
    let _ = pd2;
}

/// The fidelity battery must rank a real explanation above a random one.
#[test]
fn deletion_fidelity_prefers_shap_over_random_ordering() {
    let s = friedman1(1_200, 8, 0.2, 8).unwrap();
    let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
    let names = names_of(&s.data);
    let bg = Background::from_dataset(&s.data, 40, 2).unwrap();

    // Explain 40 high-prediction instances (deletion is most informative
    // above the base value).
    let mut idx: Vec<usize> = (0..s.data.n_rows()).collect();
    let preds: Vec<f64> = s.data.rows().map(|r| Regressor::predict(&g, r)).collect();
    idx.sort_by(|&a, &b| preds[b].total_cmp(&preds[a]));
    let instances: Vec<Vec<f64>> = idx[..40].iter().map(|&i| s.data.row(i).to_vec()).collect();
    let attrs = explain_batch(&instances, 4, |x| gbdt_shap(&g, x, &names)).unwrap();

    let shap_orders: Vec<Vec<usize>> = attrs.iter().map(|a| a.order_by_magnitude()).collect();
    let random_orders: Vec<Vec<usize>> = (0..instances.len())
        .map(|i| {
            let mut o: Vec<usize> = (0..8).collect();
            o.rotate_left(i % 8); // deterministic arbitrary orders
            o
        })
        .collect();
    let shap = fidelity_summary(&g, &instances, &shap_orders, &bg).unwrap();
    let random = fidelity_summary(&g, &instances, &random_orders, &bg).unwrap();
    assert!(
        shap.deletion_auc < random.deletion_auc,
        "shap deletion {} vs random {}",
        shap.deletion_auc,
        random.deletion_auc
    );
    assert!(
        shap.insertion_auc > random.insertion_auc,
        "shap insertion {} vs random {}",
        shap.insertion_auc,
        random.insertion_auc
    );
}

/// The Clever Hans leak must dominate SHAP rankings of a leaky model and
/// vanish from an honest one.
#[test]
fn clever_hans_is_unmasked_by_global_shap() {
    let leaky = clever_hans_nfv(3_000, 0.95, 9).unwrap();
    let model = Gbdt::fit(
        &leaky.data,
        &GbdtParams {
            n_rounds: 80,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let names = names_of(&leaky.data);
    let instances: Vec<Vec<f64>> = (0..200).map(|i| leaky.data.row(i).to_vec()).collect();
    let attrs = explain_batch(&instances, 4, |x| gbdt_shap(&model, x, &names)).unwrap();
    let global = mean_absolute_attribution(&attrs);
    let leak = leaky.data.feature_index("mon_debug_counter").unwrap();
    let top = (0..global.len())
        .max_by(|&a, &b| global[a].total_cmp(&global[b]))
        .unwrap();
    assert_eq!(top, leak, "the leak must top the ranking: {global:?}");

    // Permutation importance agrees.
    let pi = permutation_importance(
        &ProbaSurface(&model),
        &leaky.data,
        &PermutationConfig::default(),
    )
    .unwrap();
    assert_eq!(pi.ranking()[0], leak);
}
