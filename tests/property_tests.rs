//! Property-based tests (proptest) on the invariants the whole stack
//! leans on: Shapley efficiency on arbitrary models, histogram/quantile
//! laws, queueing monotonicity, dataset round-trips, and rank-metric
//! bounds.

use nfv_data::prelude::*;
use nfv_data::stats;
use nfv_ml::prelude::*;
use nfv_sim::prelude::*;
use nfv_sim::queueing;
use nfv_sim::rng::SimRng;
use nfv_xai::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact Shapley is efficient for ANY polynomial model, instance and
    /// background.
    #[test]
    fn exact_shapley_is_always_efficient(
        x in prop::collection::vec(-5.0f64..5.0, 3),
        bg_rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 1..6),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -2.0f64..2.0,
    ) {
        let bg = Background::from_rows(bg_rows).unwrap();
        let model = FnModel::new(3, move |v: &[f64]| {
            a * v[0] * v[1] + b * v[2] * v[2] + c * v[0]
        });
        let names: Vec<String> = (0..3).map(|i| format!("x{i}")).collect();
        let attr = exact_shapley(&model, &x, &bg, &names).unwrap();
        prop_assert!(attr.efficiency_gap().abs() < 1e-8,
            "gap {}", attr.efficiency_gap());
    }

    /// KernelSHAP's constraint makes it efficient at any budget.
    #[test]
    fn kernel_shap_is_always_efficient(
        x in prop::collection::vec(-3.0f64..3.0, 4),
        budget in 8usize..64,
        seed in 0u64..1000,
    ) {
        let bg = Background::from_rows(vec![
            vec![0.0, 0.5, -0.5, 1.0],
            vec![1.0, -1.0, 0.0, 0.0],
        ]).unwrap();
        let model = FnModel::new(4, |v: &[f64]| v[0].sin() + v[1] * v[2] - v[3]);
        let names: Vec<String> = (0..4).map(|i| format!("x{i}")).collect();
        let attr = kernel_shap(&model, &x, &bg, &names, &KernelShapConfig {
            n_coalitions: budget, ridge: 1e-8, seed,
        }).unwrap();
        prop_assert!(attr.efficiency_gap().abs() < 1e-7);
    }

    /// TreeSHAP is efficient on arbitrary fitted trees at arbitrary probes.
    #[test]
    fn tree_shap_is_always_efficient(
        seed in 0u64..500,
        probe in prop::collection::vec(0.0f64..1.0, 5),
    ) {
        let s = friedman1(150, 5, 0.3, seed).unwrap();
        let tree = DecisionTree::fit(&s.data, &TreeParams::default(), seed).unwrap();
        let names: Vec<String> = (0..5).map(|i| format!("x{i}")).collect();
        let attr = tree_shap(&tree, &probe, &names).unwrap();
        prop_assert!(attr.efficiency_gap().abs() < 1e-8,
            "gap {}", attr.efficiency_gap());
    }

    /// Histogram quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in prop::collection::vec(1u64..10_000_000_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimDuration(s));
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile_secs(lo) <= h.quantile_secs(hi) + 1e-15);
        prop_assert!(h.quantile_secs(0.0) <= h.quantile_secs(1.0));
        // Interior quantiles are bucket midpoints: allow one bucket width
        // (~4.5%) of slack around the exact sample extremes.
        let min = *samples.iter().min().unwrap() as f64 * 1e-9;
        let max = *samples.iter().max().unwrap() as f64 * 1e-9;
        prop_assert!(h.quantile_secs(lo) >= min * 0.95 - 1e-12);
        prop_assert!(h.quantile_secs(hi) <= max * 1.05 + 1e-12);
    }

    /// M/G/1 wait grows with load and with service variability.
    #[test]
    fn mg1_wait_is_monotone(
        mu in 1.0f64..1000.0,
        rho1 in 0.05f64..0.9,
        drho in 0.01f64..0.09,
        cv in 0.0f64..2.0,
    ) {
        let ms = 1.0 / mu;
        let w1 = queueing::mg1_mean_wait(rho1 * mu, ms, cv);
        let w2 = queueing::mg1_mean_wait((rho1 + drho) * mu, ms, cv);
        prop_assert!(w2 >= w1);
        let w_smoother = queueing::mg1_mean_wait(rho1 * mu, ms, cv * 0.5);
        prop_assert!(w_smoother <= w1 + 1e-12);
    }

    /// CSV round-trip is lossless for arbitrary finite datasets.
    #[test]
    fn csv_roundtrip_is_lossless(
        rows in 1usize..20,
        cols in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = SimRng::new(seed);
        let x: Vec<f64> = (0..rows * cols).map(|_| rng.normal(0.0, 100.0)).collect();
        let y: Vec<f64> = (0..rows).map(|_| rng.normal(0.0, 10.0)).collect();
        let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        let d = Dataset::new(names, x, y, Task::Regression).unwrap();
        let back = from_csv(&to_csv(&d), Task::Regression).unwrap();
        prop_assert_eq!(back, d);
    }

    /// Rank correlations stay in [−1, 1] and are symmetric.
    #[test]
    fn rank_correlations_are_bounded_and_symmetric(
        a in prop::collection::vec(-100.0f64..100.0, 2..30),
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let b: Vec<f64> = a.iter().map(|v| v + rng.normal(0.0, 50.0)).collect();
        let sp = stats::spearman(&a, &b);
        let kt = stats::kendall_tau(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&sp), "spearman {sp}");
        prop_assert!((-1.0..=1.0).contains(&kt), "kendall {kt}");
        prop_assert!((stats::spearman(&b, &a) - sp).abs() < 1e-12);
        prop_assert!((stats::kendall_tau(&b, &a) - kt).abs() < 1e-12);
    }

    /// The event queue dispatches any schedule in nondecreasing time order
    /// with FIFO ties.
    #[test]
    fn event_queue_is_totally_ordered(
        times in prop::collection::vec(0u64..1_000, 1..100),
    ) {
        let mut q = nfv_sim::event::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time);
            if t != last_time {
                seen_at_time.clear();
                last_time = t;
            }
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(id > prev, "FIFO tie-break violated");
            }
            seen_at_time.push(id);
        }
    }

    /// Scalers invert exactly on arbitrary rows within the fitted space.
    #[test]
    fn scaler_roundtrip(
        seed in 0u64..5_000,
        probe in prop::collection::vec(-50.0f64..50.0, 4),
    ) {
        let mut rng = SimRng::new(seed);
        let x: Vec<f64> = (0..80).map(|_| rng.normal(0.0, 10.0)).collect();
        let d = Dataset::new(
            (0..4).map(|i| format!("c{i}")).collect(),
            x,
            vec![0.0; 20],
            Task::Regression,
        ).unwrap();
        let sc = Scaler::standard(&d);
        let mut row = probe.clone();
        sc.transform_row(&mut row).unwrap();
        sc.inverse_row(&mut row).unwrap();
        for (a, b) in row.iter().zip(&probe) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Tree predictions are always a convex combination of training
    /// targets (within [min y, max y]).
    #[test]
    fn tree_predictions_stay_in_target_range(
        seed in 0u64..2_000,
        probe in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let s = linear_gaussian(100, 3, 1, 0.5, seed).unwrap();
        let tree = DecisionTree::fit(&s.data, &TreeParams::default(), seed).unwrap();
        let lo = s.data.y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = s.data.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p = Regressor::predict(&tree, &probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }
}

/// Named, boxed fitted models for the batched-evaluation equivalence tests.
type ModelZoo = Vec<(&'static str, Box<dyn Regressor>)>;

/// Fitted instances of every `Regressor` the crate ships, plus a shared
/// background — built once (fitting per proptest case would dominate the
/// runtime) and reused by the batched-evaluation equivalence tests below.
fn coalition_fixture() -> &'static (Background, ModelZoo) {
    static FIX: std::sync::OnceLock<(Background, ModelZoo)> = std::sync::OnceLock::new();
    FIX.get_or_init(|| {
        let s = friedman1(150, 5, 0.2, 42).unwrap();
        let bg = Background::from_dataset(&s.data, 6, 1).unwrap();
        let models: Vec<(&'static str, Box<dyn Regressor>)> = vec![
            (
                "tree",
                Box::new(DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap()),
            ),
            (
                "forest",
                Box::new(
                    RandomForest::fit(
                        &s.data,
                        &ForestParams {
                            n_trees: 10,
                            ..Default::default()
                        },
                        0,
                        1,
                    )
                    .unwrap(),
                ),
            ),
            (
                "gbdt",
                Box::new(
                    Gbdt::fit(
                        &s.data,
                        &GbdtParams {
                            n_rounds: 10,
                            ..Default::default()
                        },
                        0,
                    )
                    .unwrap(),
                ),
            ),
            (
                "mlp",
                Box::new(
                    Mlp::fit(
                        &s.data,
                        &MlpParams {
                            hidden: vec![8],
                            epochs: 20,
                            ..Default::default()
                        },
                        0,
                    )
                    .unwrap(),
                ),
            ),
            (
                "linear",
                Box::new(LinearRegression::fit(&s.data, 1e-6).unwrap()),
            ),
        ];
        (bg, models)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The blocked coalition evaluator is bit-identical to the scalar
    /// `coalition_value` loop for every model type the crate ships —
    /// the invariant that lets every explainer route through
    /// `predict_batch` without changing a single attribution.
    #[test]
    fn batched_coalition_values_match_scalar_for_every_model(
        x in prop::collection::vec(0.0f64..1.0, 5),
        coalition_bits in prop::collection::vec(prop::collection::vec(0u8..2, 5), 1..12),
    ) {
        let coalitions: Vec<Vec<bool>> = coalition_bits
            .iter()
            .map(|row| row.iter().map(|&b| b == 1).collect())
            .collect();
        let (bg, models) = coalition_fixture();
        let mut ws = CoalitionWorkspace::default();
        for (kind, model) in models {
            let bulk = bg.coalition_values(model.as_ref(), &x, &coalitions, &mut ws);
            for (members, v) in coalitions.iter().zip(&bulk) {
                let scalar = bg.coalition_value(model.as_ref(), &x, members);
                prop_assert!(
                    v.to_bits() == scalar.to_bits(),
                    "{kind}: bulk {v} != scalar {scalar} for {members:?}"
                );
            }
        }
    }

    /// `predict_batch` itself is bit-identical to the scalar `predict`
    /// loop for every model type (the trait-override contract).
    #[test]
    fn predict_batch_matches_scalar_predict_for_every_model(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 5), 1..20),
    ) {
        let (_, models) = coalition_fixture();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        for (kind, model) in models {
            let batch = model.predict_batch(&refs);
            for (row, b) in refs.iter().zip(&batch) {
                let s = model.predict(row);
                prop_assert!(b.to_bits() == s.to_bits(), "{kind}: batch {b} != scalar {s}");
            }
        }
    }

    /// Serving batches are invisible in the output: explaining a set of
    /// instances through the batch path (any thread count, with or without
    /// per-thread workspaces) is bit-for-bit the same as explaining each
    /// alone with its own seed.
    #[test]
    fn batched_explanations_match_one_at_a_time(
        instances in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 4), 1..8),
        threads in 1usize..5,
        seed0 in 0u64..1_000,
    ) {
        let bg = Background::from_rows(vec![
            vec![0.0, 0.5, -0.5, 1.0],
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-0.5, 0.0, 1.0, 0.5],
        ]).unwrap();
        let model = FnModel::new(4, |v: &[f64]| v[0].sin() + v[1] * v[2] - v[3].abs());
        let names: Vec<String> = (0..4).map(|i| format!("x{i}")).collect();
        let seeds: Vec<u64> = (0..instances.len()).map(|i| seed0 + 31 * i as u64).collect();
        let cfg_for = |seed| KernelShapConfig { n_coalitions: 24, ridge: 1e-8, seed };
        let batched = explain_batch_seeded(&instances, &seeds, threads, |x, seed| {
            kernel_shap(&model, x, &bg, &names, &cfg_for(seed))
        }).unwrap();
        for (i, x) in instances.iter().enumerate() {
            let alone = kernel_shap(&model, x, &bg, &names, &cfg_for(seeds[i])).unwrap();
            prop_assert_eq!(&batched[i], &alone);
        }
        // The workspace-carrying pool must agree at every thread count:
        // scratch reuse is invisible, so results cannot depend on how
        // instances were sliced across workers.
        for ws_threads in [1usize, 2, 4] {
            let pooled = explain_batch_seeded_ws(
                &instances, &seeds, ws_threads, CoalitionWorkspace::default,
                |x, seed, ws| kernel_shap_with(&model, x, &bg, &names, &cfg_for(seed), ws),
            ).unwrap();
            prop_assert_eq!(&pooled, &batched, "ws pool diverged at {} threads", ws_threads);
        }
    }

    /// Whatever the operation mix (inserts, lookups, version bumps,
    /// evictions in a tiny cache), a lookup keyed to the current model
    /// version never observes an entry written under a different version.
    #[test]
    fn lru_cache_never_serves_a_stale_model_version(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u8..3, 0i64..6), 1..80),
    ) {
        use nfv_serve::cache::{CacheKey, ShardedCache};
        use nfv_serve::request::ExplainMethod;
        // Cold tier enabled: evictions demote to quantized entries, and
        // the staleness property must hold across both tiers.
        let cache = ShardedCache::new(capacity, capacity * 4, 2);
        let mut version = 1u64;
        let key_of = |version: u64, cell: i64| CacheKey::build(
            "m", version, ExplainMethod::TreeShap, &[cell as f64], 1.0,
        ).unwrap();
        // The cached value records the version it was computed under.
        let attr_of = |version: u64, cell: i64| std::sync::Arc::new(Attribution {
            names: vec!["f".into()],
            values: vec![cell as f64],
            base_value: 0.0,
            prediction: version as f64,
            method: "test".into(),
        });
        for (op, cell) in ops {
            match op {
                // A re-registration: the world moves to a new version.
                0 => version += 1,
                1 => cache.insert(key_of(version, cell), attr_of(version, cell)),
                _ => {
                    if let Some((hit, fidelity)) = cache.get(&key_of(version, cell)) {
                        // Prediction stays exact f64 in both tiers, so it
                        // is a version check even on quantized hits.
                        prop_assert_eq!(hit.prediction, version as f64,
                            "entry from version {} served at version {}",
                            hit.prediction, version);
                        prop_assert!(
                            (hit.values[0] - cell as f64).abs() <= fidelity.max_abs_err(),
                            "value {} vs {} exceeds the typed bound {}",
                            hit.values[0], cell, fidelity.max_abs_err());
                    }
                }
            }
        }
    }
}
