//! End-to-end integration: simulator → dataset → model → explanation →
//! operator report, through public APIs only.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_sim::prelude::*;
use nfv_xai::prelude::*;

#[test]
fn full_pipeline_fluid_backend() {
    // Simulate, featurize, train, explain, report.
    let sweep = SweepConfig::secure_web(1);
    let data = generate_fluid(&sweep, 1_500, Target::SlaViolation).unwrap();
    assert!(data.n_rows() == 1_500);
    let (train, test) = data.split(0.3, 1).unwrap();
    let model = Gbdt::fit(
        &train,
        &GbdtParams {
            n_rounds: 60,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let proba: Vec<f64> = test.rows().map(|r| model.predict_proba(r)).collect();
    let auc = metrics::roc_auc(&test.y, &proba).unwrap();
    assert!(auc > 0.95, "pipeline model must be skilled: auc={auc}");

    let x = test.row(0).to_vec();
    let attr = gbdt_shap(&model, &x, &test.names).unwrap();
    assert_eq!(attr.len(), test.n_features());
    assert!(attr.efficiency_gap().abs() < 1e-8);
    let report = render_report(&attr, PredictionKind::SlaViolationRisk, 3);
    assert!(report.text.contains("SLA-violation risk"));
}

#[test]
fn full_pipeline_des_backend() {
    let mut sweep = SweepConfig::secure_web(3);
    sweep.rate_range = (10_000.0, 250_000.0);
    let data = generate_des(&sweep, 30, 3, Target::LatencyP95LogMs).unwrap();
    assert!(data.n_rows() >= 60);
    let model = RandomForest::fit(
        &data,
        &ForestParams {
            n_trees: 30,
            ..Default::default()
        },
        0,
        2,
    )
    .unwrap();
    let preds: Vec<f64> = data.rows().map(|r| model.predict(r)).collect();
    assert!(metrics::r2(&data.y, &preds).unwrap() > 0.8, "in-sample fit");

    let attr = forest_shap(&model, data.row(0), &data.names).unwrap();
    assert!(attr.efficiency_gap().abs() < 1e-8);
}

#[test]
fn explanations_survive_csv_roundtrip_of_the_dataset() {
    let sweep = SweepConfig::secure_web(5);
    let data = generate_fluid(&sweep, 300, Target::LatencyP95LogMs).unwrap();
    let text = to_csv(&data);
    let back = from_csv(&text, Task::Regression).unwrap();
    assert_eq!(back, data);
    // A model trained on the round-tripped data is identical.
    let m1 = DecisionTree::fit(&data, &TreeParams::default(), 0).unwrap();
    let m2 = DecisionTree::fit(&back, &TreeParams::default(), 0).unwrap();
    assert_eq!(m1, m2);
}

#[test]
fn model_agnostic_methods_explain_the_simulator_directly() {
    // The explained "model" is the analytic simulator itself — no ML at
    // all. This is the purest use of model-agnostic explainers.
    let chain = ChainSpec::of_kinds("t", &[VnfKind::Firewall, VnfKind::Ids]);
    let ghz = ServerSpec::standard().core_ghz;
    let chain2 = chain.clone();
    let sim = FnModel::new(2, move |x: &[f64]| {
        // x = [load_kpps, payload_bytes] → p95 ms
        let est = nfv_sim::chain::estimate_chain(&chain2, x[0] * 1e3, x[1], ghz, &[1.0, 1.0]);
        est.p95_latency_s * 1e3
    });
    let bg = Background::from_rows(
        (0..12)
            .map(|i| vec![20.0 + 10.0 * i as f64, 400.0 + 50.0 * i as f64])
            .collect(),
    )
    .unwrap();
    let names = vec!["load_kpps".to_string(), "payload_bytes".to_string()];
    let x = [220.0, 1_200.0];
    let exact = exact_shapley(&sim, &x, &bg, &names).unwrap();
    assert!(exact.efficiency_gap().abs() < 1e-9);
    // Load pushes latency up at this operating point.
    assert!(exact.values[0] > 0.0, "{:?}", exact.values);
    // Kernel SHAP agrees with exact on the same game.
    let kernel = kernel_shap(&sim, &x, &bg, &names, &KernelShapConfig::for_features(2)).unwrap();
    for (k, e) in kernel.values.iter().zip(&exact.values) {
        assert!((k - e).abs() < 1e-6);
    }
}

#[test]
fn violation_labels_match_sla_semantics_across_crates() {
    // Windows flagged by the Sla type must be the positive class the
    // dataset generator emits.
    let mut sweep = SweepConfig::secure_web(9);
    sweep.rate_range = (500_000.0, 700_000.0); // far past the knee → violations certain
    let hot = generate_des(&sweep, 6, 3, Target::SlaViolation).unwrap();
    assert!(hot.positive_fraction() > 0.8, "{}", hot.positive_fraction());
    sweep.rate_range = (1_000.0, 5_000.0); // light → none
    let cold = generate_des(&sweep, 6, 3, Target::SlaViolation).unwrap();
    assert!(
        cold.positive_fraction() < 0.1,
        "{}",
        cold.positive_fraction()
    );
}
