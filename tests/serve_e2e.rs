//! End-to-end serving: DES telemetry → feature rows → a 10k-request load
//! against the `nfv-serve` engine, checking determinism under a fixed seed,
//! cache effectiveness, micro-batch formation, and reject-style
//! backpressure.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::prelude::*;
use nfv_sim::prelude::*;
use nfv_xai::prelude::*;
use rand::prelude::*;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Runs the secure-web chain through the discrete-event engine and
/// featurizes every telemetry window — the live monitoring stream a
/// production explainer would be asked about.
fn telemetry_rows(seed: u64) -> (FeatureSchema, Vec<Vec<f64>>) {
    let sweep = SweepConfig::secure_web(seed);
    let schema = FeatureSchema::for_chain(&sweep.chain);
    let scenario = ScenarioBuilder::new()
        .servers(1, ServerSpec::standard())
        .chain(
            sweep.chain.clone(),
            Workload::poisson(150_000.0),
            PacketSizes::Fixed(800.0),
            Sla::tight(),
        )
        .build()
        .unwrap();
    let res = scenario
        .run_des(&RunConfig {
            horizon: SimDuration::from_secs_f64(10.0),
            window: SimDuration::from_secs_f64(0.25),
            seed,
            warmup_windows: 2,
        })
        .unwrap();
    let rows: Vec<Vec<f64>> = res
        .windows
        .iter()
        .flatten()
        .filter_map(|snap| schema.from_snapshot(snap))
        .collect();
    assert!(
        rows.len() >= 20,
        "need a telemetry stream, got {}",
        rows.len()
    );
    (schema, rows)
}

/// Trains the three registry architectures on a fluid-backend sweep of the
/// same chain (same feature schema as the telemetry stream).
fn trained_models(seed: u64) -> (Gbdt, LinearRegression, Mlp, Vec<String>, Background) {
    let sweep = SweepConfig::secure_web(seed);
    let data = generate_fluid(&sweep, 900, Target::LatencyP95LogMs).unwrap();
    let gbdt = Gbdt::fit(
        &data,
        &GbdtParams {
            n_rounds: 25,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let linear = LinearRegression::fit(&data, 1e-3).unwrap();
    let mlp = Mlp::fit(
        &data,
        &MlpParams {
            hidden: vec![8],
            epochs: 10,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&data, 16, 1).unwrap();
    (gbdt, linear, mlp, data.names.clone(), bg)
}

fn build_engine(seed: u64) -> ServeEngine {
    let (gbdt, linear, mlp, names, bg) = trained_models(seed);
    let engine = ServeEngine::start(ServeConfig {
        workers: 2,
        queue_capacity: 512,
        max_batch: 8,
        gather_window: Duration::from_millis(3),
        cache_capacity: 2048,
        cache_shards: 8,
        quantization_grid: 1e-6,
        seed,
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register(
            "latency-gbdt",
            ServeModel::Gbdt(gbdt),
            names.clone(),
            bg.clone(),
        )
        .unwrap();
    engine
        .registry()
        .register(
            "latency-linear",
            ServeModel::Linear(linear),
            names.clone(),
            bg.clone(),
        )
        .unwrap();
    engine
        .registry()
        .register("latency-mlp", ServeModel::Mlp(mlp), names, bg)
        .unwrap();
    engine
}

/// Builds the full 10k-request sequence up front (so both determinism runs
/// see the identical stream): telemetry rows sampled with replacement,
/// models and methods mixed like a real control plane's query profile.
fn request_stream(rows: &[Vec<f64>], n: usize, seed: u64) -> Vec<ExplainRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let row = rows[rng.gen_range(0..rows.len())].clone();
            let pick: f64 = rng.gen();
            let (model_id, method) = if pick < 0.80 {
                ("latency-gbdt", ExplainMethod::TreeShap)
            } else if pick < 0.90 {
                (
                    "latency-linear",
                    ExplainMethod::KernelShap { n_coalitions: 48 },
                )
            } else {
                ("latency-mlp", ExplainMethod::Lime { n_samples: 64 })
            };
            ExplainRequest {
                model_id: model_id.into(),
                features: row,
                method,
                budget: Duration::from_secs(5),
            }
        })
        .collect()
}

/// Fires `requests` from `threads` client threads (each takes a contiguous
/// slice, preserving per-slice order) and returns every attribution's
/// values, in request order.
fn drive(engine: &ServeEngine, requests: &[ExplainRequest], threads: usize) -> Vec<Vec<f64>> {
    let chunk = requests.len().div_ceil(threads);
    let mut out: Vec<Option<Vec<f64>>> = vec![None; requests.len()];
    std::thread::scope(|s| {
        for (slice_req, slice_out) in requests.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (req, cell) in slice_req.iter().zip(slice_out.iter_mut()) {
                    let resp = engine
                        .explain(req.clone())
                        .expect("in-budget request served");
                    *cell = Some(resp.attribution.values.clone());
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("all served")).collect()
}

#[test]
fn ten_thousand_requests_deterministic_with_batching_and_cache_hits() {
    let (_schema, rows) = telemetry_rows(42);
    let requests = request_stream(&rows, 10_000, 7);

    let engine = build_engine(42);

    // Phase 1 — cold burst: clients race six uncached requests in so the
    // workers demonstrably form a multi-request batch.
    let burst: Vec<ExplainRequest> = rows
        .iter()
        .take(6)
        .map(|r| ExplainRequest {
            model_id: "latency-gbdt".into(),
            features: r.clone(),
            method: ExplainMethod::TreeShap,
            budget: Duration::from_secs(5),
        })
        .collect();
    let barrier = Arc::new(Barrier::new(burst.len()));
    std::thread::scope(|s| {
        for req in &burst {
            let barrier = Arc::clone(&barrier);
            let engine = &engine;
            s.spawn(move || {
                barrier.wait();
                engine.explain(req.clone()).unwrap();
            });
        }
    });

    // Phase 2 — the 10k-request telemetry replay.
    let values_a = drive(&engine, &requests, 8);
    let stats = engine.stats();
    assert_eq!(stats.completed, 10_000 + burst.len() as u64);
    assert_eq!(
        stats.rejected_queue_full
            + stats.rejected_deadline_unmeetable
            + stats.rejected_deadline_expired
            + stats.rejected_unknown_model
            + stats.rejected_invalid,
        0,
        "generous budgets and a deep queue: nothing rejected"
    );
    assert!(
        stats.cache_hit_rate > 0.5,
        "the replay re-asks a small set of telemetry windows: hit rate {}",
        stats.cache_hit_rate
    );
    assert!(
        stats.max_batch >= 2,
        "the cold burst must form a multi-request batch, max={}",
        stats.max_batch
    );
    assert!(stats.explain_errors == 0);
    // Every attribution satisfies the efficiency axiom of its method
    // family (spot-check a sample rather than 10k full checks).
    for v in values_a.iter().step_by(997) {
        assert!(v.iter().all(|x| x.is_finite()));
    }

    // Phase 3 — determinism: a fresh engine with the same seed serving the
    // same stream (different thread interleavings, different batch shapes)
    // returns bit-for-bit identical attributions.
    let engine_b = build_engine(42);
    let values_b = drive(&engine_b, &requests, 3);
    assert_eq!(values_a, values_b, "seed fixes every attribution exactly");

    engine.shutdown();
    engine_b.shutdown();
}

#[test]
fn backpressure_rejects_instead_of_blocking() {
    let (_schema, rows) = telemetry_rows(17);
    let (_gbdt, _linear, mlp, names, bg) = trained_models(17);
    // One slow worker, a four-slot queue, no batching: overload must
    // surface as immediate QueueFull rejects, not unbounded waiting.
    // Anytime degradation is pinned off so queue-full pressure keeps its
    // pre-anytime reject-with-reason contract; the coarse-then-refine path
    // has its own test (`queue_full_degrades_to_coarse_then_upgrades_in_place`).
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        max_batch: 1,
        gather_window: Duration::ZERO,
        cache_capacity: 64,
        cache_shards: 2,
        quantization_grid: 1e-6,
        seed: 17,
        anytime: AnytimePolicy {
            enabled: false,
            ..AnytimePolicy::default()
        },
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("mlp", ServeModel::Mlp(mlp), names, bg)
        .unwrap();

    let n_clients = 16;
    let per_client = 4;
    let barrier = Arc::new(Barrier::new(n_clients));
    let t0 = std::time::Instant::now();
    let outcomes: Vec<Result<ExplainResponse, ServeError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let engine = &engine;
                let rows = &rows;
                s.spawn(move || {
                    barrier.wait();
                    (0..per_client)
                        .map(|i| {
                            // Unique features per request: no cache relief.
                            let mut f = rows[(c * per_client + i) % rows.len()].clone();
                            f[0] += (c * per_client + i) as f64;
                            engine.explain(ExplainRequest {
                                model_id: "mlp".into(),
                                features: f,
                                method: ExplainMethod::Lime { n_samples: 600 },
                                budget: Duration::from_secs(30),
                            })
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = t0.elapsed();

    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let queue_full = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServeError::Rejected(RejectReason::QueueFull { .. }))))
        .count();
    assert_eq!(served + queue_full, outcomes.len(), "only serve or reject");
    assert!(served > 0, "the queue drains: some requests are served");
    assert!(
        queue_full > 0,
        "64 concurrent slow requests against a 4-slot queue must shed load"
    );
    let stats = engine.stats();
    assert_eq!(stats.rejected_queue_full as usize, queue_full);
    assert!(
        elapsed < Duration::from_secs(30),
        "rejects return immediately; nothing blocks on a full queue"
    );
    engine.shutdown();
}

#[test]
fn expired_deadlines_are_dropped_not_served_late() {
    let (_schema, rows) = telemetry_rows(23);
    let (_gbdt, _linear, mlp, names, bg) = trained_models(23);
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch: 1,
        gather_window: Duration::ZERO,
        cache_capacity: 64,
        cache_shards: 2,
        quantization_grid: 1e-6,
        seed: 23,
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("mlp", ServeModel::Mlp(mlp), names, bg)
        .unwrap();

    // Saturate the single worker with slow requests, then submit requests
    // whose budget cannot survive the backlog.
    let outcomes: Vec<Result<ExplainResponse, ServeError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let engine = &engine;
                let rows = &rows;
                s.spawn(move || {
                    let mut f = rows[c % rows.len()].clone();
                    f[0] += c as f64;
                    let budget = if c < 4 {
                        Duration::from_secs(30)
                    } else {
                        // Far below one LIME evaluation's cost.
                        Duration::from_micros(200)
                    };
                    engine.explain(ExplainRequest {
                        model_id: "mlp".into(),
                        features: f,
                        method: ExplainMethod::Lime { n_samples: 600 },
                        budget,
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let deadline_rejects = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                Err(ServeError::Rejected(
                    RejectReason::DeadlineExpired { .. } | RejectReason::DeadlineUnmeetable { .. }
                ))
            )
        })
        .count();
    assert!(
        deadline_rejects > 0,
        "microsecond budgets behind a saturated worker must be shed: {outcomes:?}"
    );
    engine.shutdown();
}
