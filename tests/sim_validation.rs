//! Integration: the discrete-event simulator validated against queueing
//! theory and checked for the cross-run properties (determinism, Little's
//! law, fluid-model agreement) that the datasets depend on.

use nfv_sim::prelude::*;
use nfv_sim::queueing;

fn one_vnf_run(kind: VnfKind, rate: f64, payload: f64, seed: u64) -> RunResult {
    let scenario = ScenarioBuilder::new()
        .servers(1, ServerSpec::standard())
        .chain(
            ChainSpec::of_kinds("t", &[kind]),
            Workload::poisson(rate),
            PacketSizes::Fixed(payload),
            Sla::tight(),
        )
        .build()
        .unwrap();
    scenario
        .run_des(&RunConfig {
            horizon: SimDuration::from_secs_f64(8.0),
            window: SimDuration::from_secs_f64(1.0),
            seed,
            warmup_windows: 2,
        })
        .unwrap()
}

#[test]
fn des_matches_pollaczek_khinchine_across_loads() {
    let cfg = VnfConfig::standard(VnfKind::Nat);
    let ms = cfg.mean_service_secs(500.0, 2.6, 1.0);
    let cv = VnfKind::Nat.service_cv();
    for rho in [0.3, 0.6, 0.8] {
        let lambda = rho / ms;
        let res = one_vnf_run(VnfKind::Nat, lambda, 500.0, 11);
        let mut h = LatencyHistogram::new();
        for w in &res.windows[0] {
            h.merge(&w.latency);
        }
        let expect = queueing::mg1_mean_sojourn(lambda, ms, cv) + 2.0 * 30e-6;
        let measured = h.mean_secs();
        assert!(
            (measured / expect - 1.0).abs() < 0.12,
            "rho={rho}: measured {measured:e} vs P-K {expect:e}"
        );
    }
}

#[test]
fn littles_law_holds_in_the_des() {
    // L = λ_effective · W at the queue level, using the engine's
    // time-integrated queue area.
    let cfg = VnfConfig::standard(VnfKind::Ids);
    let ms = cfg.mean_service_secs(500.0, 2.6, 1.0);
    let lambda = 0.7 / ms;
    let res = one_vnf_run(VnfKind::Ids, lambda, 500.0, 13);
    let mut l_sum = 0.0;
    let mut n = 0.0;
    let mut throughput = 0.0;
    let mut lat = LatencyHistogram::new();
    for w in &res.windows[0] {
        l_sum += w.per_vnf[0].mean_queue(w.window_s);
        throughput += w.per_vnf[0].processed as f64 / w.window_s;
        lat.merge(&w.latency);
        n += 1.0;
    }
    let l = l_sum / n;
    let thru = throughput / n;
    // W here is the VNF sojourn; end-to-end latency minus 2 hops.
    let w = lat.mean_secs() - 2.0 * 30e-6;
    let lw = thru * w;
    assert!(
        (l / lw - 1.0).abs() < 0.1,
        "Little's law: L={l:.3} vs λW={lw:.3}"
    );
}

#[test]
fn drop_rates_match_finite_buffer_theory_under_overload() {
    let cfg = VnfConfig::standard(VnfKind::Dpi);
    let ms = cfg.mean_service_secs(500.0, 2.6, 1.0);
    let lambda = 2.0 / ms; // ρ = 2 → fluid drop ≈ 1 − 1/ρ = 0.5
    let res = one_vnf_run(VnfKind::Dpi, lambda, 500.0, 17);
    let last = res.windows[0].last().unwrap();
    let drop = last.drop_rate();
    assert!(
        (drop - 0.5).abs() < 0.06,
        "overload drop {drop} vs fluid 0.5"
    );
}

#[test]
fn full_demo_scenario_is_bit_deterministic() {
    let run = |seed| {
        Scenario::demo(3)
            .run_des(&RunConfig {
                horizon: SimDuration::from_secs_f64(3.0),
                window: SimDuration::from_secs_f64(0.5),
                seed,
                warmup_windows: 1,
            })
            .unwrap()
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a.windows, b.windows);
    let c = run(78);
    assert_ne!(a.windows, c.windows);
}

#[test]
fn fluid_and_des_agree_at_moderate_load() {
    let chain = ChainSpec::of_kinds("t", &[VnfKind::Firewall, VnfKind::Ids, VnfKind::Router]);
    let ghz = ServerSpec::standard().core_ghz;
    let load = 120_000.0;
    let est = nfv_sim::chain::estimate_chain(&chain, load, 500.0, ghz, &[1.0; 3]);
    let scenario = ScenarioBuilder::new()
        .servers(1, ServerSpec::standard())
        .chain(
            chain,
            Workload::poisson(load),
            PacketSizes::Fixed(500.0),
            Sla::tight(),
        )
        .build()
        .unwrap();
    let res = scenario
        .run_des(&RunConfig {
            horizon: SimDuration::from_secs_f64(6.0),
            window: SimDuration::from_secs_f64(1.0),
            seed: 5,
            warmup_windows: 1,
        })
        .unwrap();
    let mut h = LatencyHistogram::new();
    for w in &res.windows[0] {
        h.merge(&w.latency);
    }
    let ratio = est.mean_latency_s / h.mean_secs();
    assert!(
        (0.85..1.15).contains(&ratio),
        "fluid/DES mean-latency ratio {ratio}"
    );
}

#[test]
fn placement_policies_change_interference_outcomes() {
    // BestFit (max consolidation) on few servers must yield higher
    // co-location interference than WorstFit (spread) on the same pool.
    let chains: Vec<ChainSpec> = ChainSpec::catalogue();
    let run_policy = |policy| {
        let mut sc = Scenario::demo(5);
        sc.chains = chains.clone();
        sc.policy = policy;
        let res = sc
            .run_des(&RunConfig {
                horizon: SimDuration::from_secs_f64(2.0),
                window: SimDuration::from_secs_f64(1.0),
                seed: 9,
                warmup_windows: 1,
            })
            .unwrap();
        // Mean interference across all chains/VNFs/windows.
        let mut sum = 0.0;
        let mut n = 0.0;
        for cw in &res.windows {
            for w in cw {
                for i in &w.interference {
                    sum += i;
                    n += 1.0;
                }
            }
        }
        sum / n
    };
    let packed = run_policy(PlacementPolicy::BestFit);
    let spread = run_policy(PlacementPolicy::WorstFit);
    assert!(
        packed > spread,
        "consolidation {packed} should hurt more than spreading {spread}"
    );
}
