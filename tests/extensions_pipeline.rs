//! Integration: the extension methods (counterfactuals, grouped Shapley,
//! interactions, SAGE, auto-scaler) exercised on the full NFV pipeline.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_sim::prelude::*;
use nfv_xai::prelude::*;

fn risk_model() -> (Dataset, Dataset, Gbdt) {
    let sweep = SweepConfig::secure_web(51);
    let data = generate_fluid(&sweep, 2_000, Target::SlaViolation).unwrap();
    let (train, test) = data.split(0.25, 1).unwrap();
    let model = Gbdt::fit(
        &train,
        &GbdtParams {
            n_rounds: 80,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    (train, test, model)
}

#[test]
fn counterfactual_clears_a_real_alert() {
    let (train, test, model) = risk_model();
    let surface = ProbaSurface(&model);
    let bg = Background::from_dataset(&train, 40, 1).unwrap();
    let proba: Vec<f64> = test.rows().map(|r| model.predict_proba(r)).collect();
    let idx = (0..test.n_rows())
        .max_by(|&a, &b| proba[a].total_cmp(&proba[b]))
        .unwrap();
    assert!(proba[idx] > 0.8, "need a real alert: {}", proba[idx]);
    let actionable: Vec<bool> = (0..test.n_features())
        .map(|j| j >= nfv_data::features::GLOBAL_FEATURES)
        .collect();
    let cf = counterfactual(
        &surface,
        test.row(idx),
        &bg,
        &CounterfactualConfig {
            threshold: 0.2,
            direction: CrossingDirection::Below,
            actionable: actionable.clone(),
            n_restarts: 8,
            max_sweeps: 40,
            seed: 2,
        },
    )
    .unwrap();
    match cf {
        Some(cf) => {
            assert!(cf.prediction <= 0.2 + 1e-9);
            // Non-actionable (traffic) features are untouched.
            for j in 0..nfv_data::features::GLOBAL_FEATURES {
                assert_eq!(cf.deltas[j], 0.0, "traffic feature {j} moved");
            }
            assert!(cf.n_changed >= 1);
        }
        None => {
            // Legitimate: the forecasting model may pin the risk on the
            // offered load itself, which resources cannot change. Widening
            // actionability to everything must then find a fix (shed load).
            let cf_all = counterfactual(
                &surface,
                test.row(idx),
                &bg,
                &CounterfactualConfig {
                    threshold: 0.2,
                    direction: CrossingDirection::Below,
                    actionable: Vec::new(),
                    n_restarts: 8,
                    max_sweeps: 40,
                    seed: 2,
                },
            )
            .unwrap()
            .expect("with every feature actionable a healthy region exists");
            assert!(cf_all.prediction <= 0.2 + 1e-9);
        }
    }
}

#[test]
fn grouped_shapley_blames_a_stage_consistently_with_treeshap() {
    let (train, test, model) = risk_model();
    let surface = ProbaSurface(&model);
    let bg = Background::from_dataset(&train, 25, 2).unwrap();
    let groups = FeatureGroups::per_stage(&test.names).unwrap();
    let proba: Vec<f64> = test.rows().map(|r| model.predict_proba(r)).collect();
    let idx = (0..test.n_rows())
        .max_by(|&a, &b| proba[a].total_cmp(&proba[b]))
        .unwrap();
    let x = test.row(idx).to_vec();
    let grouped = grouped_shapley(&surface, &x, &bg, &groups).unwrap();
    assert!(grouped.efficiency_gap().abs() < 1e-9);
    // The dominant stage by grouped Shapley equals the dominant stage by
    // summed TreeSHAP magnitudes.
    let tree = gbdt_shap(&model, &x, &test.names).unwrap();
    let mut summed = vec![0.0; groups.len()];
    for (j, v) in tree.values.iter().enumerate() {
        summed[groups.assignment[j]] += v.abs();
    }
    let top_grouped = (0..groups.len())
        .max_by(|&a, &b| grouped.values[a].abs().total_cmp(&grouped.values[b].abs()))
        .unwrap();
    let top_summed = (0..groups.len())
        .max_by(|&a, &b| summed[a].total_cmp(&summed[b]))
        .unwrap();
    assert_eq!(
        top_grouped, top_summed,
        "grouped {:?} vs summed {:?}",
        grouped.values, summed
    );
}

#[test]
fn sage_and_mean_shap_rank_the_same_top_feature() {
    let (train, test, model) = risk_model();
    let surface = ProbaSurface(&model);
    let bg = Background::from_dataset(&train, 20, 3).unwrap();
    let imp = sage(
        &surface,
        &test,
        &bg,
        &SageConfig {
            n_permutations: 24,
            rows_per_permutation: 16,
            seed: 1,
        },
    )
    .unwrap();
    let instances: Vec<Vec<f64>> = (0..80).map(|i| test.row(i).to_vec()).collect();
    let attrs = explain_batch(&instances, 4, |x| gbdt_shap(&model, x, &test.names)).unwrap();
    let shap_global = mean_absolute_attribution(&attrs);
    let top_shap = (0..shap_global.len())
        .max_by(|&a, &b| shap_global[a].total_cmp(&shap_global[b]))
        .unwrap();
    assert_eq!(imp.ranking()[0], top_shap, "sage {:?}", imp.values);
    assert!(imp.full_loss < imp.base_loss, "the model must add value");
}

#[test]
fn predictive_scaler_competes_with_reactive_on_cost() {
    let cfg = ScalingSimConfig {
        chain: ChainSpec::of_kinds(
            "secure-web",
            &[VnfKind::Firewall, VnfKind::Ids, VnfKind::LoadBalancer],
        ),
        workload: Workload::bursty(220_000.0),
        epoch_s: 0.5,
        n_epochs: 120,
        p95_bound_s: 5e-3,
        max_drop_rate: 1e-3,
        violation_penalty: 20.0,
        seed: 4,
    };
    let mut reactive = ThresholdPolicy::default();
    let r = run_scaling(&cfg, &mut reactive).unwrap();
    let mut predictive = PredictivePolicy {
        scorer: |obs: &EpochObservation| obs.utilization.clone(),
        step: 0.5,
        min_share: 0.25,
        max_share: 8.0,
    };
    let p = run_scaling(&cfg, &mut predictive).unwrap();
    // Both policies must do real work under bursts, and neither should be
    // catastrophically worse — the experiment (F9) reports the exact gap.
    assert!(r.violation_rate < 0.5, "reactive {}", r.violation_rate);
    assert!(p.violation_rate < 0.5, "predictive {}", p.violation_rate);
    assert!(p.cost < r.cost * 2.0 && r.cost < p.cost * 2.0);
}

#[test]
fn interaction_values_on_a_chain_submodel_are_consistent() {
    let (train, test, model) = risk_model();
    let bg = Background::from_dataset(&train, 15, 5).unwrap();
    // Wrap the model over 4 chosen features, holding the rest at a fixed
    // instance (the headroom-example pattern).
    let x = test.row(0).to_vec();
    let keep = [0usize, 6, 7, 8]; // offered + ids cpu/queue/drop
    let sub_x: Vec<f64> = keep.iter().map(|&i| x[i]).collect();
    let sub_names: Vec<String> = keep.iter().map(|&i| test.names[i].clone()).collect();
    let sub_bg = Background::from_rows(
        bg.rows()
            .iter()
            .map(|r| keep.iter().map(|&i| r[i]).collect())
            .collect(),
    )
    .unwrap();
    let sub_model = {
        let model = model.clone();
        let x_full = x.clone();
        FnModel::new(4, move |sub: &[f64]| {
            let mut full = x_full.clone();
            for (k, &i) in keep.iter().enumerate() {
                full[i] = sub[k];
            }
            model.predict_proba(&full)
        })
    };
    let m = interaction_values(&sub_model, &sub_x, &sub_bg, &sub_names).unwrap();
    // Consistency: row sums equal exact Shapley on the same sub-game.
    let direct = exact_shapley(&sub_model, &sub_x, &sub_bg, &sub_names).unwrap();
    for (a, b) in m.shapley_values().iter().zip(&direct.values) {
        assert!((a - b).abs() < 1e-9);
    }
}
