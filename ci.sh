#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> bench smoke (serve_throughput + explain_latency --test)"
cargo bench -p nfv-bench --bench serve_throughput -- --test
cargo bench -p nfv-bench --bench explain_latency -- --test

echo "==> CI OK"
