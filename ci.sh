#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Open-dispatch invariant: the serving layer resolves methods through the
# registry; a `match` on `ExplainMethod::` variants creeping back into the
# worker/registry dispatch path (outside #[cfg(test)]) re-closes it.
echo "==> open-dispatch check (no ExplainMethod:: match arms in serve dispatch)"
for f in crates/nfv-serve/src/worker.rs crates/nfv-serve/src/registry.rs; do
  if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -n 'ExplainMethod::'; then
    echo "FAIL: $f dispatches on ExplainMethod variants; use MethodRegistry"
    exit 1
  fi
done

echo "==> cargo test -q"
cargo test -q

# Kernel matrix: the nfv-ml SoA suite once per forced traversal kernel, so
# a bit-identity bug in any kernel fails CI even on hosts where calibration
# would never pick it. Kernels needing an ISA the host lacks are skipped
# (the force-env resolution degrades them to scalar, which arm 1 covers).
echo "==> nfv-ml kernel matrix (NFV_ML_KERNEL=scalar|avx2|lane[|avx512])"
kernels="scalar"
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then kernels="$kernels avx2 lane"; fi
if grep -qw avx512f /proc/cpuinfo 2>/dev/null; then kernels="$kernels avx512"; fi
for k in $kernels; do
  echo "    --- NFV_ML_KERNEL=$k"
  NFV_ML_KERNEL="$k" cargo test -q -p nfv-ml soa
done

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> bench smoke (serve_throughput + explain_latency + soa_kernels --test)"
cargo bench -p nfv-bench --bench serve_throughput -- --test
cargo bench -p nfv-bench --bench explain_latency -- --test
cargo bench -p nfv-bench --bench soa_kernels -- --test

# Multi-process wire smoke: three real nfv-shard processes on loopback, a
# short mixed replay checked bit-for-bit against an in-process engine,
# then a pipelined storm (64 concurrent connections, depth 8 per socket)
# against the event-driven server — zero protocol errors, clean drain.
# Exits non-zero on any violation.
echo "==> nfv-net multi-process smoke (3 shard processes, 64-conn pipelined storm)"
# The smoke spawns target/release/nfv-shard; `cargo run --bin nfv-net-smoke`
# alone would not rebuild it, and a stale shard binary fails bit-identity.
cargo build -q --release -p nfv-net --bins
cargo run -q --release -p nfv-net --bin nfv-net-smoke

# Perf-regression gate: rerun the timed benches and diff the fresh medians
# (BENCH_*.json at the workspace root) against the blessed baselines/.
# Fails if any median regressed by more than 25%. Set NFV_BENCH_GATE=off to
# skip on machines whose perf envelope differs from the blessed one.
if [ "${NFV_BENCH_GATE:-on}" = "off" ]; then
  echo "==> bench gate: SKIPPED (NFV_BENCH_GATE=off)"
else
  echo "==> bench gate (timed run vs baselines/, tolerance 25%)"
  cargo bench -p nfv-bench --bench serve_throughput
  cargo bench -p nfv-bench --bench explain_latency
  cargo bench -p nfv-bench --bench soa_kernels
  cargo run -q --release -p nfv-bench --bin bench_gate -- \
    baselines/BENCH_serve_throughput.json BENCH_serve_throughput.json
  cargo run -q --release -p nfv-bench --bin bench_gate -- \
    baselines/BENCH_explain_latency.json BENCH_explain_latency.json
  cargo run -q --release -p nfv-bench --bin bench_gate -- \
    baselines/BENCH_soa_kernels.json BENCH_soa_kernels.json
  # To re-bless after an intentional perf change:
  #   cargo run --release -p nfv-bench --bin bench_gate -- --bless
  # (wire_replay stays unblessed by contract: it is in the gate's built-in
  # GATE_EXEMPT_GROUPS list — reported informationally, never gated, never
  # blessed — because this container's single core cannot measure the
  # multi-process wire tier honestly; see EXPERIMENTS.md §S4.1.)
  # The ≥3× 4-shard scaling gate now lives inside the serve_throughput
  # bench binary (cluster scaling gate; self-skips on hosts with < 5
  # cores and in --test smoke mode), so the timed run above covers it.
fi

echo "==> CI OK"
