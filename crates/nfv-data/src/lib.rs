//! # nfv-data — telemetry-to-dataset pipeline
//!
//! Bridges the simulator (`nfv-sim`) and the learning/explanation layers
//! (`nfv-ml`, `nfv-xai`):
//!
//! - [`dataset::Dataset`] — the shared tabular container (named columns,
//!   shape-validated, deterministic splits and k-fold indices);
//! - [`features`] — the feature schema extracted from chain telemetry, with
//!   matching extractors for the DES and fluid simulator backends;
//! - [`generate`] — parameter sweeps producing the latency-regression and
//!   SLA-violation datasets used in every experiment;
//! - [`synth`] — synthetic tasks with *known ground truth* (closed-form
//!   Shapley values, known relevant features, an NFV "Clever Hans" leak)
//!   used to score explanation quality;
//! - [`scaler`], [`stats`], [`csv`] — supporting utilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod features;
pub mod generate;
pub mod scaler;
pub mod stats;
pub mod synth;

use std::fmt;

/// Errors from dataset construction and IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Dimension/shape mismatch.
    Shape(String),
    /// Invalid value (non-finite, bad label, parse failure).
    Value(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Shape(m) => write!(f, "shape error: {m}"),
            DataError::Value(m) => write!(f, "value error: {m}"),
        }
    }
}

impl std::error::Error for DataError {}

/// One-stop imports.
pub mod prelude {
    pub use crate::csv::{from_csv, to_csv};
    pub use crate::dataset::{Dataset, Task};
    pub use crate::features::{latency_target_ms, FeatureSchema};
    pub use crate::generate::{generate_des, generate_fluid, SweepConfig, Target};
    pub use crate::scaler::Scaler;
    pub use crate::synth::{
        clever_hans_nfv, friedman1, interaction_xor, linear_gaussian, SynthData,
    };
    pub use crate::DataError;
}
