//! Feature extraction: turning simulator telemetry into the tabular rows
//! the NFV-management models are trained on.
//!
//! The schema mirrors what a production monitoring stack (per-VNF cAdvisor /
//! DPDK counters plus chain-level probes) would export per window: offered
//! load and payload size globally, and per VNF its CPU utilization, mean
//! queue depth, local drop rate, and interference index.

use nfv_sim::chain::{ChainEstimate, ChainSpec};
use nfv_sim::telemetry::WindowSnapshot;
use serde::{Deserialize, Serialize};

/// Named feature layout for one chain. Per-VNF features are prefixed with
/// the VNF's position and short name, e.g. `"1_ids_cpu"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSchema {
    /// Column names, in row order.
    pub names: Vec<String>,
    /// Number of VNFs the schema was built for.
    pub n_vnfs: usize,
}

/// Per-VNF feature count (cpu, queue, drop, interference).
pub const PER_VNF_FEATURES: usize = 4;
/// Global feature count (offered_kpps, payload_bytes).
pub const GLOBAL_FEATURES: usize = 2;

impl FeatureSchema {
    /// Builds the schema for `chain`.
    pub fn for_chain(chain: &ChainSpec) -> FeatureSchema {
        let mut names = Vec::with_capacity(GLOBAL_FEATURES + PER_VNF_FEATURES * chain.len());
        names.push("offered_kpps".to_string());
        names.push("payload_bytes".to_string());
        for (i, v) in chain.vnfs.iter().enumerate() {
            let tag = format!("{i}_{}", v.kind.short_name());
            names.push(format!("{tag}_cpu"));
            names.push(format!("{tag}_queue"));
            names.push(format!("{tag}_drop"));
            names.push(format!("{tag}_interf"));
        }
        FeatureSchema {
            names,
            n_vnfs: chain.len(),
        }
    }

    /// Total feature count.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the schema has no columns (never for a real chain).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Extracts one feature row from a DES window snapshot. Returns `None`
    /// when the snapshot's VNF count does not match the schema.
    pub fn from_snapshot(&self, snap: &WindowSnapshot) -> Option<Vec<f64>> {
        if snap.per_vnf.len() != self.n_vnfs || snap.interference.len() != self.n_vnfs {
            return None;
        }
        let mut row = Vec::with_capacity(self.len());
        row.push(snap.offered_pps / 1_000.0);
        row.push(snap.mean_payload_bytes);
        for (v, interf) in snap.per_vnf.iter().zip(&snap.interference) {
            row.push(v.cpu_utilization(snap.window_s));
            row.push(v.mean_queue(snap.window_s));
            row.push(v.drop_rate());
            row.push(*interf);
        }
        Some(row)
    }

    /// Extracts one feature row from a fluid-model chain estimate at
    /// realized load `lambda_pps` and payload `payload_bytes`. Queue depth
    /// and CPU are derived from the queueing quantities (Little's law for
    /// the queue, capped ρ for CPU) so the fluid and DES feature spaces
    /// line up.
    pub fn from_estimate(
        &self,
        est: &ChainEstimate,
        lambda_pps: f64,
        payload_bytes: f64,
        interference: &[f64],
    ) -> Option<Vec<f64>> {
        if est.stages.len() != self.n_vnfs {
            return None;
        }
        let mut row = Vec::with_capacity(self.len());
        row.push(lambda_pps / 1_000.0);
        row.push(payload_bytes);
        let mut stage_lambda = lambda_pps;
        for (i, st) in est.stages.iter().enumerate() {
            let cpu = st.utilization.min(1.0);
            // Little's law occupancy, capped by the physical buffer — an
            // instantaneous queue probe can never report more than fits.
            let queue = (stage_lambda * (1.0 - st.drop_probability) * st.mean_sojourn_s)
                .min(st.queue_capacity as f64);
            row.push(cpu);
            row.push(queue);
            row.push(st.drop_probability);
            row.push(interference.get(i).copied().unwrap_or(1.0));
            stage_lambda *= 1.0 - st.drop_probability;
        }
        Some(row)
    }
}

/// Regression target from a window: p95 end-to-end latency in milliseconds.
pub fn latency_target_ms(snap: &WindowSnapshot) -> f64 {
    snap.latency.quantile_secs(0.95) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_sim::prelude::*;

    fn chain() -> ChainSpec {
        ChainSpec::of_kinds("t", &[VnfKind::Firewall, VnfKind::Ids])
    }

    #[test]
    fn schema_names_are_positional_and_unique() {
        let s = FeatureSchema::for_chain(&chain());
        assert_eq!(s.len(), GLOBAL_FEATURES + 2 * PER_VNF_FEATURES);
        assert_eq!(s.names[0], "offered_kpps");
        assert!(s.names.contains(&"0_fw_cpu".to_string()));
        assert!(s.names.contains(&"1_ids_interf".to_string()));
        let mut uniq = s.names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len());
    }

    #[test]
    fn snapshot_extraction_roundtrip() {
        let spec = chain();
        let schema = FeatureSchema::for_chain(&spec);
        let scenario = ScenarioBuilder::new()
            .servers(1, ServerSpec::standard())
            .chain(
                spec,
                Workload::poisson(20_000.0),
                PacketSizes::Imix,
                Sla::tight(),
            )
            .build()
            .unwrap();
        let res = scenario
            .run_des(&RunConfig {
                horizon: SimDuration::from_secs_f64(3.0),
                window: SimDuration::from_secs_f64(1.0),
                seed: 3,
                warmup_windows: 1,
            })
            .unwrap();
        let snap = &res.windows[0][0];
        let row = schema.from_snapshot(snap).expect("matching shape");
        assert_eq!(row.len(), schema.len());
        assert!((row[0] - snap.offered_pps / 1e3).abs() < 1e-9);
        assert!(row.iter().all(|v| v.is_finite()));
        let y = latency_target_ms(snap);
        assert!(y > 0.0 && y < 1e3);
    }

    #[test]
    fn mismatched_snapshot_is_rejected() {
        let schema = FeatureSchema::for_chain(&chain());
        let other = ChainSpec::of_kinds("o", &[VnfKind::Nat]);
        let scenario = ScenarioBuilder::new()
            .servers(1, ServerSpec::standard())
            .chain(
                other,
                Workload::poisson(5_000.0),
                PacketSizes::Imix,
                Sla::tight(),
            )
            .build()
            .unwrap();
        let res = scenario
            .run_des(&RunConfig {
                horizon: SimDuration::from_secs_f64(2.0),
                window: SimDuration::from_secs_f64(1.0),
                seed: 1,
                warmup_windows: 0,
            })
            .unwrap();
        assert!(schema.from_snapshot(&res.windows[0][0]).is_none());
    }

    #[test]
    fn estimate_extraction_matches_schema() {
        let spec = chain();
        let schema = FeatureSchema::for_chain(&spec);
        let est = nfv_sim::chain::estimate_chain(&spec, 20_000.0, 500.0, 2.6, &[1.1, 1.2]);
        let row = schema
            .from_estimate(&est, 20_000.0, 500.0, &[1.1, 1.2])
            .unwrap();
        assert_eq!(row.len(), schema.len());
        // Interference columns carried through.
        let idx = schema
            .names
            .iter()
            .position(|n| n == "1_ids_interf")
            .unwrap();
        assert!((row[idx] - 1.2).abs() < 1e-12);
        assert!(
            schema.from_estimate(&est, 1.0, 1.0, &[]).is_some(),
            "defaults fill"
        );
        let wrong = nfv_sim::chain::estimate_chain(
            &ChainSpec::of_kinds("o", &[VnfKind::Nat]),
            1_000.0,
            500.0,
            2.6,
            &[1.0],
        );
        assert!(schema.from_estimate(&wrong, 1.0, 1.0, &[1.0]).is_none());
    }
}
