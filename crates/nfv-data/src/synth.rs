//! Synthetic datasets with known ground truth, used to *score* explanation
//! methods: a linear-Gaussian task whose exact Shapley values are available
//! in closed form, the Friedman #1 benchmark with known relevant features, a
//! pure-interaction task, and an NFV-flavoured "Clever Hans" dataset with an
//! injected spurious correlate.

use crate::dataset::{Dataset, Task};
use crate::DataError;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A generated dataset together with its ground-truth explanation metadata.
#[derive(Debug, Clone)]
pub struct SynthData {
    /// The dataset itself.
    pub data: Dataset,
    /// Indices of the truly relevant features.
    pub relevant: Vec<usize>,
    /// For linear tasks, the coefficient vector (empty otherwise).
    pub coefficients: Vec<f64>,
    /// Per-feature means of the generating distribution (for closed-form
    /// Shapley values of linear models).
    pub feature_means: Vec<f64>,
}

impl SynthData {
    /// Exact Shapley values of the *generating linear function* at `x`,
    /// valid when features are independent: `φ_i = w_i (x_i − E[x_i])`.
    /// Returns `None` for non-linear generators.
    pub fn linear_shapley(&self, x: &[f64]) -> Option<Vec<f64>> {
        if self.coefficients.is_empty() || x.len() != self.coefficients.len() {
            return None;
        }
        Some(
            self.coefficients
                .iter()
                .zip(x)
                .zip(&self.feature_means)
                .map(|((w, xi), mu)| w * (xi - mu))
                .collect(),
        )
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    // Box-Muller on rand's uniform source.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Linear-Gaussian regression: `y = w·x + ε`, x ~ N(0, I), ε ~ N(0, noise²).
/// Coefficients decay geometrically so the importance ranking is unambiguous;
/// `n_irrelevant` trailing features get weight 0.
pub fn linear_gaussian(
    n_rows: usize,
    n_relevant: usize,
    n_irrelevant: usize,
    noise: f64,
    seed: u64,
) -> Result<SynthData, DataError> {
    let d = n_relevant + n_irrelevant;
    if d == 0 || n_rows == 0 {
        return Err(DataError::Shape("empty synthetic spec".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let coefficients: Vec<f64> = (0..d)
        .map(|j| {
            if j < n_relevant {
                // 4, -2, 1, -0.5, ... alternating sign, geometric decay.
                4.0 * 0.5f64.powi(j as i32) * if j % 2 == 0 { 1.0 } else { -1.0 }
            } else {
                0.0
            }
        })
        .collect();
    let mut x = Vec::with_capacity(n_rows * d);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let row: Vec<f64> = (0..d).map(|_| standard_normal(&mut rng)).collect();
        let target: f64 = row
            .iter()
            .zip(&coefficients)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + noise * standard_normal(&mut rng);
        x.extend_from_slice(&row);
        y.push(target);
    }
    let names = (0..d).map(|j| format!("x{j}")).collect();
    Ok(SynthData {
        data: Dataset::new(names, x, y, Task::Regression)?,
        relevant: (0..n_relevant).collect(),
        coefficients,
        feature_means: vec![0.0; d],
    })
}

/// Friedman #1: `y = 10 sin(π x0 x1) + 20 (x2 − 0.5)² + 10 x3 + 5 x4 + ε`,
/// features uniform on `[0,1]`; columns 5.. are irrelevant noise.
pub fn friedman1(
    n_rows: usize,
    n_features: usize,
    noise: f64,
    seed: u64,
) -> Result<SynthData, DataError> {
    if n_features < 5 || n_rows == 0 {
        return Err(DataError::Shape(
            "friedman1 needs ≥5 features and ≥1 row".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n_rows * n_features);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let row: Vec<f64> = (0..n_features).map(|_| rng.gen::<f64>()).collect();
        let t = 10.0 * (std::f64::consts::PI * row[0] * row[1]).sin()
            + 20.0 * (row[2] - 0.5).powi(2)
            + 10.0 * row[3]
            + 5.0 * row[4]
            + noise * standard_normal(&mut rng);
        x.extend_from_slice(&row);
        y.push(t);
    }
    let names = (0..n_features).map(|j| format!("x{j}")).collect();
    Ok(SynthData {
        data: Dataset::new(names, x, y, Task::Regression)?,
        relevant: vec![0, 1, 2, 3, 4],
        coefficients: vec![],
        feature_means: vec![0.5; n_features],
    })
}

/// Pure interaction: `y = sign(x0 · x1)` as a classification task — no
/// marginal effect on either feature alone. Explanation methods that only
/// see main effects fail here; Shapley splits credit between x0 and x1.
pub fn interaction_xor(n_rows: usize, n_noise: usize, seed: u64) -> Result<SynthData, DataError> {
    if n_rows == 0 {
        return Err(DataError::Shape("need ≥1 row".into()));
    }
    let d = 2 + n_noise;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n_rows * d);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let row: Vec<f64> = (0..d).map(|_| standard_normal(&mut rng)).collect();
        let label = if row[0] * row[1] > 0.0 { 1.0 } else { 0.0 };
        x.extend_from_slice(&row);
        y.push(label);
    }
    let names = (0..d).map(|j| format!("x{j}")).collect();
    Ok(SynthData {
        data: Dataset::new(names, x, y, Task::BinaryClassification)?,
        relevant: vec![0, 1],
        coefficients: vec![],
        feature_means: vec![0.0; d],
    })
}

/// The "Clever Hans" NFV dataset (experiment F7).
///
/// Ground truth: SLA violations are caused by high DPI CPU and queue
/// build-up. But the training distribution also contains a *monitoring
/// agent debug counter* that the operator's tooling increments whenever the
/// system is under stress — so in training it correlates almost perfectly
/// with the label while being causally inert. A model trained on this data
/// can latch onto the counter; at deployment (`leak_strength = 0`) the
/// correlation vanishes and the model collapses. The XAI pipeline should
/// expose the counter as dominating the model's decisions.
///
/// `leak_strength` in [0, 1]: probability the counter copies the label
/// rather than noise.
pub fn clever_hans_nfv(
    n_rows: usize,
    leak_strength: f64,
    seed: u64,
) -> Result<SynthData, DataError> {
    if n_rows == 0 {
        return Err(DataError::Shape("need ≥1 row".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = vec![
        "offered_kpps".into(),
        "payload_bytes".into(),
        "dpi_cpu".into(),
        "dpi_queue".into(),
        "fw_cpu".into(),
        "nat_cpu".into(),
        "mon_debug_counter".into(), // the spurious one
    ];
    let d = names.len();
    let mut x = Vec::with_capacity(n_rows * d);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let offered: f64 = rng.gen_range(5.0..60.0);
        let payload: f64 = rng.gen_range(200.0..1400.0);
        // DPI stress rises with load and payload; squashed to [0, 1].
        let stress = (offered / 60.0) * (payload / 1400.0).sqrt() + 0.1 * standard_normal(&mut rng);
        let dpi_cpu = stress.clamp(0.0, 1.0);
        let dpi_queue =
            (stress.max(0.0).powi(2) * 120.0 + 2.0 + 5.0 * standard_normal(&mut rng).abs())
                .max(0.0);
        let fw_cpu = (offered / 120.0 + 0.05 * standard_normal(&mut rng)).clamp(0.0, 1.0);
        let nat_cpu = (offered / 100.0 + 0.05 * standard_normal(&mut rng)).clamp(0.0, 1.0);
        // Causal label: violation when DPI saturates.
        let p_viol = 1.0 / (1.0 + (-(12.0 * (dpi_cpu - 0.72))).exp());
        let label = if rng.gen::<f64>() < p_viol { 1.0 } else { 0.0 };
        // The leak: counter mirrors the label with prob leak_strength.
        let counter = if rng.gen::<f64>() < leak_strength.clamp(0.0, 1.0) {
            label * 80.0 + rng.gen_range(0.0..4.0)
        } else {
            rng.gen_range(0.0..84.0)
        };
        x.extend_from_slice(&[
            offered, payload, dpi_cpu, dpi_queue, fw_cpu, nat_cpu, counter,
        ]);
        y.push(label);
    }
    Ok(SynthData {
        data: Dataset::new(names, x, y, Task::BinaryClassification)?,
        relevant: vec![2, 3], // dpi_cpu, dpi_queue are the causal drivers
        coefficients: vec![],
        feature_means: vec![0.0; d],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn linear_gaussian_shapes_and_determinism() {
        let a = linear_gaussian(500, 4, 4, 0.1, 9).unwrap();
        assert_eq!(a.data.n_rows(), 500);
        assert_eq!(a.data.n_features(), 8);
        assert_eq!(a.relevant, vec![0, 1, 2, 3]);
        let b = linear_gaussian(500, 4, 4, 0.1, 9).unwrap();
        assert_eq!(a.data, b.data);
        assert!(linear_gaussian(0, 1, 0, 0.0, 1).is_err());
        assert!(linear_gaussian(10, 0, 0, 0.0, 1).is_err());
    }

    #[test]
    fn linear_target_correlates_with_strong_feature() {
        let s = linear_gaussian(3000, 3, 3, 0.2, 11).unwrap();
        let x0 = s.data.column(0);
        let x5 = s.data.column(5);
        let c0 = stats::pearson(&x0, &s.data.y).abs();
        let c5 = stats::pearson(&x5, &s.data.y).abs();
        assert!(c0 > 0.7, "c0={c0}");
        assert!(c5 < 0.1, "irrelevant feature leaks: c5={c5}");
    }

    #[test]
    fn linear_shapley_closed_form() {
        let s = linear_gaussian(10, 2, 1, 0.0, 3).unwrap();
        let x = [1.0, -1.0, 5.0];
        let phi = s.linear_shapley(&x).unwrap();
        assert!((phi[0] - s.coefficients[0]).abs() < 1e-12);
        assert!((phi[1] + s.coefficients[1]).abs() < 1e-12 || phi[1] == -s.coefficients[1]);
        assert_eq!(phi[2], 0.0);
        assert!(s.linear_shapley(&[1.0]).is_none());
        let f = friedman1(10, 5, 0.0, 1).unwrap();
        assert!(f.linear_shapley(&[0.0; 5]).is_none());
    }

    #[test]
    fn friedman_relevance() {
        let s = friedman1(3000, 10, 0.3, 5).unwrap();
        assert_eq!(s.relevant, vec![0, 1, 2, 3, 4]);
        let c3 = stats::pearson(&s.data.column(3), &s.data.y).abs();
        let c7 = stats::pearson(&s.data.column(7), &s.data.y).abs();
        assert!(c3 > 0.4, "x3 has a strong linear effect: {c3}");
        assert!(c7 < 0.08, "noise feature: {c7}");
        assert!(friedman1(10, 4, 0.0, 0).is_err());
    }

    #[test]
    fn xor_has_no_marginal_signal() {
        let s = interaction_xor(4000, 1, 13).unwrap();
        let c0 = stats::pearson(&s.data.column(0), &s.data.y).abs();
        assert!(c0 < 0.06, "marginal correlation should vanish: {c0}");
        // But the product is fully informative.
        let prod: Vec<f64> = s
            .data
            .rows()
            .map(|r| if r[0] * r[1] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        assert_eq!(prod, s.data.y);
        let frac = s.data.positive_fraction();
        assert!((frac - 0.5).abs() < 0.05, "balanced: {frac}");
    }

    #[test]
    fn clever_hans_leak_dominates_in_training_only() {
        let leaky = clever_hans_nfv(4000, 0.95, 21).unwrap();
        let ci = leaky.data.feature_index("mon_debug_counter").unwrap();
        let c_leak = stats::pearson(&leaky.data.column(ci), &leaky.data.y).abs();
        assert!(c_leak > 0.7, "leak should dominate: {c_leak}");
        let clean = clever_hans_nfv(4000, 0.0, 22).unwrap();
        let c_clean = stats::pearson(&clean.data.column(ci), &clean.data.y).abs();
        assert!(c_clean < 0.06, "no leak at deployment: {c_clean}");
        // The causal driver stays informative in both.
        let di = clean.data.feature_index("dpi_cpu").unwrap();
        assert!(stats::pearson(&clean.data.column(di), &clean.data.y) > 0.5);
    }
}
