//! The tabular dataset container shared by every model and explainer.

use crate::DataError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// What the target column means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Continuous target (e.g., p95 latency in ms).
    Regression,
    /// Binary target in {0.0, 1.0} (e.g., SLA violated).
    BinaryClassification,
}

/// One cross-validation fold: (train row indices, validation row indices).
pub type FoldIndices = (Vec<usize>, Vec<usize>);

/// A dense, row-major tabular dataset with named features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature names, one per column.
    pub names: Vec<String>,
    /// Row-major feature matrix, `rows × names.len()`.
    x: Vec<f64>,
    /// Target, one per row.
    pub y: Vec<f64>,
    /// Task semantics of `y`.
    pub task: Task,
}

impl Dataset {
    /// Builds a dataset, validating shapes and finiteness.
    pub fn new(
        names: Vec<String>,
        x: Vec<f64>,
        y: Vec<f64>,
        task: Task,
    ) -> Result<Self, DataError> {
        let d = names.len();
        if d == 0 {
            return Err(DataError::Shape(
                "dataset needs at least one feature".into(),
            ));
        }
        if y.is_empty() {
            return Err(DataError::Shape("dataset needs at least one row".into()));
        }
        if x.len() != d * y.len() {
            return Err(DataError::Shape(format!(
                "x has {} values, expected {} rows × {} features",
                x.len(),
                y.len(),
                d
            )));
        }
        if let Some(bad) = x.iter().chain(y.iter()).find(|v| !v.is_finite()) {
            return Err(DataError::Value(format!(
                "non-finite value {bad} in dataset"
            )));
        }
        if task == Task::BinaryClassification {
            if let Some(bad) = y.iter().find(|v| **v != 0.0 && **v != 1.0) {
                return Err(DataError::Value(format!(
                    "binary target contains {bad}, expected 0 or 1"
                )));
            }
        }
        Ok(Self { names, x, y, task })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.y.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.names.len()
    }

    /// Borrowed view of row `i`. Panics if out of range (an index bug, not
    /// user input).
    pub fn row(&self, i: usize) -> &[f64] {
        let d = self.n_features();
        &self.x[i * d..(i + 1) * d]
    }

    /// Iterator over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.x.chunks_exact(self.n_features())
    }

    /// Column `j` copied into a vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        self.rows().map(|r| r[j]).collect()
    }

    /// The full row-major buffer.
    pub fn x_flat(&self) -> &[f64] {
        &self.x
    }

    /// Mutable access to the row-major buffer (for scalers).
    pub(crate) fn x_flat_mut(&mut self) -> &mut [f64] {
        &mut self.x
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// A new dataset containing the given rows (indices may repeat —
    /// bootstrap sampling uses this).
    pub fn take_rows(&self, idx: &[usize]) -> Result<Dataset, DataError> {
        if idx.is_empty() {
            return Err(DataError::Shape("take_rows with empty index set".into()));
        }
        if let Some(&bad) = idx.iter().find(|&&i| i >= self.n_rows()) {
            return Err(DataError::Shape(format!(
                "row index {bad} out of {}",
                self.n_rows()
            )));
        }
        let d = self.n_features();
        let mut x = Vec::with_capacity(idx.len() * d);
        let mut y = Vec::with_capacity(idx.len());
        for &i in idx {
            x.extend_from_slice(self.row(i));
            y.push(self.y[i]);
        }
        Dataset::new(self.names.clone(), x, y, self.task)
    }

    /// Deterministic shuffled train/test split. `test_fraction` in (0, 1).
    pub fn split(&self, test_fraction: f64, seed: u64) -> Result<(Dataset, Dataset), DataError> {
        if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
            return Err(DataError::Value(format!(
                "test_fraction {test_fraction} not in (0, 1)"
            )));
        }
        let n = self.n_rows();
        let n_test = ((n as f64) * test_fraction).round() as usize;
        if n_test == 0 || n_test >= n {
            return Err(DataError::Shape(format!(
                "split of {n} rows at {test_fraction} leaves an empty side"
            )));
        }
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let (test_idx, train_idx) = idx.split_at(n_test);
        Ok((self.take_rows(train_idx)?, self.take_rows(test_idx)?))
    }

    /// Deterministic k-fold index sets: returns `k` (train, validation)
    /// pairs covering every row exactly once as validation.
    pub fn kfold_indices(&self, k: usize, seed: u64) -> Result<Vec<FoldIndices>, DataError> {
        let n = self.n_rows();
        if k < 2 || k > n {
            return Err(DataError::Value(format!("k={k} invalid for {n} rows")));
        }
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let val: Vec<usize> = idx.iter().copied().skip(f).step_by(k).collect();
            let valset: std::collections::HashSet<usize> = val.iter().copied().collect();
            let train: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|i| !valset.contains(i))
                .collect();
            folds.push((train, val));
        }
        Ok(folds)
    }

    /// Class balance for classification targets (fraction of positives).
    pub fn positive_fraction(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&v| v == 1.0).count() as f64 / self.y.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(
            vec!["a".into(), "b".into()],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            vec![0.0, 1.0, 0.0, 1.0],
            Task::BinaryClassification,
        )
        .unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(Dataset::new(vec![], vec![], vec![1.0], Task::Regression).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![1.0], vec![], Task::Regression).is_err());
        assert!(Dataset::new(
            vec!["a".into()],
            vec![1.0, 2.0],
            vec![1.0],
            Task::Regression
        )
        .is_err());
        assert!(Dataset::new(
            vec!["a".into()],
            vec![f64::NAN],
            vec![1.0],
            Task::Regression
        )
        .is_err());
        assert!(Dataset::new(
            vec!["a".into()],
            vec![1.0],
            vec![0.5],
            Task::BinaryClassification
        )
        .is_err());
    }

    #[test]
    fn row_and_column_access() {
        let d = small();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.column(1), vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("zz"), None);
        assert_eq!(d.rows().count(), 4);
    }

    #[test]
    fn take_rows_bootstraps() {
        let d = small();
        let b = d.take_rows(&[0, 0, 3]).unwrap();
        assert_eq!(b.n_rows(), 3);
        assert_eq!(b.row(0), b.row(1));
        assert_eq!(b.y[2], 1.0);
        assert!(d.take_rows(&[]).is_err());
        assert!(d.take_rows(&[9]).is_err());
    }

    #[test]
    fn split_partitions_rows() {
        let d = small();
        let (train, test) = d.split(0.25, 7).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), d.n_rows());
        assert_eq!(test.n_rows(), 1);
        // Determinism.
        let (t2, s2) = d.split(0.25, 7).unwrap();
        assert_eq!(train, t2);
        assert_eq!(test, s2);
        assert!(d.split(0.0, 1).is_err());
        assert!(d.split(1.0, 1).is_err());
    }

    #[test]
    fn kfold_covers_everything_once() {
        let names = vec!["a".into()];
        let n = 25;
        let d = Dataset::new(
            names,
            (0..n).map(|i| i as f64).collect(),
            vec![0.0; n],
            Task::Regression,
        )
        .unwrap();
        let folds = d.kfold_indices(5, 3).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all_val: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all_val.sort_unstable();
        assert_eq!(all_val, (0..n).collect::<Vec<_>>());
        for (tr, va) in &folds {
            assert_eq!(tr.len() + va.len(), n);
            assert!(va.iter().all(|i| !tr.contains(i)));
        }
        assert!(d.kfold_indices(1, 0).is_err());
        assert!(d.kfold_indices(26, 0).is_err());
    }

    #[test]
    fn positive_fraction_counts() {
        assert!((small().positive_fraction() - 0.5).abs() < 1e-12);
    }
}
