//! Minimal CSV serialization for datasets — enough to export experiment
//! data for external plotting and to re-import it, without a CSV crate.
//!
//! Format: header row of feature names plus a final `target` column; numeric
//! values in `{:.17e}`-roundtrippable plain formatting. Names containing
//! commas, quotes or newlines are quoted per RFC 4180.

use crate::dataset::{Dataset, Task};
use crate::DataError;
use std::fmt::Write as _;

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes the dataset to CSV text.
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = data
        .names
        .iter()
        .map(|n| escape(n))
        .chain(std::iter::once("target".to_string()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (row, y) in data.rows().zip(&data.y) {
        for v in row {
            // Shortest roundtrip representation.
            let _ = write!(out, "{v}");
            out.push(',');
        }
        let _ = writeln!(out, "{y}");
    }
    out
}

/// Parses one CSV line honoring quotes.
fn parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Deserializes a dataset from CSV text produced by [`to_csv`] (or any CSV
/// with a trailing `target` column of numbers).
pub fn from_csv(text: &str, task: Task) -> Result<Dataset, DataError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| DataError::Value("empty CSV".into()))?;
    let mut names = parse_line(header);
    let last = names
        .pop()
        .ok_or_else(|| DataError::Value("header has no columns".into()))?;
    if last != "target" {
        return Err(DataError::Value(format!(
            "last column must be 'target', got '{last}'"
        )));
    }
    if names.is_empty() {
        return Err(DataError::Value("CSV has no feature columns".into()));
    }
    let d = names.len();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields = parse_line(line);
        if fields.len() != d + 1 {
            return Err(DataError::Value(format!(
                "row {i}: {} fields, expected {}",
                fields.len(),
                d + 1
            )));
        }
        for f in &fields[..d] {
            let v: f64 = f
                .trim()
                .parse()
                .map_err(|_| DataError::Value(format!("row {i}: bad number '{f}'")))?;
            x.push(v);
        }
        let t: f64 = fields[d]
            .trim()
            .parse()
            .map_err(|_| DataError::Value(format!("row {i}: bad target '{}'", fields[d])))?;
        y.push(t);
    }
    Dataset::new(names, x, y, task)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let d = Dataset::new(
            vec!["plain".into(), "with,comma".into(), "with\"quote".into()],
            vec![1.5, -2.25, 3.125, 0.1, 1e-9, 12345.6789],
            vec![0.0, 1.0],
            Task::BinaryClassification,
        )
        .unwrap();
        let text = to_csv(&d);
        let back = from_csv(&text, Task::BinaryClassification).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn header_quoting() {
        let d = Dataset::new(vec!["a,b".into()], vec![1.0], vec![2.0], Task::Regression).unwrap();
        let text = to_csv(&d);
        assert!(text.starts_with("\"a,b\",target\n"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_csv("", Task::Regression).is_err());
        assert!(
            from_csv("a,b\n1,2\n", Task::Regression).is_err(),
            "no target column"
        );
        assert!(
            from_csv("a,target\n1\n", Task::Regression).is_err(),
            "short row"
        );
        assert!(
            from_csv("a,target\nx,2\n", Task::Regression).is_err(),
            "bad number"
        );
        assert!(
            from_csv("target\n1\n", Task::Regression).is_err(),
            "no features"
        );
    }

    #[test]
    fn parse_line_handles_embedded_quotes() {
        let f = parse_line("\"a\"\"b\",2,\"c,d\"");
        assert_eq!(f, vec!["a\"b", "2", "c,d"]);
    }
}
