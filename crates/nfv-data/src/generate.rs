//! Simulator-backed dataset generation: parameter sweeps over scenarios,
//! producing the latency-regression and SLA-violation datasets every
//! experiment trains on.

use crate::dataset::{Dataset, Task};
use crate::features::{latency_target_ms, FeatureSchema};
use crate::DataError;
use nfv_sim::prelude::*;
use nfv_sim::rng::SimRng;
use nfv_sim::time::SimTime;

/// Sweep configuration for dataset generation over one chain type.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The chain to deploy (per-sample CPU shares are jittered around it).
    pub chain: ChainSpec,
    /// Load range swept, packets/s.
    pub rate_range: (f64, f64),
    /// Mean payload range swept, bytes.
    pub payload_range: (f64, f64),
    /// Relative jitter on each VNF's CPU share per sample, e.g. 0.4 means
    /// shares drawn in `[0.6, 1.4] ×` nominal.
    pub cpu_jitter: f64,
    /// Extra interference range applied uniformly per sample (≥ 1).
    pub interference_range: (f64, f64),
    /// Lognormal sigma of per-sample load noise in the fluid backend.
    pub load_noise: f64,
    /// Lognormal sigma of multiplicative *telemetry measurement noise*
    /// applied to the per-VNF feature columns after the label is computed
    /// (the label reflects the true state; the features are what a noisy
    /// monitoring stack reports). 0 disables it — but then the fluid label
    /// is a deterministic function of the features and every classifier
    /// trivially reaches AUC 1.0.
    pub telemetry_noise: f64,
    /// SLA used for the classification label.
    pub sla: Sla,
    /// Master seed.
    pub seed: u64,
}

impl SweepConfig {
    /// A ready-made sweep over the `secure-web` chain that yields roughly
    /// balanced SLA labels.
    pub fn secure_web(seed: u64) -> SweepConfig {
        SweepConfig {
            chain: ChainSpec::of_kinds(
                "secure-web",
                &[VnfKind::Firewall, VnfKind::Ids, VnfKind::LoadBalancer],
            ),
            rate_range: (30_000.0, 1_200_000.0),
            payload_range: (200.0, 1_400.0),
            cpu_jitter: 0.5,
            interference_range: (1.0, 1.6),
            load_noise: 0.15,
            telemetry_noise: 0.35,
            sla: Sla::tight(),
            seed,
        }
    }
}

/// What the generated rows should predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// p95 end-to-end latency of the *current* window, milliseconds
    /// (log1p-transformed for spread) — the monitoring task.
    LatencyP95LogMs,
    /// SLA violated in the *next* window (1.0) or not (0.0) — the
    /// forecasting task NFV auto-scaling actually needs. The fluid
    /// generator drives an AR(1) load trajectory so the current window
    /// carries real (but imperfect) information about the next.
    SlaViolation,
}

/// Generates `n_rows` samples with the *fluid* backend: each sample is an
/// independent operating point (load, payload, shares, interference) of the
/// swept chain, evaluated analytically. Fast enough for tens of thousands
/// of rows.
pub fn generate_fluid(
    cfg: &SweepConfig,
    n_rows: usize,
    target: Target,
) -> Result<Dataset, DataError> {
    if n_rows == 0 {
        return Err(DataError::Shape("n_rows must be positive".into()));
    }
    let schema = FeatureSchema::for_chain(&cfg.chain);
    let mut rng = SimRng::new(cfg.seed);
    let mut x = Vec::with_capacity(n_rows * schema.len());
    let mut y = Vec::with_capacity(n_rows);
    let core_ghz = ServerSpec::standard().core_ghz;

    // Measured SLA verdict of one evaluated window: the p95 probe and the
    // drop counter are both noisy measurements of the true state.
    let violated = |est: &nfv_sim::chain::ChainEstimate, rng: &mut SimRng| -> bool {
        let noise = |rng: &mut SimRng| {
            if cfg.telemetry_noise > 0.0 {
                rng.lognormal(0.0, 0.6 * cfg.telemetry_noise)
            } else {
                1.0
            }
        };
        let measured_p95 = est.p95_latency_s * noise(rng);
        let measured_drop = (1.0 - est.delivery_probability) * noise(rng);
        measured_p95 > cfg.sla.p95_latency_s || measured_drop > cfg.sla.max_drop_rate
    };

    // Episodes: one deployment configuration driven through an AR(1) load
    // trajectory. For the forecasting target, each row pairs window t's
    // features with window t+1's verdict.
    const EPISODE_WINDOWS: usize = 24;
    const AR_COEFF: f64 = 0.85;
    'outer: loop {
        // Episode-fixed configuration.
        let mut chain = cfg.chain.clone();
        let mut interference = Vec::with_capacity(chain.len());
        for v in &mut chain.vnfs {
            let j = 1.0 + cfg.cpu_jitter * (2.0 * rng.f64() - 1.0);
            v.cpu_share = (v.cpu_share * j).max(0.05);
            interference.push(
                rng.uniform(cfg.interference_range.0, cfg.interference_range.1)
                    .max(1.0),
            );
        }
        let payload = rng.uniform(cfg.payload_range.0, cfg.payload_range.1);
        let mu_log = rng.uniform(
            cfg.rate_range.0.max(1.0).ln(),
            cfg.rate_range.1.max(2.0).ln(),
        );
        let mut log_lambda = mu_log;
        let sigma = cfg.load_noise.max(0.05);

        let mut prev_row: Option<Vec<f64>> = None;
        let mut prev_est: Option<nfv_sim::chain::ChainEstimate> = None;
        for _ in 0..=EPISODE_WINDOWS {
            // AR(1) walk in log-load.
            log_lambda = mu_log + AR_COEFF * (log_lambda - mu_log) + sigma * rng.normal(0.0, 1.0);
            let lambda = log_lambda.exp();
            let est =
                nfv_sim::chain::estimate_chain(&chain, lambda, payload, core_ghz, &interference);
            let mut row = schema
                .from_estimate(&est, lambda, payload, &interference)
                .expect("schema built from the same chain");
            debug_assert_eq!(row.len(), schema.len());
            // Telemetry measurement noise: multiplicative lognormal plus a
            // small additive floor per metric kind (cpu, queue, drop,
            // interference in schema order) — without the floor a zero drop
            // counter stays exactly zero and leaks the true state.
            if cfg.telemetry_noise > 0.0 {
                const FLOORS: [f64; crate::features::PER_VNF_FEATURES] = [0.02, 2.0, 0.01, 0.02];
                for (k, v) in row
                    .iter_mut()
                    .skip(crate::features::GLOBAL_FEATURES)
                    .enumerate()
                {
                    *v *= rng.lognormal(0.0, cfg.telemetry_noise);
                    *v += rng
                        .normal(0.0, cfg.telemetry_noise * FLOORS[k % FLOORS.len()])
                        .abs();
                }
            }
            match target {
                Target::LatencyP95LogMs => {
                    x.extend_from_slice(&row);
                    y.push((est.p95_latency_s * 1e3).max(0.0).ln_1p());
                    if y.len() == n_rows {
                        break 'outer;
                    }
                }
                Target::SlaViolation => {
                    if let Some(prow) = prev_row.take() {
                        let _ = prev_est.take();
                        x.extend_from_slice(&prow);
                        y.push(if violated(&est, &mut rng) { 1.0 } else { 0.0 });
                        if y.len() == n_rows {
                            break 'outer;
                        }
                    }
                    prev_row = Some(row);
                    prev_est = Some(est);
                }
            }
        }
    }
    let task = match target {
        Target::LatencyP95LogMs => Task::Regression,
        Target::SlaViolation => Task::BinaryClassification,
    };
    Dataset::new(schema.names, x, y, task)
}

/// Generates samples with the *discrete-event* backend: runs the swept
/// chain `n_runs` times with different operating points and collects every
/// measurement window as a row. Slower but ground truth.
pub fn generate_des(
    cfg: &SweepConfig,
    n_runs: usize,
    windows_per_run: usize,
    target: Target,
) -> Result<Dataset, DataError> {
    if n_runs == 0 || windows_per_run == 0 {
        return Err(DataError::Shape(
            "n_runs and windows_per_run must be positive".into(),
        ));
    }
    let schema = FeatureSchema::for_chain(&cfg.chain);
    let mut rng = SimRng::new(cfg.seed ^ 0xDE5);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for run in 0..n_runs {
        let rate = rng.uniform(cfg.rate_range.0, cfg.rate_range.1);
        let payload = rng.uniform(cfg.payload_range.0, cfg.payload_range.1);
        let mut chain = cfg.chain.clone();
        for v in &mut chain.vnfs {
            let j = 1.0 + cfg.cpu_jitter * (2.0 * rng.f64() - 1.0);
            v.cpu_share = (v.cpu_share * j).max(0.05);
        }
        // Random global interference realized as a noisy-neighbour fault on
        // every VNF for the whole run.
        let interf = rng
            .uniform(cfg.interference_range.0, cfg.interference_range.1)
            .max(1.0);
        let faults: Vec<Fault> = (0..chain.len())
            .map(|v| Fault {
                chain: 0,
                vnf: v,
                from: SimTime::ZERO,
                until: SimTime::from_secs_f64(1e9),
                kind: FaultKind::NoisyNeighbor { factor: interf },
            })
            .collect();
        let scenario = {
            let mut b = ScenarioBuilder::new().servers(1, ServerSpec::standard());
            b = b.chain(
                chain,
                Workload::poisson(rate),
                PacketSizes::Fixed(payload),
                cfg.sla.clone(),
            );
            let mut sc = b.build().map_err(|e| DataError::Value(e.to_string()))?;
            sc.faults = faults;
            sc
        };
        let horizon = SimDuration::from_secs_f64(0.25 * (windows_per_run as f64 + 1.0));
        let res = scenario
            .run_des(&RunConfig {
                horizon,
                window: SimDuration::from_secs_f64(0.25),
                seed: cfg.seed.wrapping_add(run as u64 * 7919),
                warmup_windows: 1,
            })
            .map_err(|e| DataError::Value(e.to_string()))?;
        for snap in res.windows[0].iter().take(windows_per_run) {
            let Some(row) = schema.from_snapshot(snap) else {
                continue;
            };
            let label = match target {
                Target::LatencyP95LogMs => latency_target_ms(snap).max(0.0).ln_1p(),
                Target::SlaViolation => {
                    if cfg.sla.check(snap).violated() {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            x.extend_from_slice(&row);
            y.push(label);
        }
    }
    let task = match target {
        Target::LatencyP95LogMs => Task::Regression,
        Target::SlaViolation => Task::BinaryClassification,
    };
    Dataset::new(schema.names, x, y, task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn fluid_regression_dataset_is_sane() {
        let cfg = SweepConfig::secure_web(3);
        let d = generate_fluid(&cfg, 2_000, Target::LatencyP95LogMs).unwrap();
        assert_eq!(d.n_rows(), 2_000);
        assert_eq!(d.task, Task::Regression);
        // Latency must grow with offered load (the correlation is tempered
        // by per-episode CPU-share diversity and buffer-capped saturation).
        let load = d.column(0);
        let corr = stats::spearman(&load, &d.y);
        assert!(corr > 0.3, "load→latency correlation {corr}");
        // Determinism.
        let d2 = generate_fluid(&cfg, 2_000, Target::LatencyP95LogMs).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn fluid_classification_labels_are_balanced_enough() {
        let cfg = SweepConfig::secure_web(5);
        let d = generate_fluid(&cfg, 3_000, Target::SlaViolation).unwrap();
        let frac = d.positive_fraction();
        assert!(
            (0.15..=0.85).contains(&frac),
            "label balance unusable: {frac}"
        );
    }

    #[test]
    fn des_dataset_has_rows_and_signal() {
        let mut cfg = SweepConfig::secure_web(7);
        cfg.rate_range = (5_000.0, 150_000.0); // keep DES cheap
        let d = generate_des(&cfg, 12, 3, Target::LatencyP95LogMs).unwrap();
        assert!(d.n_rows() >= 30, "rows: {}", d.n_rows());
        let load = d.column(0);
        let corr = stats::spearman(&load, &d.y);
        assert!(corr > 0.3, "load→latency correlation {corr}");
    }

    #[test]
    fn empty_specs_rejected() {
        let cfg = SweepConfig::secure_web(1);
        assert!(generate_fluid(&cfg, 0, Target::SlaViolation).is_err());
        assert!(generate_des(&cfg, 0, 2, Target::SlaViolation).is_err());
        assert!(generate_des(&cfg, 2, 0, Target::SlaViolation).is_err());
    }
}
