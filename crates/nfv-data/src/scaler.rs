//! Feature scaling, fitted on training data and applied to anything.

use crate::dataset::Dataset;
use crate::stats;
use crate::DataError;
use serde::{Deserialize, Serialize};

/// Per-column affine transform `x' = (x − shift) / scale`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    shift: Vec<f64>,
    scale: Vec<f64>,
}

impl Scaler {
    /// Fits a z-score scaler (zero mean, unit variance; constant columns get
    /// scale 1 so they pass through shifted only).
    pub fn standard(data: &Dataset) -> Scaler {
        let d = data.n_features();
        let mut shift = Vec::with_capacity(d);
        let mut scale = Vec::with_capacity(d);
        for j in 0..d {
            let col = data.column(j);
            shift.push(stats::mean(&col));
            let s = stats::std_dev(&col);
            scale.push(if s > 1e-12 { s } else { 1.0 });
        }
        Scaler { shift, scale }
    }

    /// Fits a min-max scaler to [0, 1] (constant columns pass through).
    pub fn min_max(data: &Dataset) -> Scaler {
        let d = data.n_features();
        let mut shift = Vec::with_capacity(d);
        let mut scale = Vec::with_capacity(d);
        for j in 0..d {
            let col = data.column(j);
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            shift.push(lo);
            scale.push(if hi - lo > 1e-12 { hi - lo } else { 1.0 });
        }
        Scaler { shift, scale }
    }

    /// Number of columns this scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.shift.len()
    }

    /// Transforms one row in place.
    pub fn transform_row(&self, row: &mut [f64]) -> Result<(), DataError> {
        if row.len() != self.n_features() {
            return Err(DataError::Shape(format!(
                "row has {} features, scaler fitted on {}",
                row.len(),
                self.n_features()
            )));
        }
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - self.shift[j]) / self.scale[j];
        }
        Ok(())
    }

    /// Inverse of [`Self::transform_row`].
    pub fn inverse_row(&self, row: &mut [f64]) -> Result<(), DataError> {
        if row.len() != self.n_features() {
            return Err(DataError::Shape(format!(
                "row has {} features, scaler fitted on {}",
                row.len(),
                self.n_features()
            )));
        }
        for (j, v) in row.iter_mut().enumerate() {
            *v = *v * self.scale[j] + self.shift[j];
        }
        Ok(())
    }

    /// Transforms a whole dataset in place.
    pub fn transform(&self, data: &mut Dataset) -> Result<(), DataError> {
        if data.n_features() != self.n_features() {
            return Err(DataError::Shape(format!(
                "dataset has {} features, scaler fitted on {}",
                data.n_features(),
                self.n_features()
            )));
        }
        let d = data.n_features();
        for row in data.x_flat_mut().chunks_exact_mut(d) {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.shift[j]) / self.scale[j];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Task;

    fn data() -> Dataset {
        Dataset::new(
            vec!["a".into(), "b".into(), "const".into()],
            vec![
                1.0, 10.0, 5.0, //
                2.0, 20.0, 5.0, //
                3.0, 30.0, 5.0, //
                4.0, 40.0, 5.0,
            ],
            vec![0.0; 4],
            Task::Regression,
        )
        .unwrap()
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let d = data();
        let sc = Scaler::standard(&d);
        let mut scaled = d.clone();
        sc.transform(&mut scaled).unwrap();
        for j in 0..2 {
            let col = scaled.column(j);
            assert!(stats::mean(&col).abs() < 1e-12);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-12);
        }
        // Constant column shifted to zero, not exploded.
        assert!(scaled.column(2).iter().all(|v| *v == 0.0));
    }

    #[test]
    fn min_max_scaler_unit_range() {
        let d = data();
        let sc = Scaler::min_max(&d);
        let mut scaled = d.clone();
        sc.transform(&mut scaled).unwrap();
        for j in 0..2 {
            let col = scaled.column(j);
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 1.0);
        }
    }

    #[test]
    fn roundtrip_row() {
        let d = data();
        let sc = Scaler::standard(&d);
        let mut row = vec![2.5, 25.0, 5.0];
        let orig = row.clone();
        sc.transform_row(&mut row).unwrap();
        sc.inverse_row(&mut row).unwrap();
        for (a, b) in row.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let d = data();
        let sc = Scaler::standard(&d);
        let mut short = vec![1.0];
        assert!(sc.transform_row(&mut short).is_err());
        assert!(sc.inverse_row(&mut short).is_err());
        let mut other = Dataset::new(
            vec!["x".into()],
            vec![1.0, 2.0],
            vec![0.0, 0.0],
            Task::Regression,
        )
        .unwrap();
        assert!(sc.transform(&mut other).is_err());
    }
}
