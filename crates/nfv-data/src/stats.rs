//! Descriptive statistics and correlation measures used across the
//! workspace — including the rank correlations that score explanation
//! agreement.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (0 for fewer than two values).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Empirical q-quantile by linear interpolation on the sorted sample.
/// Returns 0 for an empty slice; `q` is clamped to [0, 1].
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// Pearson linear correlation in [−1, 1]; 0 when either side is constant
/// or lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Fractional ranks with ties sharing their average rank (the convention
/// Spearman's ρ requires).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        xs[i]
            .partial_cmp(&xs[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average of ranks i..=j (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on the ranks).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(a), &ranks(b))
}

/// Kendall's τ-b (accounting for ties), O(n²) — fine for attribution
/// vectors, whose length is the feature count.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // Tied in both: contributes to neither.
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_a as f64) * (n0 - ties_b as f64)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Top-k agreement: |top-k(a) ∩ top-k(b)| / k, comparing by descending
/// value. Standard metric for "do two explanations point at the same
/// features".
pub fn top_k_agreement(a: &[f64], b: &[f64], k: usize) -> f64 {
    if a.len() != b.len() || k == 0 || a.is_empty() {
        return 0.0;
    }
    let k = k.min(a.len());
    let top = |xs: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| {
            xs[j]
                .partial_cmp(&xs[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    };
    let ta = top(a);
    let tb = top(b);
    let hits = ta.iter().filter(|i| tb.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn pearson_known_cases() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0, "constant side");
        assert_eq!(pearson(&a, &[1.0]), 0.0, "length mismatch");
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_sees_monotone_nonlinear() {
        let a: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!(pearson(&a, &b) < 1.0);
    }

    #[test]
    fn kendall_known_value() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [3.0, 4.0, 1.0, 2.0, 5.0];
        // 6 concordant, 4 discordant of 10 pairs → τ = 0.2 (matches scipy).
        assert!((kendall_tau(&a, &b) - 0.2).abs() < 1e-12);
        assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = a.iter().rev().copied().collect();
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_with_ties_stays_bounded() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 2.0, 3.0];
        let t = kendall_tau(&a, &b);
        assert!((-1.0..=1.0).contains(&t));
        assert!(t > 0.5, "mostly concordant: {t}");
    }

    #[test]
    fn top_k_agreement_cases() {
        let a = [0.9, 0.1, 0.8, 0.0];
        let b = [0.8, 0.0, 0.9, 0.1];
        assert!((top_k_agreement(&a, &b, 2) - 1.0).abs() < 1e-12);
        let c = [0.0, 0.9, 0.1, 0.8];
        assert_eq!(top_k_agreement(&a, &c, 2), 0.0);
        assert_eq!(top_k_agreement(&a, &b, 0), 0.0);
        assert!(
            (top_k_agreement(&a, &b, 99) - 1.0).abs() < 1e-12,
            "k clamps to d"
        );
    }
}
