//! The distributed determinism contract: for every serve method, an
//! explanation computed (1) directly against the library, (2) by a
//! single-process [`ServeEngine`], (3) by the in-process [`ServeCluster`],
//! and (4) by a [`NetCluster`] routing over real TCP connections to shard
//! servers is **bit-identical** (`f64::to_bits`) — under the forced-scalar
//! SoA kernel and the forced-SIMD one alike.
//!
//! The wire can uphold this because every f64 crosses as its IEEE-754 bit
//! pattern and every stochastic explainer is seeded from request content.
//! The SIMD arms share one `#[test]`: the force switches are process-global
//! (the shard servers here live in this process, listening on loopback).

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_net::prelude::*;
use nfv_serve::cache::CacheKey;
use nfv_serve::prelude::*;
use nfv_serve::request::request_seed;
use nfv_xai::prelude::*;
use std::time::Duration;

const SEED: u64 = 42;

struct Fixture {
    gbdt: Gbdt,
    packed: SoaForest,
    names: Vec<String>,
    background: Background,
    groups: FeatureGroups,
    rows: Vec<Vec<f64>>,
}

fn fixture() -> Fixture {
    let synth = friedman1(300, 5, 0.1, 11).unwrap();
    let gbdt = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 15,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let packed = SoaForest::from_gbdt(&gbdt).unwrap();
    let names = synth.data.names.clone();
    let d = names.len();
    let groups = FeatureGroups::per_stage(&names)
        .unwrap_or_else(|_| FeatureGroups::new(vec!["all".into()], vec![0; d]).unwrap());
    Fixture {
        gbdt,
        packed,
        names,
        background: Background::from_dataset(&synth.data, 16, 1).unwrap(),
        groups,
        rows: vec![synth.data.row(0).to_vec(), synth.data.row(13).to_vec()],
    }
}

fn methods() -> Vec<ExplainMethod> {
    vec![
        ExplainMethod::TreeShap,
        ExplainMethod::KernelShap { n_coalitions: 32 },
        ExplainMethod::Lime { n_samples: 64 },
        ExplainMethod::SamplingShapley {
            n_permutations: 6,
            antithetic: true,
        },
        ExplainMethod::ExactShapley,
        ExplainMethod::GroupedShapley,
        ExplainMethod::Permutation,
    ]
}

/// The library-level computation every transport must reproduce, seeded
/// exactly as a shard worker would seed it.
fn direct(f: &Fixture, x: &[f64], method: ExplainMethod, version: u64, grid: f64) -> Attribution {
    let key = CacheKey::build("m", version, method, x, grid).unwrap();
    let seed = request_seed(SEED, key.stable_hash());
    let base = Some(f.background.expected_output(&f.packed));
    match method {
        ExplainMethod::TreeShap => gbdt_shap(&f.gbdt, x, &f.names).unwrap(),
        ExplainMethod::KernelShap { n_coalitions } => kernel_shap(
            &f.packed,
            x,
            &f.background,
            &f.names,
            &KernelShapConfig {
                n_coalitions,
                ridge: 0.0,
                seed,
            },
        )
        .unwrap(),
        ExplainMethod::Lime { n_samples } => {
            let cfg = LimeConfig {
                n_samples,
                seed,
                ..LimeConfig::default()
            };
            lime(&f.packed, x, &f.background, &f.names, &cfg)
                .unwrap()
                .attribution
        }
        ExplainMethod::SamplingShapley {
            n_permutations,
            antithetic,
        } => sampling_shapley(
            &f.packed,
            x,
            &f.background,
            &f.names,
            &SamplingConfig {
                n_permutations,
                antithetic,
                seed,
            },
        )
        .unwrap(),
        ExplainMethod::ExactShapley => {
            exact_shapley(&f.packed, x, &f.background, &f.names).unwrap()
        }
        ExplainMethod::GroupedShapley => {
            grouped_shapley(&f.packed, x, &f.background, &f.groups).unwrap()
        }
        ExplainMethod::Permutation => {
            instance_permutation(&f.packed, x, &f.background, &f.names, base).unwrap()
        }
    }
}

fn bits(a: &Attribution) -> (Vec<u64>, u64, u64) {
    (
        a.values.iter().map(|v| v.to_bits()).collect(),
        a.base_value.to_bits(),
        a.prediction.to_bits(),
    )
}

/// One full pass under whichever SoA kernel is currently forced. All four
/// serving paths are constructed fresh (no cache entry computed under the
/// other kernel can leak into this arm).
fn run_arm(f: &Fixture, arm: &str) {
    let cfg = ServeConfig {
        seed: SEED,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(cfg);
    let cluster = ServeCluster::start(ClusterConfig {
        shards: 3,
        shard: cfg,
        ..ClusterConfig::default()
    });
    // Three real shard servers on loopback, one router over them.
    let servers: Vec<ShardServer> = (0..3)
        .map(|_| {
            ShardServer::start(ShardConfig {
                serve: cfg,
                ..ShardConfig::default()
            })
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let net = NetCluster::connect(&addrs, NetClusterConfig::default()).unwrap();

    let ev = engine
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(f.gbdt.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();
    let cv = cluster
        .register(
            "m",
            ServeModel::Gbdt(f.gbdt.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();
    let nv = net
        .register(
            "m",
            ServeModel::Gbdt(f.gbdt.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();
    assert_eq!(ev, cv, "fresh registries must assign the same version");
    assert_eq!(ev, nv, "wire registration must assign the same version");

    for method in methods() {
        for x in &f.rows {
            let want = bits(&direct(f, x, method, ev, cfg.quantization_grid));
            let req = || ExplainRequest {
                model_id: "m".into(),
                features: x.clone(),
                method,
                budget: Duration::from_secs(30),
            };
            let via_engine = engine.explain(req()).unwrap();
            let via_cluster = cluster.explain(req()).unwrap();
            let via_wire = net.explain(&req()).unwrap();
            assert_eq!(via_wire.model_version, nv);
            assert_eq!(
                bits(&via_engine.attribution),
                want,
                "[{arm}] engine diverged from direct on {method:?}"
            );
            assert_eq!(
                bits(&via_cluster.attribution),
                want,
                "[{arm}] in-process cluster diverged from direct on {method:?}"
            );
            assert_eq!(
                bits(&via_wire.attribution),
                want,
                "[{arm}] wire cluster diverged from direct on {method:?}"
            );
        }
    }

    // No frame was ever rejected, and the drain handshake is clean.
    let stats = net.stats();
    assert_eq!(stats.net_errors, 0, "[{arm}] transport faults on loopback");
    for (id, _, health) in &stats.shards {
        let h = health.as_ref().expect("health probe");
        assert_eq!(h.protocol_errors, 0, "[{arm}] shard {id} protocol errors");
    }
    net.drain_all().unwrap();
    for s in servers {
        let (_completed, protocol_errors) = s.join();
        assert_eq!(protocol_errors, 0, "[{arm}] server-side protocol errors");
    }
    engine.shutdown();
    cluster.shutdown();
}

#[test]
fn wire_cluster_engine_and_direct_are_bit_identical_under_both_kernels() {
    let f = fixture();

    set_force_scalar(true);
    run_arm(&f, "scalar");

    if set_force_simd(true) {
        run_arm(&f, "simd");
    } else {
        eprintln!("host has no SIMD kernel; scalar arm covered the invariant");
    }
    set_force_simd(false); // back to runtime detection
}
