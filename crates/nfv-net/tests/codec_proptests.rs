//! Property tests for the wire codec: round-trips are exact, and *no*
//! mutation of the byte stream — truncation, extension, bit flips,
//! hostile length prefixes — can cause a panic or a silently-wrong decode.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use nfv_net::frame::{decode_frame, encode_frame, MsgType, WireError, HEADER_LEN, MAX_PAYLOAD};
use nfv_net::msg::{Message, WireHealth, WireRegister, WireRequest, WireResponse};
use nfv_serve::prelude::{ExplainMethod, RejectReason, ServeError};
use proptest::prelude::*;

/// Generates an arbitrary message from drawn scalars. Covers every
/// message type; floats include negative, subnormal, and huge values.
fn arbitrary_message(
    kind: u64,
    rid: u64,
    n: usize,
    x: f64,
    flag: bool,
    text_len: usize,
) -> Message {
    let text: String = "wire-αβγ-0123456789"
        .chars()
        .cycle()
        .take(text_len)
        .collect();
    let features: Vec<f64> = (0..n)
        .map(|i| x * (i as f64 + 0.5) * if i % 2 == 0 { 1e-12 } else { -1e9 })
        .collect();
    match kind % 8 {
        0 => Message::Explain(WireRequest {
            rid,
            model_id: text.clone(),
            features,
            method: match kind % 9 {
                0 => ExplainMethod::TreeShap,
                1 => ExplainMethod::KernelShap { n_coalitions: n },
                2 => ExplainMethod::Lime { n_samples: n + 1 },
                3 => ExplainMethod::SamplingShapley {
                    n_permutations: n,
                    antithetic: flag,
                },
                4 => ExplainMethod::ExactShapley,
                5 => ExplainMethod::GroupedShapley,
                6 => ExplainMethod::Permutation,
                // Registry-era methods ride the named (tag 0) encoding.
                7 => ExplainMethod::Interactions,
                _ => ExplainMethod::custom("prop-plugin", rid),
            },
            budget_ns: rid.wrapping_mul(31),
        }),
        1 => Message::ExplainReply(WireResponse {
            rid,
            outcome: Ok(nfv_net::msg::WireAnswer {
                attribution: nfv_xai::prelude::Attribution {
                    names: (0..n).map(|i| format!("f{i}")).collect(),
                    values: features,
                    base_value: x,
                    prediction: -x,
                    method: text.clone(),
                },
                model_version: rid,
                cache_hit: flag,
                batch_size: n as u64,
                queue_wait_ns: rid,
                service_ns: rid / 2,
                coarse_budget: if flag { n as u64 } else { 0 },
                max_abs_err: if flag { x.abs() } else { 0.0 },
            }),
        }),
        2 => Message::ExplainReply(WireResponse {
            rid,
            outcome: Err(match kind % 5 {
                0 => ServeError::Rejected(RejectReason::QueueFull { capacity: n }),
                1 => ServeError::Rejected(RejectReason::UnknownModel {
                    model_id: text.clone(),
                }),
                2 => ServeError::Rejected(RejectReason::ShuttingDown),
                3 => ServeError::Explain(nfv_xai::XaiError::Numeric(text.clone())),
                _ => ServeError::Internal(text.clone()),
            }),
        }),
        3 => Message::Register(WireRegister {
            rid,
            model_id: text.clone(),
            model_json: format!("{{\"k\":{}}}", n),
            feature_names: (0..n.min(8)).map(|i| format!("f{i}")).collect(),
            background_rows: (0..n.min(4)).map(|_| vec![x, -x, x * 0.5]).collect(),
            method_configs: if flag {
                vec![(text.clone(), n as u64)]
            } else {
                Vec::new()
            },
        }),
        4 => Message::RegisterOk { rid, version: rid },
        5 => Message::Health { rid },
        6 => Message::HealthOk(WireHealth {
            rid,
            draining: flag,
            queue_len: n as u64,
            cache_len: rid,
            protocol_errors: 0,
            stats_json: text,
        }),
        _ => Message::DrainOk {
            rid,
            completed: rid,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_generated_message_roundtrips_exactly(
        kind in 0u64..1_000_000,
        rid in 0u64..u64::MAX,
        n in 0usize..24,
        x in -1e12f64..1e12,
        text_len in 0usize..64,
    ) {
        let m = arbitrary_message(kind, rid, n, x, kind % 3 == 0, text_len);
        let payload = m.encode_payload();
        let back = Message::decode_payload(m.msg_type(), Bytes::from_vec(payload.clone()))
            .expect("well-formed payload decodes");
        prop_assert_eq!(&back, &m);

        // Through the full frame layer too.
        let frame = encode_frame(m.msg_type(), &payload);
        let mut buf = Bytes::from_vec(frame);
        let (t, body) = decode_frame(&mut buf, MAX_PAYLOAD).expect("frame decodes");
        prop_assert_eq!(t, m.msg_type());
        prop_assert_eq!(
            Message::decode_payload(t, body).expect("body decodes"),
            m
        );
    }

    #[test]
    fn protocol_v1_method_frames_decode_forever(
        tag in 1u8..8,
        n in 1usize..1024,
        antithetic in 0u8..2,
        rid in 0u64..u64::MAX,
    ) {
        // Hand-build an Explain payload exactly as a protocol-v1 peer
        // would: the legacy single-byte method discriminants. These must
        // decode to the canonical variants forever, and — because the
        // seven original built-ins still *encode* with their legacy tags —
        // re-encoding the decoded message must be byte-identical.
        let mut buf = BytesMut::new();
        buf.put_u64_le(rid);
        nfv_sim::wire::put_str(&mut buf, "m");
        nfv_sim::wire::put_f64s(&mut buf, &[1.0, -2.5]);
        buf.put_u8(tag);
        match tag {
            2 | 3 => buf.put_u64_le(n as u64),
            4 => {
                buf.put_u64_le(n as u64);
                buf.put_u8(antithetic);
            }
            _ => {}
        }
        buf.put_u64_le(77);
        let payload = buf.freeze().as_ref().to_vec();
        let decoded =
            Message::decode_payload(MsgType::ExplainRequest, Bytes::from_vec(payload.clone()))
                .expect("v1 frame decodes");
        let expected = match tag {
            1 => ExplainMethod::TreeShap,
            2 => ExplainMethod::KernelShap { n_coalitions: n },
            3 => ExplainMethod::Lime { n_samples: n },
            4 => ExplainMethod::SamplingShapley {
                n_permutations: n,
                antithetic: antithetic != 0,
            },
            5 => ExplainMethod::ExactShapley,
            6 => ExplainMethod::GroupedShapley,
            _ => ExplainMethod::Permutation,
        };
        match &decoded {
            Message::Explain(r) => prop_assert_eq!(r.method, expected),
            other => prop_assert!(false, "wrong message type: {:?}", other),
        }
        prop_assert_eq!(decoded.encode_payload(), payload);
    }

    #[test]
    fn truncation_at_any_point_is_a_clean_error(
        kind in 0u64..1_000_000,
        rid in 0u64..u64::MAX,
        n in 0usize..16,
        cut_frac in 0.0f64..1.0,
    ) {
        let m = arbitrary_message(kind, rid, n, 1.25, true, 12);
        let frame = encode_frame(m.msg_type(), &m.encode_payload());
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < frame.len());
        let mut buf = Bytes::from_vec(frame[..cut].to_vec());
        // Must be an Err — never a panic, never an Ok from partial bytes.
        prop_assert!(decode_frame(&mut buf, MAX_PAYLOAD).is_err());
    }

    #[test]
    fn single_byte_corruption_never_panics_and_never_lies(
        kind in 0u64..1_000_000,
        rid in 0u64..u64::MAX,
        n in 0usize..16,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let m = arbitrary_message(kind, rid, n, -3.5, false, 8);
        let clean = encode_frame(m.msg_type(), &m.encode_payload());
        let mut dirty = clean.clone();
        let pos = ((dirty.len() as f64) * pos_frac) as usize % dirty.len();
        dirty[pos] ^= xor;
        let mut buf = Bytes::from_vec(dirty);
        match decode_frame(&mut buf, MAX_PAYLOAD) {
            // Header/checksum corruption: rejected, fine.
            Err(_) => {}
            // The corrupted byte can only decode if it was outside the
            // checksummed/validated region — impossible: every byte is
            // either header (validated) or payload/checksum (hashed).
            // Exception: a flip inside the length field can alias ONLY if
            // the checksum still matches, which FNV makes astronomically
            // unlikely; treat a clean decode of identical content as pass.
            Ok((t, body)) => {
                let back = Message::decode_payload(t, body);
                prop_assert!(
                    back == Message::decode_payload(
                        m.msg_type(),
                        Bytes::from_vec(m.encode_payload())
                    ),
                    "corrupted frame decoded to different content"
                );
            }
        }
    }

    #[test]
    fn trailing_extension_is_rejected(
        kind in 0u64..1_000_000,
        extra in 1usize..16,
    ) {
        let m = arbitrary_message(kind, 7, 3, 2.0, true, 5);
        let mut payload = m.encode_payload();
        payload.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert!(matches!(
            Message::decode_payload(m.msg_type(), Bytes::from_vec(payload)),
            Err(WireError::Decode(_))
        ));
    }

    #[test]
    fn hostile_length_prefixes_cannot_allocate(
        claimed in (MAX_PAYLOAD as u64 + 1)..u64::from(u32::MAX),
    ) {
        // A header claiming up to 4 GiB of payload with nothing behind it.
        let mut buf = BytesMut::new();
        buf.put_slice(b"NFVW");
        buf.put_u16_le(1);
        buf.put_u8(MsgType::Health as u8);
        buf.put_u32_le(claimed as u32);
        let mut frame = Bytes::from_vec(buf.freeze().as_ref().to_vec());
        prop_assert!(matches!(
            decode_frame(&mut frame, MAX_PAYLOAD),
            Err(WireError::Oversized { .. })
        ));
    }
}

#[test]
fn decode_consumes_exactly_one_frame() {
    // Two frames back-to-back: decoding the first leaves the second intact.
    let a = Message::Health { rid: 1 };
    let b = Message::DrainOk {
        rid: 2,
        completed: 9,
    };
    let mut stream = encode_frame(a.msg_type(), &a.encode_payload());
    stream.extend(encode_frame(b.msg_type(), &b.encode_payload()));
    let mut buf = Bytes::from_vec(stream);
    let (t1, p1) = decode_frame(&mut buf, MAX_PAYLOAD).unwrap();
    assert_eq!(Message::decode_payload(t1, p1).unwrap(), a);
    let (t2, p2) = decode_frame(&mut buf, MAX_PAYLOAD).unwrap();
    assert_eq!(Message::decode_payload(t2, p2).unwrap(), b);
    assert_eq!(buf.remaining(), 0);
}

#[test]
fn header_len_matches_layout() {
    // Magic(4) + version(2) + type(1) + len(4).
    assert_eq!(HEADER_LEN, 11);
    let frame = encode_frame(MsgType::Drain, b"abc");
    assert_eq!(frame.len(), HEADER_LEN + 3 + 8);
}
