//! Cluster-level behaviour over real shard *processes*: spill on shard
//! death, graceful join/leave with registration replay, and the drain
//! handshake. The shard binary is the real `nfv-shard` (via
//! `CARGO_BIN_EXE_nfv-shard`), forced scalar through the environment so
//! parent and children compute on the same kernel.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_net::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const SEED: u64 = 5;

fn spawn_shard() -> (Child, String, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_nfv-shard"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--seed",
            &SEED.to_string(),
        ])
        .env("NFV_ML_FORCE_SCALAR", "1")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn nfv-shard");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("nfv-shard listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr, reader)
}

struct Fixture {
    model: Gbdt,
    names: Vec<String>,
    background: Background,
    rows: Vec<Vec<f64>>,
}

fn fixture() -> Fixture {
    let synth = friedman1(200, 5, 0.1, 7).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 10,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let rows = (0..24).map(|i| synth.data.row(i * 7).to_vec()).collect();
    Fixture {
        model,
        names: synth.data.names.clone(),
        background: Background::from_dataset(&synth.data, 16, 1).unwrap(),
        rows,
    }
}

fn request(f: &Fixture, n: usize) -> ExplainRequest {
    ExplainRequest {
        model_id: "m".into(),
        features: f.rows[n % f.rows.len()].clone(),
        method: match n % 3 {
            0 => ExplainMethod::TreeShap,
            1 => ExplainMethod::KernelShap { n_coalitions: 16 },
            _ => ExplainMethod::Permutation,
        },
        budget: Duration::from_secs(30),
    }
}

/// Kill one shard process mid-replay: every subsequent request that hashed
/// to the dead shard must still complete, served by its ring successor,
/// and the spill/net-error counters must record the reroutes.
#[test]
fn killing_a_shard_mid_replay_spills_to_the_ring_successor() {
    nfv_ml::prelude::set_force_scalar(true);
    let f = fixture();
    let mut shards: Vec<(Child, String, BufReader<ChildStdout>)> =
        (0..3).map(|_| spawn_shard()).collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.1.clone()).collect();

    let net = NetCluster::connect(&addrs, NetClusterConfig::default()).unwrap();
    net.register(
        "m",
        ServeModel::Gbdt(f.model.clone()),
        f.names.clone(),
        f.background.clone(),
    )
    .unwrap();

    // A reference engine (same seed) pins the expected bits.
    let reference = Engine::start(ServeConfig {
        seed: SEED,
        ..ServeConfig::default()
    });
    reference
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(f.model.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();

    // Phase 1: healthy cluster, answers must match the reference bit for
    // bit (subprocess arm of the identity contract).
    for n in 0..8 {
        let wire = net.explain(&request(&f, n)).unwrap();
        let local = reference.explain(request(&f, n)).unwrap();
        let wire_bits: Vec<u64> = wire
            .attribution
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let local_bits: Vec<u64> = local
            .attribution
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(wire_bits, local_bits, "request {n} diverged over the wire");
    }
    assert_eq!(net.stats().spills, 0, "healthy cluster never spills");

    // Phase 2: kill shard id 1 (process murder, no drain) and keep going.
    shards[1].0.kill().expect("kill shard 1");
    shards[1].0.wait().expect("reap shard 1");
    for n in 8..24 {
        let resp = net
            .explain(&request(&f, n))
            .unwrap_or_else(|e| panic!("request {n} failed after shard kill: {e}"));
        assert!(!resp.attribution.values.is_empty());
    }
    let stats = net.stats();
    assert!(
        stats.spills > 0,
        "some of the 16 post-kill requests must have hashed to the dead shard"
    );
    assert!(
        stats.net_errors > 0,
        "connection loss must be observed and counted"
    );

    // Phase 3: formally remove the corpse. leave() tolerates the dead
    // connection (drains as 0) and rebuilds the ring without it, after
    // which routing never touches it: no new spills.
    assert_eq!(net.leave(1).unwrap(), 0, "a killed shard drains as zero");
    let spills_after_leave = net.stats().spills;
    for n in 0..24 {
        net.explain(&request(&f, n)).unwrap();
    }
    assert_eq!(
        net.stats().spills,
        spills_after_leave,
        "after leave() the ring has no dead entries to spill from"
    );

    // Survivors drain cleanly and exit 0.
    net.drain_all().unwrap();
    let (mut c0, _, r0) = shards.remove(0);
    let (mut c2, _, r2) = {
        // shards[1] (originally index 2) after the remove above.
        shards.remove(1)
    };
    assert!(c0.wait().unwrap().success(), "shard 0 exit status");
    assert!(c2.wait().unwrap().success(), "shard 2 exit status");
    drop((r0, r2));
    reference.shutdown();
}

/// Join replays the registration history so a late shard answers with the
/// same model versions; leave() drains gracefully with bounded remap.
#[test]
fn join_replays_registrations_and_leave_drains_gracefully() {
    nfv_ml::prelude::set_force_scalar(true);
    let f = fixture();

    // Two in-process shard servers to start with.
    let cfg = ServeConfig {
        seed: SEED,
        ..ServeConfig::default()
    };
    let s0 = ShardServer::start(ShardConfig {
        serve: cfg,
        ..ShardConfig::default()
    })
    .unwrap();
    let s1 = ShardServer::start(ShardConfig {
        serve: cfg,
        ..ShardConfig::default()
    })
    .unwrap();
    let addrs = vec![s0.local_addr().to_string(), s1.local_addr().to_string()];
    let net = NetCluster::connect(&addrs, NetClusterConfig::default()).unwrap();

    // Two models registered *before* the third shard exists.
    let v1 = net
        .register(
            "m",
            ServeModel::Gbdt(f.model.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();
    let v2 = net
        .register(
            "m2",
            ServeModel::Gbdt(f.model.clone()),
            f.names.clone(),
            f.background.clone(),
        )
        .unwrap();

    // Joiner: a real subprocess shard. Replay must hand it the same
    // history, so answers carry the same versions.
    let (mut child, addr, reader) = spawn_shard();
    let id = net.join(&addr).unwrap();
    assert_eq!(net.shard_ids(), vec![0, 1, id]);

    let mut m2_served = 0;
    for n in 0..24 {
        let mut req = request(&f, n);
        if n % 2 == 0 {
            req.model_id = "m2".into();
        }
        let resp = net.explain(&req).unwrap();
        let want = if n % 2 == 0 { v2 } else { v1 };
        assert_eq!(resp.model_version, want, "replayed history must agree");
        if req.model_id == "m2" {
            m2_served += 1;
        }
    }
    assert_eq!(m2_served, 12);
    assert_eq!(net.stats().spills, 0, "no spills on a healthy 3-shard ring");

    // Graceful leave of the joiner: drain handshake completes, process
    // exits 0, survivors absorb its keys.
    net.leave(id).unwrap();
    for n in 0..12 {
        net.explain(&request(&f, n)).unwrap();
    }
    assert!(child.wait().unwrap().success(), "drained shard exits 0");
    drop(reader);

    // Removing one of two remaining shards is allowed; removing the last
    // is not.
    net.leave(1).unwrap();
    assert!(matches!(net.leave(0), Err(NetError::Config(_))));
    net.drain_all().unwrap();
    let (_, e0) = s0.join();
    let (_, e1) = s1.join();
    assert_eq!((e0, e1), (0, 0), "no protocol errors on either server");
}

/// The router refuses to start empty and surfaces rejects untouched.
#[test]
fn config_errors_and_engine_rejects_surface_cleanly() {
    assert!(matches!(
        NetCluster::connect(&[], NetClusterConfig::default()),
        Err(NetError::Config(_))
    ));

    let server = ShardServer::start(ShardConfig::default()).unwrap();
    let addrs = vec![server.local_addr().to_string()];
    let net = NetCluster::connect(&addrs, NetClusterConfig::default()).unwrap();
    // No model registered: the shard's admission control answers, and the
    // reject crosses the wire typed, not stringly.
    let err = net
        .explain(&ExplainRequest {
            model_id: "ghost".into(),
            features: vec![1.0, 2.0],
            method: ExplainMethod::TreeShap,
            budget: Duration::from_secs(1),
        })
        .unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Serve(ServeError::Rejected(RejectReason::UnknownModel { ref model_id }))
                if model_id == "ghost"
        ),
        "got {err:?}"
    );
    net.drain_all().unwrap();
    server.join();
}
