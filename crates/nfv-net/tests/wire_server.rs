//! Regression tests for the wire-tier correctness fixes and the
//! event-driven shard server's admission behaviour:
//!
//! - registration failures answer with the typed `RegisterErr`, not a
//!   mislabelled `ExplainReply`;
//! - a panicking explain worker cannot wedge the drain handshake (the
//!   in-flight count is settled by a reply guard on unwind);
//! - a `ShardConn` rpc that races the reader's `fail_all` (pending entry
//!   inserted after the map was drained) fails fast instead of stalling
//!   out the full rpc timeout;
//! - `NetCluster::join` is not blocked by a slow in-flight explain (the
//!   members lock is not held across RPCs);
//! - pipelining deeper than the server's per-connection limit gets the
//!   typed `PipelineTooDeep` reject while shallower pipelines complete.

use bytes::BufMut;
use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_net::frame::{read_frame, write_frame, MsgType};
use nfv_net::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

fn start_server(cfg: ShardConfig) -> (ShardServer, String) {
    let server = ShardServer::start(cfg).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn explain_request(model_id: &str) -> ExplainRequest {
    ExplainRequest {
        model_id: model_id.into(),
        features: vec![0.25, 0.5, 0.75, 0.1, 0.9],
        method: ExplainMethod::Permutation,
        budget: Duration::from_secs(30),
    }
}

/// A registration the server cannot deserialize must come back as the
/// typed `RegisterErr` — not as an `ExplainReply` wearing an error. Sent
/// raw so the assertion is on the wire message itself, not on the
/// client's (intentionally lenient) decoding.
#[test]
fn register_failure_replies_with_typed_register_err() {
    let (server, addr) = start_server(ShardConfig::default());
    let mut stream = TcpStream::connect(&addr).unwrap();
    let msg = Message::Register(WireRegister {
        rid: 9,
        model_id: "broken".into(),
        model_json: "this is not a model".into(),
        feature_names: vec!["a".into()],
        background_rows: vec![vec![0.0]],
        method_configs: Vec::new(),
    });
    write_frame(&mut stream, msg.msg_type(), &msg.encode_payload()).unwrap();
    let (t, payload) = read_frame(&mut stream, MAX_PAYLOAD).unwrap();
    let reply = Message::decode_payload(t, payload).unwrap();
    match reply {
        Message::RegisterErr { rid, error } => {
            assert_eq!(rid, 9);
            assert!(
                matches!(error, ServeError::Internal(ref m) if m.contains("model json")),
                "unexpected error: {error:?}"
            );
        }
        other => panic!("expected RegisterErr, got {:?}", other.msg_type()),
    }
    server.stop();
    server.join();
}

/// The client still understands a registration failure from an old-style
/// shard (pre-`RegisterErr` protocol) *and* from the typed message; both
/// surface as `ShardCallError::Serve`.
#[test]
fn client_register_surfaces_typed_failure() {
    let (server, addr) = start_server(ShardConfig::default());
    let conn = ShardConn::connect(&addr, MAX_PAYLOAD, Duration::from_secs(10)).unwrap();
    // A background whose row width disagrees with the model is rejected
    // server-side during registration.
    let synth = friedman1(80, 5, 0.1, 3).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 3,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let err = conn
        .register(
            "m",
            &ServeModel::Gbdt(model),
            &["only-one-name".to_string()],
            &Background::from_dataset(&synth.data, 8, 1).unwrap(),
        )
        .unwrap_err();
    assert!(
        matches!(err, ShardCallError::Serve(_)),
        "expected a serve-side registration failure, got {err:?}"
    );
    server.stop();
    server.join();
}

/// A worker panic mid-explain must still settle the in-flight count and
/// answer the request as `Internal`; a subsequent drain completes instead
/// of busy-waiting forever on the leaked counter.
#[test]
fn drain_completes_after_worker_panic() {
    const PANIC_MODEL: &str = "wire-server-injected-panic";
    std::env::set_var("NFV_NET_TEST_PANIC_MODEL", PANIC_MODEL);
    let (server, addr) = start_server(ShardConfig::default());
    std::env::remove_var("NFV_NET_TEST_PANIC_MODEL");

    let conn = ShardConn::connect(&addr, MAX_PAYLOAD, Duration::from_secs(10)).unwrap();
    let err = conn.explain(&explain_request(PANIC_MODEL)).unwrap_err();
    assert!(
        matches!(
            err,
            ShardCallError::Serve(ServeError::Internal(ref m)) if m.contains("panicked")
        ),
        "expected the panic to answer as Internal, got {err:?}"
    );

    // Pre-fix the leaked in-flight count makes this wait forever; bound
    // the handshake well under the rpc timeout.
    let t0 = Instant::now();
    let completed = conn.drain().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain took {:?}",
        t0.elapsed()
    );
    // The panicked request got its (error) response frame, so it counts.
    assert_eq!(completed, 1);
    server.join();
}

/// Kill the connection inside the window between the rpc's liveness check
/// and its pending-map insert: the reader's `fail_all` has already
/// drained the map, so nothing will ever complete the entry. The call
/// must fail fast, not sit out the full rpc timeout.
#[test]
fn rpc_inserted_after_fail_all_fails_fast() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server_side: Arc<Mutex<Option<TcpStream>>> = Arc::new(Mutex::new(None));
    {
        let server_side = Arc::clone(&server_side);
        thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            *server_side.lock().unwrap() = Some(stream);
        });
    }
    let rpc_timeout = Duration::from_secs(10);
    let conn = Arc::new(ShardConn::connect(&addr, MAX_PAYLOAD, rpc_timeout).unwrap());
    // Wait for the accept side to hold the socket.
    while server_side.lock().unwrap().is_none() {
        thread::sleep(Duration::from_millis(1));
    }
    let hook_conn = Arc::clone(&conn);
    conn.set_rpc_race_hook(Box::new(move || {
        // Drop the server side: the reader sees EOF and runs `fail_all`
        // (alive := false, pending map drained) while this rpc is parked
        // between its liveness check and its insert.
        drop(server_side.lock().unwrap().take());
        let t0 = Instant::now();
        while hook_conn.is_alive() && t0.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(1));
        }
        assert!(!hook_conn.is_alive(), "reader never noticed the close");
        // `fail_all` stores the flag before draining; give the drain
        // itself a beat to finish so the insert truly lands afterwards.
        thread::sleep(Duration::from_millis(20));
    }));

    let t0 = Instant::now();
    let err = conn.explain(&explain_request("m")).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        matches!(err, ShardCallError::Wire(WireError::ConnectionLost(_))),
        "expected a fail-fast ConnectionLost, got {err:?}"
    );
    assert!(
        elapsed < rpc_timeout / 2,
        "rpc stalled {elapsed:?} against a dead connection (timeout {rpc_timeout:?})"
    );
}

/// A shard that sits on an explain for the full rpc timeout must not
/// block membership changes: `join` only needs the members lock briefly,
/// never across a member's RPC.
#[test]
fn join_is_not_blocked_by_a_slow_explain() {
    // A fake shard that accepts and reads but never answers.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let stall_addr = listener.local_addr().unwrap().to_string();
    thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((mut stream, _)) = listener.accept() {
            let sink = thread::spawn(move || {
                let mut buf = [0u8; 4096];
                while matches!(stream.read(&mut buf), Ok(n) if n > 0) {}
            });
            held.push(sink);
        }
    });

    let cluster = Arc::new(
        NetCluster::connect(
            std::slice::from_ref(&stall_addr),
            NetClusterConfig {
                rpc_timeout: Duration::from_secs(3),
                ..NetClusterConfig::default()
            },
        )
        .unwrap(),
    );
    let slow = {
        let cluster = Arc::clone(&cluster);
        thread::spawn(move || cluster.explain(&explain_request("m")))
    };
    // Let the explain get in flight against the stalling shard.
    thread::sleep(Duration::from_millis(300));

    let (server, shard_addr) = start_server(ShardConfig::default());
    let t0 = Instant::now();
    let id = cluster.join(&shard_addr).unwrap();
    let join_elapsed = t0.elapsed();
    assert!(
        join_elapsed < Duration::from_millis(1500),
        "join waited {join_elapsed:?} behind a slow explain"
    );
    assert!(cluster.shard_ids().contains(&id));

    // The stalled explain eventually times out on its own terms.
    let res = slow.join().unwrap();
    assert!(res.is_err(), "the stalling shard cannot have answered");
    server.stop();
    server.join();
}

/// Two explains written back-to-back in one TCP segment against a server
/// with `max_pipeline = 1`: the first is dispatched, the second must be
/// rejected with the typed `PipelineTooDeep` carrying both numbers.
#[test]
fn pipelining_past_the_depth_limit_gets_a_typed_reject() {
    let (server, addr) = start_server(ShardConfig {
        max_pipeline: 1,
        dispatch_threads: 1,
        ..ShardConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut batch = Vec::new();
    for rid in [1u64, 2] {
        let msg = Message::Explain(WireRequest {
            rid,
            model_id: "nope".into(),
            features: vec![0.1, 0.2],
            method: ExplainMethod::Permutation,
            budget_ns: 1_000_000_000,
        });
        write_frame(&mut batch, msg.msg_type(), &msg.encode_payload()).unwrap();
    }
    use std::io::Write;
    stream.write_all(&batch).unwrap();

    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..2 {
        let (t, payload) = read_frame(&mut stream, MAX_PAYLOAD).unwrap();
        match Message::decode_payload(t, payload).unwrap() {
            Message::ExplainReply(WireResponse { rid, outcome }) => {
                outcomes.insert(rid, outcome);
            }
            other => panic!("expected ExplainReply, got {:?}", other.msg_type()),
        }
    }
    // rid 1 reached the engine (which rejects the unknown model); rid 2
    // never got that far.
    assert!(
        matches!(
            outcomes.get(&1),
            Some(Err(ServeError::Rejected(RejectReason::UnknownModel { .. })))
        ),
        "rid 1: {:?}",
        outcomes.get(&1)
    );
    assert!(
        matches!(
            outcomes.get(&2),
            Some(Err(ServeError::Rejected(RejectReason::PipelineTooDeep {
                depth: 1,
                limit: 1
            })))
        ),
        "rid 2: {:?}",
        outcomes.get(&2)
    );
    assert_eq!(server.protocol_errors(), 0);
    server.stop();
    server.join();
}

/// A request naming a method no explainer is registered for must come
/// back as the typed `UnknownMethod` reject — a dispatch miss, not a
/// protocol error — and the connection stays serviceable afterwards.
#[test]
fn unknown_method_over_the_wire_gets_a_typed_reject() {
    let synth = friedman1(80, 5, 0.1, 5).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 3,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let background = Background::from_dataset(&synth.data, 8, 1).unwrap();
    let (server, addr) = start_server(ShardConfig::default());
    let conn = ShardConn::connect(&addr, MAX_PAYLOAD, Duration::from_secs(10)).unwrap();
    conn.register(
        "m",
        &ServeModel::Gbdt(model),
        &synth.data.names,
        &background,
    )
    .unwrap();

    // Client-side custom method: neither process registered "online-sage",
    // so it crosses the wire as its interned `#id` and the shard's
    // registry lookup misses.
    let err = conn
        .explain(&ExplainRequest {
            model_id: "m".into(),
            features: synth.data.row(0).to_vec(),
            method: ExplainMethod::custom("online-sage", 8),
            budget: Duration::from_secs(30),
        })
        .unwrap_err();
    match err {
        ShardCallError::Serve(ServeError::Rejected(RejectReason::UnknownMethod { ref method })) => {
            assert!(
                method.starts_with('#'),
                "the shard knows no name for the id: {method}"
            );
        }
        other => panic!("expected UnknownMethod, got {other:?}"),
    }

    // A foreign client sending the *name* itself over the tag-0 shape
    // lands in the same place: decoded as a custom id, answered with the
    // typed reject — never a protocol error.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut payload = bytes::BytesMut::new();
    payload.put_u64_le(42); // rid
    nfv_sim::wire::put_str(&mut payload, "m");
    nfv_sim::wire::put_f64s(&mut payload, synth.data.row(0));
    payload.put_u8(0); // named-method tag
    nfv_sim::wire::put_str(&mut payload, "online-sage");
    payload.put_u64_le(8); // budget word
    payload.put_u64_le(30_000_000_000); // budget_ns
    let payload = payload.freeze();
    write_frame(&mut stream, MsgType::ExplainRequest, payload.as_ref()).unwrap();
    let (t, body) = read_frame(&mut stream, MAX_PAYLOAD).unwrap();
    match Message::decode_payload(t, body).unwrap() {
        Message::ExplainReply(WireResponse { rid: 42, outcome }) => assert!(
            matches!(
                outcome,
                Err(ServeError::Rejected(RejectReason::UnknownMethod { .. }))
            ),
            "named unknown method: {outcome:?}"
        ),
        other => panic!("expected ExplainReply, got {:?}", other.msg_type()),
    }

    // Registered methods on the same connection still serve fine.
    let ok = conn.explain(&explain_request("m"));
    assert!(ok.is_ok(), "connection wedged after reject: {ok:?}");
    assert_eq!(server.protocol_errors(), 0);
    server.stop();
    server.join();
}

/// `Register` frames can carry per-method anytime divisors; under
/// queue-full pressure the shard degrades that service class by its
/// configured factor instead of the crate default ÷ 8.
#[test]
fn register_method_configs_tune_the_shard_anytime_divisor() {
    let synth = friedman1(160, 5, 0.1, 13).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 8,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let background = Background::from_dataset(&synth.data, 16, 1).unwrap();
    let (server, addr) = start_server(ShardConfig {
        serve: ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
        dispatch_threads: 8,
        ..ShardConfig::default()
    });
    let conn = ShardConn::connect(&addr, MAX_PAYLOAD, Duration::from_secs(30)).unwrap();
    conn.register_with_configs(
        "m",
        &ServeModel::Gbdt(model),
        &synth.data.names,
        &background,
        &[("kernel-shap".to_string(), 4)],
    )
    .unwrap();

    // 12 distinct pipelined requests against a 1-worker, 1-slot engine:
    // overflow is served coarse inline. Divisor 4 ⇒ budget 512 / 4.
    let requests: Vec<ExplainRequest> = (0..12)
        .map(|i| ExplainRequest {
            model_id: "m".into(),
            features: synth.data.row(i).to_vec(),
            method: ExplainMethod::KernelShap { n_coalitions: 512 },
            budget: Duration::from_secs(30),
        })
        .collect();
    let answers = conn.explain_many(&requests);
    let coarse: Vec<u64> = answers
        .iter()
        .filter_map(|r| match r.as_ref().unwrap().fidelity {
            Fidelity::Coarse { sample_budget } => Some(sample_budget),
            _ => None,
        })
        .collect();
    assert!(
        !coarse.is_empty(),
        "a 1-slot queue under 12 pipelined requests must degrade"
    );
    for budget in &coarse {
        assert_eq!(
            *budget,
            512 / 4,
            "the registered divisor must govern, not the default ÷ {DEFAULT_ANYTIME_DIVISOR}"
        );
    }
    assert_eq!(server.protocol_errors(), 0);
    server.stop();
    server.join();
}

/// Pipelined explains within the depth limit all complete, match the
/// one-at-a-time answers bit for bit, and leave a clean drain.
#[test]
fn pipelined_explains_within_depth_complete_and_drain_clean() {
    let synth = friedman1(160, 5, 0.1, 11).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 8,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let background = Background::from_dataset(&synth.data, 16, 1).unwrap();

    let (server, addr) = start_server(ShardConfig::default());
    let conn = ShardConn::connect(&addr, MAX_PAYLOAD, Duration::from_secs(30)).unwrap();
    conn.register(
        "m",
        &ServeModel::Gbdt(model),
        &synth.data.names,
        &background,
    )
    .unwrap();

    let requests: Vec<ExplainRequest> = (0..16)
        .map(|i| ExplainRequest {
            model_id: "m".into(),
            features: synth.data.row(i * 9).to_vec(),
            method: match i % 3 {
                0 => ExplainMethod::TreeShap,
                1 => ExplainMethod::KernelShap { n_coalitions: 16 },
                _ => ExplainMethod::Permutation,
            },
            budget: Duration::from_secs(30),
        })
        .collect();
    let piped = conn.explain_many(&requests);
    assert_eq!(piped.len(), requests.len());
    for (i, (req, got)) in requests.iter().zip(&piped).enumerate() {
        let got = got.as_ref().unwrap_or_else(|e| panic!("request {i}: {e}"));
        let solo = conn.explain(req).unwrap();
        assert_eq!(
            got.attribution.values, solo.attribution.values,
            "request {i}: pipelined answer diverged"
        );
    }
    assert_eq!(server.protocol_errors(), 0);
    let completed = conn.drain().unwrap();
    // 16 pipelined + 16 verification singles, all answered.
    assert_eq!(completed, 32);
    let (final_completed, protocol_errors) = server.join();
    assert_eq!(final_completed, 32);
    assert_eq!(protocol_errors, 0);
}
