//! `nfv-shard` — one serving shard as an OS process.
//!
//! Usage:
//!
//! ```text
//! nfv-shard [--addr 127.0.0.1:0] [--workers N] [--queue N] [--seed N]
//!           [--dispatch N] [--pipeline N]
//! ```
//!
//! `--workers`/`--queue` size the engine; `--dispatch` sizes the wire
//! tier's explain-dispatch pool (`0` = auto: `max(4, cores)`) and
//! `--pipeline` caps explains in flight per connection (excess gets a
//! typed `PipelineTooDeep` reject).
//!
//! Prints `nfv-shard listening on <addr>` (with the resolved port) on
//! stdout once ready — supervisors parse this line — then serves until a
//! Drain message arrives, and exits 0 after the drain completes. Kernel
//! policy is inherited from the `NFV_ML_KERNEL={scalar,avx2,lane,avx512}`
//! environment variable (or the legacy `NFV_ML_FORCE_SCALAR` /
//! `NFV_ML_FORCE_SIMD` switches), read by the model layer itself; unset,
//! the engine calibrates per forest shape at runtime.

use nfv_net::prelude::*;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: nfv-shard [--addr HOST:PORT] [--workers N] [--queue N] [--seed N] \
         [--dispatch N] [--pipeline N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ShardConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => cfg.serve.workers = n,
                _ => usage(),
            },
            "--queue" => match value.parse() {
                Ok(n) if n > 0 => cfg.serve.queue_capacity = n,
                _ => usage(),
            },
            "--seed" => match value.parse() {
                Ok(n) => cfg.serve.seed = n,
                _ => usage(),
            },
            "--dispatch" => match value.parse() {
                Ok(n) => cfg.dispatch_threads = n,
                _ => usage(),
            },
            "--pipeline" => match value.parse() {
                Ok(n) if n > 0 => cfg.max_pipeline = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let server = match ShardServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nfv-shard: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("nfv-shard listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    let (completed, protocol_errors) = server.join();
    println!("nfv-shard drained after {completed} requests, {protocol_errors} protocol errors");
    std::io::stdout().flush().ok();
    std::process::exit(if protocol_errors == 0 { 0 } else { 1 });
}
