//! `nfv-net-smoke` — end-to-end multi-process smoke test.
//!
//! Spawns three real `nfv-shard` processes on loopback, registers a model
//! through the router, replays a short mixed-method workload from several
//! client threads, then storms the shards with 64 concurrent connections
//! each pipelining several requests (depth > 1) over one socket, and
//! asserts:
//!
//! - every routed wire answer is **bit-identical** to an in-process
//!   reference engine with the same seed,
//! - every pipelined request completes (no drops, no protocol faults
//!   under concurrent pipelined load),
//! - zero protocol errors on every shard,
//! - the drain handshake completes and every child exits 0.
//!
//! Exits non-zero on any violation. Wired into `ci.sh`.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_net::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("nfv-net-smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// The sibling `nfv-shard` binary lives next to this one.
fn shard_binary() -> std::path::PathBuf {
    let me = std::env::current_exe().unwrap_or_else(|e| die(&format!("current_exe: {e}")));
    let dir = me.parent().unwrap_or_else(|| die("no parent dir"));
    let bin = dir.join("nfv-shard");
    if !bin.exists() {
        die(&format!(
            "{} not found (build the nfv-net bins first)",
            bin.display()
        ));
    }
    bin
}

/// Spawns one shard and parses its listening banner. The returned reader
/// must outlive the child: closing the pipe early would break the child's
/// final status line.
fn spawn_shard(seed: u64) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(shard_binary())
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--seed",
            &seed.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("spawn nfv-shard: {e}")));
    let stdout = child
        .stdout
        .take()
        .unwrap_or_else(|| die("no child stdout"));
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| die(&format!("read child banner: {e}")));
    let addr = line
        .trim()
        .strip_prefix("nfv-shard listening on ")
        .unwrap_or_else(|| die(&format!("unexpected banner: {line:?}")))
        .to_string();
    (child, addr, reader)
}

fn mixed_method(i: usize) -> ExplainMethod {
    match i % 4 {
        0 => ExplainMethod::TreeShap,
        1 => ExplainMethod::KernelShap { n_coalitions: 32 },
        2 => ExplainMethod::SamplingShapley {
            n_permutations: 8,
            antithetic: true,
        },
        _ => ExplainMethod::Permutation,
    }
}

fn main() {
    const SEED: u64 = 11;
    const N_SHARDS: usize = 3;
    const N_CLIENTS: usize = 4;
    const PER_CLIENT: usize = 12;

    // Fixture: a small GBDT over synthetic telemetry features.
    let synth = friedman1(200, 5, 0.1, 7).unwrap_or_else(|e| die(&format!("friedman1: {e}")));
    let params = GbdtParams {
        n_rounds: 12,
        ..Default::default()
    };
    let model = Gbdt::fit(&synth.data, &params, 0).unwrap_or_else(|e| die(&format!("fit: {e}")));
    let bg = Background::from_dataset(&synth.data, 16, 1)
        .unwrap_or_else(|e| die(&format!("background: {e}")));

    // In-process reference engine: same seed, same config defaults.
    let reference = Engine::start(ServeConfig {
        seed: SEED,
        ..ServeConfig::default()
    });
    reference
        .registry()
        .register(
            "sla",
            ServeModel::Gbdt(model.clone()),
            synth.data.names.clone(),
            bg.clone(),
        )
        .unwrap_or_else(|e| die(&format!("reference register: {e}")));

    // Three real shard processes.
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    let mut readers = Vec::new();
    for _ in 0..N_SHARDS {
        let (child, addr, reader) = spawn_shard(SEED);
        children.push(child);
        addrs.push(addr);
        readers.push(reader);
    }
    let cluster = NetCluster::connect(&addrs, NetClusterConfig::default())
        .unwrap_or_else(|e| die(&format!("connect: {e}")));
    cluster
        .register("sla", ServeModel::Gbdt(model), synth.data.names.clone(), bg)
        .unwrap_or_else(|e| die(&format!("register: {e}")));

    // Mixed-method replay from several client threads, checked bit-for-bit
    // against the reference engine.
    let cluster = Arc::new(cluster);
    let reference = Arc::new(reference);
    let synth = Arc::new(synth);
    let mut handles = Vec::new();
    for c in 0..N_CLIENTS {
        let cluster = Arc::clone(&cluster);
        let reference = Arc::clone(&reference);
        let synth = Arc::clone(&synth);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_CLIENT {
                let n = c * PER_CLIENT + i;
                let request = ExplainRequest {
                    model_id: "sla".into(),
                    features: synth.data.row(n % synth.data.n_rows()).to_vec(),
                    method: mixed_method(n),
                    budget: Duration::from_secs(10),
                };
                let wire = cluster
                    .explain(&request)
                    .unwrap_or_else(|e| die(&format!("wire explain #{n}: {e}")));
                let local = reference
                    .explain(request)
                    .unwrap_or_else(|e| die(&format!("local explain #{n}: {e}")));
                let wire_bits: Vec<u64> = wire
                    .attribution
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let local_bits: Vec<u64> = local
                    .attribution
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                if wire_bits != local_bits
                    || wire.attribution.base_value.to_bits()
                        != local.attribution.base_value.to_bits()
                {
                    die(&format!("request #{n}: wire answer is not bit-identical"));
                }
            }
        }));
    }
    for h in handles {
        if h.join().is_err() {
            die("client thread panicked");
        }
    }

    // Phase 2: pipelined storm. 64 concurrent connections, each writing a
    // whole batch to its socket before reading the first response; the
    // event-driven server must interleave them all without a fault.
    const PIPE_CONNS: usize = 64;
    const PIPE_DEPTH: usize = 8;
    let mut stormers = Vec::new();
    for c in 0..PIPE_CONNS {
        let addr = addrs[c % addrs.len()].clone();
        let synth = Arc::clone(&synth);
        stormers.push(std::thread::spawn(move || {
            let conn = ShardConn::connect(&addr, MAX_PAYLOAD, Duration::from_secs(60))
                .unwrap_or_else(|e| die(&format!("pipelined connect {c}: {e}")));
            let requests: Vec<ExplainRequest> = (0..PIPE_DEPTH)
                .map(|i| {
                    let n = c * PIPE_DEPTH + i;
                    ExplainRequest {
                        model_id: "sla".into(),
                        features: synth.data.row(n % synth.data.n_rows()).to_vec(),
                        method: mixed_method(n),
                        budget: Duration::from_secs(30),
                    }
                })
                .collect();
            for (i, result) in conn.explain_many(&requests).iter().enumerate() {
                if let Err(e) = result {
                    die(&format!("pipelined conn {c} request {i}: {e}"));
                }
            }
        }));
    }
    for h in stormers {
        if h.join().is_err() {
            die("pipelined client thread panicked");
        }
    }

    // Zero protocol errors on every shard, then a clean drain.
    let stats = cluster.stats();
    for (id, addr, health) in &stats.shards {
        let h = health
            .as_ref()
            .unwrap_or_else(|| die(&format!("shard {id} at {addr}: health probe failed")));
        if h.protocol_errors != 0 {
            die(&format!(
                "shard {id}: {} protocol errors",
                h.protocol_errors
            ));
        }
    }
    let cluster = Arc::into_inner(cluster).unwrap_or_else(|| die("cluster still shared"));
    let completed = cluster
        .drain_all()
        .unwrap_or_else(|e| die(&format!("drain: {e}")));
    let expected = N_CLIENTS * PER_CLIENT + PIPE_CONNS * PIPE_DEPTH;
    if (completed as usize) < expected {
        die(&format!(
            "shards completed {completed} requests, expected at least {expected}"
        ));
    }
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child
            .wait()
            .unwrap_or_else(|e| die(&format!("wait child {i}: {e}")));
        if !status.success() {
            die(&format!("shard process {i} exited with {status}"));
        }
    }
    drop(readers);
    println!(
        "nfv-net-smoke OK: {} routed + {} pipelined requests ({PIPE_CONNS} connections, \
         depth {PIPE_DEPTH}) over {N_SHARDS} shard processes, bit-identical to in-process, \
         0 protocol errors, clean drain",
        N_CLIENTS * PER_CLIENT,
        PIPE_CONNS * PIPE_DEPTH
    );
}
