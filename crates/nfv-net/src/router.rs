//! The cluster router: consistent-hash placement over shard processes.
//!
//! Placement is the *same function* the in-process [`ServeCluster`] uses —
//! [`route_hash`] over request content, a [`HashRing`] over stable shard
//! ids — so an explanation routes to the same logical shard whether the
//! shards are threads or processes, and answers are bit-identical either
//! way (content-derived seeds, bit-exact wire encoding).
//!
//! Membership: shards get monotonically increasing stable ids. The ring is
//! rebuilt from the *surviving* ids on join/leave ([`HashRing::from_ids`]),
//! so only the keys owned by the departed shard move — bounded remap, not
//! a reshuffle. [`NetCluster::leave`] removes the shard from the ring
//! *before* the drain handshake: no new requests race the drain.
//!
//! Replication: every registration fans out to every shard in id order
//! (and is logged, so joiners replay it in the same order — versions
//! match). Since every shard can answer every request identically,
//! `read_fanout > 1` simply rotates a hot key's reads across its ring
//! successors, trading cache locality for throughput.
//!
//! Spill: on a queue-full reject or any transport fault, the router
//! retries once on the next distinct ring candidate and counts it —
//! the wire twin of `ServeCluster`'s spill-to-next-shard.

use crate::client::{ShardCallError, ShardConn};
use crate::frame::{WireError, MAX_PAYLOAD};
use crate::msg::WireHealth;
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct NetClusterConfig {
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Retry once on the next ring shard when the home shard sheds load
    /// or its connection dies.
    pub spill: bool,
    /// Ring candidates a read may be served from (1 = home shard only).
    pub read_fanout: usize,
    /// Per-RPC response timeout.
    pub rpc_timeout: Duration,
    /// Frame payload cap.
    pub max_payload: usize,
    /// Input quantization grid — must match the shards' `ServeConfig` so
    /// router-side hashes agree with shard-side cache keys.
    pub quantization_grid: f64,
}

impl Default for NetClusterConfig {
    fn default() -> Self {
        NetClusterConfig {
            vnodes: 128,
            spill: true,
            read_fanout: 1,
            rpc_timeout: Duration::from_secs(30),
            max_payload: MAX_PAYLOAD,
            quantization_grid: 1e-6,
        }
    }
}

/// Errors surfaced by the router.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Transport-level failure after any spill retry was spent.
    Wire(WireError),
    /// The serving engine's own verdict (rejects, explainer errors).
    Serve(ServeError),
    /// Router misuse (no shards, unknown shard id, config mismatch).
    Config(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Serve(e) => write!(f, "serve error: {e}"),
            NetError::Config(m) => write!(f, "cluster config error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<ShardCallError> for NetError {
    fn from(e: ShardCallError) -> NetError {
        match e {
            ShardCallError::Wire(w) => NetError::Wire(w),
            ShardCallError::Serve(s) => NetError::Serve(s),
        }
    }
}

/// One registration, logged so late joiners replay history in order.
struct Registration {
    model_id: String,
    model: ServeModel,
    feature_names: Vec<String>,
    background: Background,
}

struct Member {
    id: u32,
    conn: Arc<ShardConn>,
}

/// Health and traffic counters for the whole cluster.
#[derive(Debug, Clone)]
pub struct NetClusterStats {
    /// Requests retried on a ring successor (queue-full or transport).
    pub spills: u64,
    /// Transport faults observed (each also produced a spill attempt or an
    /// error return).
    pub net_errors: u64,
    /// Per-shard `(id, addr, health)`; `None` when the probe failed.
    pub shards: Vec<(u32, String, Option<WireHealth>)>,
}

/// A client-side router over shard server processes.
pub struct NetCluster {
    cfg: NetClusterConfig,
    members: RwLock<Vec<Member>>,
    ring: RwLock<HashRing>,
    registrations: Mutex<Vec<Registration>>,
    next_id: AtomicU64,
    rr: AtomicU64,
    spills: AtomicU64,
    net_errors: AtomicU64,
}

impl NetCluster {
    /// Dials every address; shard ids are assigned in argument order.
    pub fn connect(addrs: &[String], cfg: NetClusterConfig) -> Result<NetCluster, NetError> {
        if addrs.is_empty() {
            return Err(NetError::Config("need at least one shard address".into()));
        }
        if cfg.read_fanout == 0 {
            return Err(NetError::Config("read_fanout must be at least 1".into()));
        }
        let mut members = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let conn = ShardConn::connect(addr, cfg.max_payload, cfg.rpc_timeout)
                .map_err(NetError::Wire)?;
            members.push(Member {
                id: i as u32,
                conn: Arc::new(conn),
            });
        }
        let ids: Vec<u32> = members.iter().map(|m| m.id).collect();
        let ring = HashRing::from_ids(&ids, cfg.vnodes);
        Ok(NetCluster {
            next_id: AtomicU64::new(members.len() as u64),
            members: RwLock::new(members),
            ring: RwLock::new(ring),
            registrations: Mutex::new(Vec::new()),
            rr: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            net_errors: AtomicU64::new(0),
            cfg,
        })
    }

    /// Registers a model on **every** shard, in shard-id order, and logs
    /// the registration for future joiners. All shards must assign the
    /// same version (they see the same ordered history); a mismatch is a
    /// deployment bug and is reported as such.
    pub fn register(
        &self,
        model_id: &str,
        model: ServeModel,
        feature_names: Vec<String>,
        background: Background,
    ) -> Result<u64, NetError> {
        // Hold the log lock across the fan-out: concurrent registrations
        // must hit every shard in one global order.
        let mut log = self.registrations.lock();
        let members = self.members.read();
        let mut version = None;
        for m in members.iter() {
            let v = m
                .conn
                .register(model_id, &model, &feature_names, &background)?;
            match version {
                None => version = Some(v),
                Some(prev) if prev != v => {
                    return Err(NetError::Config(format!(
                        "shard {} assigned version {v} for `{model_id}`, others {prev}: \
                         registration histories diverged",
                        m.id
                    )));
                }
                Some(_) => {}
            }
        }
        drop(members);
        log.push(Registration {
            model_id: model_id.to_string(),
            model,
            feature_names,
            background,
        });
        version.ok_or_else(|| NetError::Config("no shards to register on".into()))
    }

    /// Routes one request: content hash → ring → shard RPC, with optional
    /// read fan-out and one spill retry.
    ///
    /// The members lock is only held long enough to clone the target's
    /// connection handle — never across the RPC itself — so a shard that
    /// is slow (or timing out) cannot block [`NetCluster::join`] and
    /// [`NetCluster::leave`] for the duration of the call.
    pub fn explain(&self, request: &ExplainRequest) -> Result<ExplainResponse, NetError> {
        let first_conn = {
            let members = self.members.read();
            match members.first() {
                Some(m) => Arc::clone(&m.conn),
                None => return Err(NetError::Config("cluster has no shards".into())),
            }
        };
        let hash = route_hash(
            &request.model_id,
            request.method,
            &request.features,
            self.cfg.quantization_grid,
        );
        // Unhashable input (non-finite features): let the home-most shard
        // reject it with a proper InvalidRequest.
        let Some(hash) = hash else {
            return first_conn.explain(request).map_err(|e| self.note(e.into()));
        };
        let ring = self.ring.read();
        // The ring yields *stable shard ids* (they survive joins/leaves),
        // not member positions.
        let candidates = ring.shards_for(hash, self.cfg.read_fanout.max(1));
        drop(ring);
        if candidates.is_empty() {
            return Err(NetError::Config("hash ring is empty".into()));
        }
        // Reads rotate over the candidate set; with read_fanout == 1 this
        // is always the home shard.
        let first = if candidates.len() > 1 {
            self.rr.fetch_add(1, Ordering::Relaxed) as usize % candidates.len()
        } else {
            0
        };
        let primary = candidates[first];
        match self.call_shard(primary, request) {
            Ok(resp) => Ok(resp),
            Err(e) if self.cfg.spill && spillable(&e) => {
                // Count the fault now — a successful spill must not hide it.
                let e = self.note(e);
                self.spills.fetch_add(1, Ordering::Relaxed);
                // Spill to the next distinct candidate after the one that
                // failed (ring successor when fan-out is 1).
                let fallback = candidates
                    .iter()
                    .copied()
                    .find(|&s| s != primary)
                    .or_else(|| self.ring.read().next_shard(hash, primary));
                match fallback {
                    Some(id) => self.call_shard(id, request).map_err(|e2| self.note(e2)),
                    None => Err(e),
                }
            }
            Err(e) => Err(self.note(e)),
        }
    }

    /// Clones the connection for a stable shard id under a short-lived
    /// read lock, then runs the RPC lock-free.
    fn call_shard(&self, id: usize, request: &ExplainRequest) -> Result<ExplainResponse, NetError> {
        let conn = {
            let members = self.members.read();
            members
                .iter()
                .find(|m| m.id as usize == id)
                .map(|m| Arc::clone(&m.conn))
                .ok_or_else(|| NetError::Config(format!("ring points at unknown shard id {id}")))?
        };
        conn.explain(request).map_err(NetError::from)
    }

    /// Counts transport faults as they surface.
    fn note(&self, e: NetError) -> NetError {
        if matches!(e, NetError::Wire(_)) {
            self.net_errors.fetch_add(1, Ordering::Relaxed);
        }
        e
    }

    /// Adds a shard: dials it, replays the full registration history in
    /// order (its versions match the incumbents'), then inserts it into
    /// the ring — it only starts owning keys once it can answer for them.
    pub fn join(&self, addr: &str) -> Result<u32, NetError> {
        let conn = ShardConn::connect(addr, self.cfg.max_payload, self.cfg.rpc_timeout)
            .map_err(NetError::Wire)?;
        let log = self.registrations.lock();
        for r in log.iter() {
            conn.register(&r.model_id, &r.model, &r.feature_names, &r.background)?;
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst) as u32;
        let mut members = self.members.write();
        members.push(Member {
            id,
            conn: Arc::new(conn),
        });
        let ids: Vec<u32> = members.iter().map(|m| m.id).collect();
        *self.ring.write() = HashRing::from_ids(&ids, self.cfg.vnodes);
        Ok(id)
    }

    /// Removes a shard: out of the ring first (no new requests can route
    /// to it), then the drain handshake. Returns the shard's completed
    /// count; a dead shard (already-lost connection) drains as 0.
    pub fn leave(&self, id: u32) -> Result<u64, NetError> {
        let conn = {
            let mut members = self.members.write();
            let idx = members
                .iter()
                .position(|m| m.id == id)
                .ok_or_else(|| NetError::Config(format!("no shard with id {id}")))?;
            if members.len() == 1 {
                return Err(NetError::Config(
                    "cannot remove the last shard; drain the cluster instead".into(),
                ));
            }
            let member = members.remove(idx);
            let ids: Vec<u32> = members.iter().map(|m| m.id).collect();
            *self.ring.write() = HashRing::from_ids(&ids, self.cfg.vnodes);
            member.conn
        };
        match conn.drain() {
            Ok(completed) => Ok(completed),
            // The shard is gone (killed, crashed): removal already
            // happened, so report a zero-request drain.
            Err(ShardCallError::Wire(WireError::ConnectionLost(_))) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Stable ids of the current members, in ring-membership order.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.members.read().iter().map(|m| m.id).collect()
    }

    /// Drains every shard in turn; returns total completed requests.
    pub fn drain_all(self) -> Result<u64, NetError> {
        let members = self.members.into_inner();
        let mut total = 0;
        for m in members {
            total += m.conn.drain().map_err(NetError::from)?;
        }
        Ok(total)
    }

    /// Cluster counters plus a live health probe of every member.
    pub fn stats(&self) -> NetClusterStats {
        let members = self.members.read();
        NetClusterStats {
            spills: self.spills.load(Ordering::Relaxed),
            net_errors: self.net_errors.load(Ordering::Relaxed),
            shards: members
                .iter()
                .map(|m| (m.id, m.conn.addr().to_string(), m.conn.health().ok()))
                .collect(),
        }
    }
}

/// True for errors that warrant trying the next ring shard: the home shard
/// shedding load, or its connection failing.
fn spillable(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Serve(ServeError::Rejected(RejectReason::QueueFull { .. })) | NetError::Wire(_)
    )
}
