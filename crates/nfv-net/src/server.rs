//! The shard server: one OS process, one [`Engine`], one TCP listener.
//!
//! Concurrency model: the accept loop runs on its own thread; each
//! connection gets a reader thread; each explain request gets a short-lived
//! worker thread that blocks in `Engine::explain` and writes its response
//! through the connection's shared writer. Responses therefore leave in
//! *completion* order, not arrival order — the rid correlates them.
//!
//! Draining: on [`MsgType::Drain`] the shard flips its `draining` flag
//! (new explains are rejected with `ShuttingDown`), waits for in-flight
//! requests to hit zero, answers `DrainOk { completed }`, and stops the
//! accept loop. The process's `main` then returns cleanly.
//!
//! Fail-loud: any frame that does not parse — bad magic, bad checksum,
//! oversized length, trailing bytes — increments `protocol_errors` and
//! closes that connection. The protocol never guesses at resync.

use crate::frame::{write_frame, MsgType, WireError, MAX_PAYLOAD};
use crate::msg::{Message, WireAnswer, WireHealth, WireRegister, WireResponse};
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use parking_lot::Mutex;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Shard server configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Listen address; use port 0 to let the OS pick.
    pub addr: String,
    /// Engine configuration for this shard.
    pub serve: ServeConfig,
    /// Frame payload cap (both directions).
    pub max_payload: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".into(),
            serve: ServeConfig::default(),
            max_payload: MAX_PAYLOAD,
        }
    }
}

struct ShardInner {
    engine: Engine,
    draining: AtomicBool,
    stop: AtomicBool,
    in_flight: AtomicU64,
    completed: AtomicU64,
    protocol_errors: AtomicU64,
    max_payload: usize,
}

/// A running shard server. Dropping it does *not* stop the accept loop;
/// call [`ShardServer::join`] (waits for a drain) or [`ShardServer::stop`].
pub struct ShardServer {
    inner: Arc<ShardInner>,
    local_addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ShardServer {
    /// Binds the listener and starts the accept loop and engine.
    pub fn start(cfg: ShardConfig) -> Result<ShardServer, WireError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(ShardInner {
            engine: Engine::start(cfg.serve),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            max_payload: cfg.max_payload,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = thread::Builder::new()
            .name("nfv-shard-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(ShardServer {
            inner,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Frames this shard failed to decode.
    pub fn protocol_errors(&self) -> u64 {
        self.inner.protocol_errors.load(Ordering::Relaxed)
    }

    /// Requests completed (successes and engine errors both count: each
    /// got its response frame).
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Blocks until the accept loop exits (a Drain arrived, or
    /// [`ShardServer::stop`] was called). Returns the final
    /// `(completed, protocol_errors)` counters.
    pub fn join(mut self) -> (u64, u64) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        (
            self.inner.completed.load(Ordering::SeqCst),
            self.inner.protocol_errors.load(Ordering::Relaxed),
        )
    }

    /// Force-stops the accept loop without waiting for a drain.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ShardInner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(&inner);
                let _ = thread::Builder::new()
                    .name("nfv-shard-conn".into())
                    .spawn(move || connection_loop(stream, conn_inner));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reads exactly `buf.len()` bytes, tolerating the read timeout used to
/// poll the stop flag. A timeout *between* frames is routine; the borrowed
/// progress counter keeps partial frames intact across timeouts.
fn read_full(stream: &TcpStream, buf: &mut [u8], inner: &ShardInner) -> Result<(), WireError> {
    use std::io::Read;
    let mut done = 0;
    while done < buf.len() {
        if inner.stop.load(Ordering::SeqCst) {
            return Err(WireError::ConnectionLost("shard stopping".into()));
        }
        match (&mut (&*stream)).read(&mut buf[done..]) {
            Ok(0) => return Err(WireError::ConnectionLost("peer closed".into())),
            Ok(n) => done += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Like [`read_frame`] but polls the stop flag between reads.
fn read_frame_polled(
    stream: &TcpStream,
    inner: &ShardInner,
) -> Result<(MsgType, bytes::Bytes), WireError> {
    use crate::frame::HEADER_LEN;
    let mut header = [0u8; HEADER_LEN];
    read_full(stream, &mut header, inner)?;
    // Re-parse via the shared reader so header validation cannot drift:
    // splice the header in front of the (already arrived) body bytes.
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != crate::frame::MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != crate::frame::VERSION {
        return Err(WireError::BadVersion(version));
    }
    let t = MsgType::from_u8(header[6])?;
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > inner.max_payload {
        return Err(WireError::Oversized {
            len,
            cap: inner.max_payload,
        });
    }
    let mut body = vec![0u8; len + 8];
    read_full(stream, &mut body, inner)?;
    let expected = u64::from_le_bytes(body[len..len + 8].try_into().expect("8-byte tail"));
    body.truncate(len);
    let got = nfv_sim::wire::fnv1a(&body);
    if expected != got {
        return Err(WireError::Checksum { expected, got });
    }
    Ok((t, bytes::Bytes::from_vec(body)))
}

fn send(writer: &Mutex<TcpStream>, msg: &Message) -> Result<(), WireError> {
    let payload = msg.encode_payload();
    let mut w = writer.lock();
    write_frame(&mut *w, msg.msg_type(), &payload)
}

fn connection_loop(stream: TcpStream, inner: Arc<ShardInner>) {
    // Short read timeout so reader threads notice the stop flag; writes
    // stay blocking.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    loop {
        let (t, payload) = match read_frame_polled(&stream, &inner) {
            Ok(f) => f,
            Err(WireError::ConnectionLost(_)) => return,
            Err(_) => {
                // Fail-loud: count it and drop the connection; resync is
                // never attempted on a framed protocol.
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let msg = match Message::decode_payload(t, payload) {
            Ok(m) => m,
            Err(_) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        match msg {
            Message::Explain(req) => {
                let rid = req.rid;
                if inner.draining.load(Ordering::SeqCst) {
                    let reply = Message::ExplainReply(WireResponse {
                        rid,
                        outcome: Err(ServeError::Rejected(RejectReason::ShuttingDown)),
                    });
                    if send(&writer, &reply).is_err() {
                        return;
                    }
                    continue;
                }
                inner.in_flight.fetch_add(1, Ordering::SeqCst);
                let w = Arc::clone(&writer);
                let worker_inner = Arc::clone(&inner);
                let spawned = thread::Builder::new()
                    .name("nfv-shard-explain".into())
                    .spawn(move || {
                        let outcome = worker_inner
                            .engine
                            .explain(ExplainRequest {
                                model_id: req.model_id,
                                features: req.features,
                                method: req.method,
                                budget: Duration::from_nanos(req.budget_ns),
                            })
                            .map(|resp| WireAnswer {
                                attribution: (*resp.attribution).clone(),
                                model_version: resp.model_version,
                                cache_hit: resp.cache_hit,
                                batch_size: resp.batch_size as u64,
                                queue_wait_ns: resp.queue_wait.as_nanos() as u64,
                                service_ns: resp.service_time.as_nanos() as u64,
                            });
                        let _ = send(&w, &Message::ExplainReply(WireResponse { rid, outcome }));
                        worker_inner.completed.fetch_add(1, Ordering::SeqCst);
                        worker_inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                    let reply = Message::ExplainReply(WireResponse {
                        rid,
                        outcome: Err(ServeError::Internal("spawn failed".into())),
                    });
                    if send(&writer, &reply).is_err() {
                        return;
                    }
                }
            }
            Message::Register(reg) => {
                let reply = handle_register(&inner, reg);
                if send(&writer, &reply).is_err() {
                    return;
                }
            }
            Message::Health { rid } => {
                let stats_json =
                    serde_json::to_string(&inner.engine.stats()).unwrap_or_else(|_| "{}".into());
                let reply = Message::HealthOk(WireHealth {
                    rid,
                    draining: inner.draining.load(Ordering::SeqCst),
                    queue_len: inner.engine.queue_len() as u64,
                    cache_len: inner.engine.cache_len() as u64,
                    protocol_errors: inner.protocol_errors.load(Ordering::Relaxed),
                    stats_json,
                });
                if send(&writer, &reply).is_err() {
                    return;
                }
            }
            Message::Drain { rid } => {
                inner.draining.store(true, Ordering::SeqCst);
                while inner.in_flight.load(Ordering::SeqCst) > 0 {
                    thread::sleep(Duration::from_millis(1));
                }
                let reply = Message::DrainOk {
                    rid,
                    completed: inner.completed.load(Ordering::SeqCst),
                };
                let _ = send(&writer, &reply);
                inner.stop.store(true, Ordering::SeqCst);
                return;
            }
            // Server-bound traffic only; a response type here is a
            // protocol error.
            Message::ExplainReply(_)
            | Message::RegisterOk { .. }
            | Message::HealthOk(_)
            | Message::DrainOk { .. } => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

fn handle_register(inner: &ShardInner, reg: WireRegister) -> Message {
    let rid = reg.rid;
    let fail = |m: String| {
        Message::ExplainReply(WireResponse {
            rid,
            outcome: Err(ServeError::Internal(m)),
        })
    };
    let model: ServeModel = match serde_json::from_str(&reg.model_json) {
        Ok(m) => m,
        Err(e) => return fail(format!("model json: {e}")),
    };
    let background = match Background::from_rows(reg.background_rows) {
        Ok(b) => b,
        Err(e) => return fail(format!("background: {e}")),
    };
    match inner
        .engine
        .registry()
        .register(&reg.model_id, model, reg.feature_names, background)
    {
        Ok(version) => Message::RegisterOk { rid, version },
        Err(e) => fail(format!("register: {e}")),
    }
}
