//! The shard server: one OS process, one [`Engine`], one TCP listener.
//!
//! Concurrency model: a single event-loop thread owns the listener and
//! every connection through a level-triggered readiness poller
//! ([`mio::Poll`] over `poll(2)`). Sockets are nonblocking; the loop
//! accepts, reads, parses frames incrementally out of per-connection
//! buffers, and flushes batched responses. Explain requests are the only
//! work that leaves the loop: they are handed to a fixed pool of
//! dispatch workers through a *bounded* queue, so a burst of pipelined
//! requests degrades into typed [`RejectReason::QueueFull`] responses
//! instead of a thread explosion. Workers block in `Engine::explain` and
//! return completions over a channel; the event loop routes each
//! completion back to its connection's write buffer and coalesces
//! everything queued for a socket into one flush. Responses therefore
//! leave in *completion* order, not arrival order — the rid correlates
//! them.
//!
//! Pipelining is admission-controlled per connection: more than
//! [`ShardConfig::max_pipeline`] explains in flight on one socket gets a
//! typed [`RejectReason::PipelineTooDeep`] reject (the connection stays
//! healthy — the client's pipeline is the thing being told off).
//!
//! Register/health/drain are handled inline on the event loop: they are
//! rare control traffic and ordering relative to explains is already
//! only rid-correlated.
//!
//! Draining: on [`crate::frame::MsgType::Drain`] the shard flips its `draining` flag
//! (new explains are rejected with `ShuttingDown`), and the loop waits —
//! event-driven, no busy-wait — for in-flight completions to reach zero.
//! It then queues `DrainOk { completed }` to every drain requester,
//! flushes all write buffers, and exits. Worker threads exit when the
//! job queue disconnects.
//!
//! Fail-loud: any frame that does not parse — bad magic, bad checksum,
//! oversized length — increments `protocol_errors` and closes that
//! connection. The protocol never guesses at resync. A panic inside an
//! explain worker is caught and answered as `ServeError::Internal`; a
//! reply guard ensures the completion is delivered even on an unwind, so
//! a drain can never wedge on a lost decrement.

use crate::frame::{parse_header, verify_checksum, WireError, HEADER_LEN, MAX_PAYLOAD};
use crate::msg::{Message, WireAnswer, WireHealth, WireRegister, WireResponse};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use mio::{Events, Interest, Poll, Token, Waker};
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Shard server configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Listen address; use port 0 to let the OS pick.
    pub addr: String,
    /// Engine configuration for this shard.
    pub serve: ServeConfig,
    /// Frame payload cap (both directions).
    pub max_payload: usize,
    /// Explain dispatch workers (threads blocking in `Engine::explain`).
    /// `0` auto-sizes to `max(4, available_parallelism)`: measured on a
    /// single core, a small pool wins (fewer context switches per
    /// request); on multi-core hosts a wider pool keeps the engine's
    /// micro-batcher fed by concurrent callers.
    pub dispatch_threads: usize,
    /// Bounded dispatch queue depth; overflow is a typed `QueueFull`
    /// reject, never an unbounded backlog.
    pub dispatch_queue: usize,
    /// Max explains in flight per connection before the server answers
    /// `PipelineTooDeep` instead of dispatching.
    pub max_pipeline: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".into(),
            serve: ServeConfig::default(),
            max_payload: MAX_PAYLOAD,
            dispatch_threads: 0,
            dispatch_queue: 256,
            max_pipeline: 64,
        }
    }
}

struct ShardInner {
    engine: Engine,
    draining: AtomicBool,
    stop: AtomicBool,
    in_flight: AtomicU64,
    completed: AtomicU64,
    protocol_errors: AtomicU64,
    max_payload: usize,
    waker: Waker,
    /// Test seam: a model id the explain worker panics on instead of
    /// serving, read once from `NFV_NET_TEST_PANIC_MODEL` at start. Lets
    /// the drain-after-panic regression test inject an unwind without a
    /// poisonable public API.
    panic_model: Option<String>,
}

/// One explain handed to the dispatch pool. Carries only what the worker
/// needs; the connection is referenced by id so a vanished peer cannot
/// keep a socket alive.
struct Job {
    conn_id: usize,
    rid: u64,
    model_id: String,
    features: Vec<f64>,
    method: ExplainMethod,
    budget_ns: u64,
}

/// A finished explain (or an inline control reply) headed back to the
/// event loop for batching onto its connection.
struct Completion {
    conn_id: usize,
    msg: Message,
}

/// Delivers the `Internal` completion if the worker unwinds between
/// taking a job and sending its real completion. Without this, a panic
/// leaks the in-flight count and `Drain` waits forever.
struct ReplyGuard<'a> {
    conn_id: usize,
    rid: u64,
    completions: &'a Sender<Completion>,
    inner: &'a ShardInner,
    done: bool,
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.completions.send(Completion {
                conn_id: self.conn_id,
                msg: Message::ExplainReply(WireResponse {
                    rid: self.rid,
                    outcome: Err(ServeError::Internal("explain worker panicked".into())),
                }),
            });
            let _ = self.inner.waker.wake();
        }
    }
}

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection tokens start here; ids are monotonic and never reused, so
/// a stale completion can never route to a different peer.
const CONN_BASE: usize = 2;

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into frames.
    read_buf: Vec<u8>,
    /// Batched outgoing frames; `write_pos` is the flush cursor so a
    /// partial write never memmoves the remainder.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Explains dispatched on this connection and not yet answered.
    in_flight: u64,
    /// Whether WRITABLE interest is currently registered.
    wants_write: bool,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

/// A running shard server. Dropping it does *not* stop the event loop;
/// call [`ShardServer::join`] (waits for a drain) or [`ShardServer::stop`].
pub struct ShardServer {
    inner: Arc<ShardInner>,
    local_addr: SocketAddr,
    event_thread: Option<thread::JoinHandle<()>>,
}

impl ShardServer {
    /// Binds the listener and starts the event loop, dispatch pool, and
    /// engine.
    pub fn start(cfg: ShardConfig) -> Result<ShardServer, WireError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poll = Poll::new()?;
        poll.registry()
            .register(&listener, LISTENER, Interest::READABLE)?;
        let waker = Waker::new(poll.registry(), WAKER)?;
        let inner = Arc::new(ShardInner {
            engine: Engine::start(cfg.serve),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            max_payload: cfg.max_payload,
            waker,
            panic_model: std::env::var("NFV_NET_TEST_PANIC_MODEL").ok(),
        });

        let dispatch_threads = if cfg.dispatch_threads == 0 {
            thread::available_parallelism().map_or(4, |p| p.get().max(4))
        } else {
            cfg.dispatch_threads
        };
        let (job_tx, job_rx) = bounded::<Job>(cfg.dispatch_queue.max(1));
        let (done_tx, done_rx) = unbounded::<Completion>();
        for i in 0..dispatch_threads {
            let rx = job_rx.clone();
            let tx = done_tx.clone();
            let worker_inner = Arc::clone(&inner);
            thread::Builder::new()
                .name(format!("nfv-shard-explain-{i}"))
                .spawn(move || worker_loop(rx, tx, worker_inner))
                .map_err(|e| WireError::Io(e.to_string()))?;
        }
        drop(done_tx); // the loop detects worker death via channel close

        let loop_inner = Arc::clone(&inner);
        let queue_capacity = cfg.dispatch_queue.max(1);
        let max_pipeline = cfg.max_pipeline.max(1) as u64;
        let event_thread = thread::Builder::new()
            .name("nfv-shard-events".into())
            .spawn(move || {
                event_loop(
                    poll,
                    listener,
                    loop_inner,
                    job_tx,
                    done_rx,
                    queue_capacity,
                    max_pipeline,
                )
            })
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(ShardServer {
            inner,
            local_addr,
            event_thread: Some(event_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Frames this shard failed to decode.
    pub fn protocol_errors(&self) -> u64 {
        self.inner.protocol_errors.load(Ordering::Relaxed)
    }

    /// Requests completed (successes and engine errors both count: each
    /// got its response frame).
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::SeqCst)
    }

    /// Blocks until the event loop exits (a Drain finished, or
    /// [`ShardServer::stop`] was called). Returns the final
    /// `(completed, protocol_errors)` counters.
    pub fn join(mut self) -> (u64, u64) {
        if let Some(h) = self.event_thread.take() {
            let _ = h.join();
        }
        (
            self.inner.completed.load(Ordering::SeqCst),
            self.inner.protocol_errors.load(Ordering::Relaxed),
        )
    }

    /// Force-stops the event loop without waiting for a drain.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let _ = self.inner.waker.wake();
    }
}

fn worker_loop(jobs: Receiver<Job>, completions: Sender<Completion>, inner: Arc<ShardInner>) {
    while let Ok(job) = jobs.recv() {
        let mut guard = ReplyGuard {
            conn_id: job.conn_id,
            rid: job.rid,
            completions: &completions,
            inner: &inner,
            done: false,
        };
        // `Engine` is panic-tolerant by contract, but an unwind out of
        // the explainer stack must not kill the worker or lose the
        // in-flight decrement: catch it and answer `Internal`.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inner.panic_model.as_deref() == Some(job.model_id.as_str()) {
                panic!("injected test panic for model {}", job.model_id);
            }
            inner
                .engine
                .explain(ExplainRequest {
                    model_id: job.model_id,
                    features: job.features,
                    method: job.method,
                    budget: Duration::from_nanos(job.budget_ns),
                })
                .map(|resp| WireAnswer {
                    attribution: (*resp.attribution).clone(),
                    model_version: resp.model_version,
                    cache_hit: resp.cache_hit,
                    batch_size: resp.batch_size as u64,
                    queue_wait_ns: resp.queue_wait.as_nanos() as u64,
                    service_ns: resp.service_time.as_nanos() as u64,
                    coarse_budget: resp.fidelity.sample_budget(),
                    max_abs_err: resp.fidelity.max_abs_err(),
                })
        }))
        .unwrap_or_else(|_| Err(ServeError::Internal("explain worker panicked".into())));
        guard.done = true;
        let _ = completions.send(Completion {
            conn_id: job.conn_id,
            msg: Message::ExplainReply(WireResponse {
                rid: job.rid,
                outcome,
            }),
        });
        let _ = inner.waker.wake();
    }
}

/// What message handling decided about the connection's fate.
enum ConnFate {
    Keep,
    /// Peer misbehaved at the protocol layer: count and close.
    Protocol,
    /// Orderly close (peer EOF, write failure).
    Close,
}

#[allow(clippy::too_many_arguments)]
fn event_loop(
    mut poll: Poll,
    listener: TcpListener,
    inner: Arc<ShardInner>,
    job_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    queue_capacity: usize,
    max_pipeline: u64,
) {
    let mut events = Events::with_capacity(256);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_id = CONN_BASE;
    // Connections that asked for a drain and the rid to answer under.
    let mut drain_waiters: Vec<(usize, u64)> = Vec::new();
    // Set once DrainOk frames are queued; the loop then exits as soon as
    // every write buffer is flushed.
    let mut finishing = false;

    'run: loop {
        if poll.poll(&mut events, None).is_err() {
            break;
        }
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let mut touched: Vec<usize> = Vec::new();
        for event in &events {
            match event.token() {
                LISTENER => accept_all(&listener, &mut poll, &mut conns, &mut next_id),
                WAKER => inner.waker.drain(),
                Token(id) => {
                    let fate = if event.is_readable() {
                        handle_readable(
                            id,
                            &mut conns,
                            &inner,
                            &job_tx,
                            queue_capacity,
                            max_pipeline,
                            &mut drain_waiters,
                        )
                    } else {
                        ConnFate::Keep
                    };
                    match fate {
                        ConnFate::Keep => touched.push(id),
                        ConnFate::Protocol => {
                            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            close_conn(id, &mut poll, &mut conns);
                        }
                        ConnFate::Close => close_conn(id, &mut poll, &mut conns),
                    }
                }
            }
        }
        // Route finished explains back onto their connections. A
        // completion for a closed connection still settles the global
        // accounting — the work happened, the peer just left.
        while let Ok(done) = done_rx.try_recv() {
            inner.completed.fetch_add(1, Ordering::SeqCst);
            inner.in_flight.fetch_sub(1, Ordering::SeqCst);
            if let Some(conn) = conns.get_mut(&done.conn_id) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                queue_message(conn, &done.msg);
                touched.push(done.conn_id);
            }
        }
        // Event-driven drain: everything dispatched has completed, so
        // answer every waiter and flip to the flush-and-exit state.
        if !drain_waiters.is_empty() && inner.in_flight.load(Ordering::SeqCst) == 0 {
            let completed = inner.completed.load(Ordering::SeqCst);
            for (id, rid) in drain_waiters.drain(..) {
                if let Some(conn) = conns.get_mut(&id) {
                    queue_message(conn, &Message::DrainOk { rid, completed });
                    touched.push(id);
                }
            }
            finishing = true;
        }
        touched.sort_unstable();
        touched.dedup();
        for id in touched {
            if matches!(flush_conn(id, &mut poll, &mut conns), ConnFate::Close) {
                close_conn(id, &mut poll, &mut conns);
            }
        }
        if finishing && conns.values().all(|c| c.pending_write() == 0) {
            inner.stop.store(true, Ordering::SeqCst);
            break 'run;
        }
    }
    // Dropping `job_tx` disconnects the queue; workers exit after the
    // jobs already in hand.
}

fn accept_all(
    listener: &TcpListener,
    poll: &mut Poll,
    conns: &mut HashMap<usize, Conn>,
    next_id: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let id = *next_id;
                *next_id += 1;
                if poll
                    .registry()
                    .register(&stream, Token(id), Interest::READABLE)
                    .is_err()
                {
                    continue;
                }
                conns.insert(
                    id,
                    Conn {
                        stream,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        in_flight: 0,
                        wants_write: false,
                    },
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn close_conn(id: usize, poll: &mut Poll, conns: &mut HashMap<usize, Conn>) {
    if let Some(conn) = conns.remove(&id) {
        let _ = poll.registry().deregister(&conn.stream);
    }
}

/// Appends one encoded frame to the connection's write batch. Actual
/// socket writes happen in [`flush_conn`], so several replies queued in
/// one loop iteration leave in a single `write`.
fn queue_message(conn: &mut Conn, msg: &Message) {
    let payload = msg.encode_payload();
    // Writing into a Vec cannot fail.
    let _ = crate::frame::write_frame(&mut conn.write_buf, msg.msg_type(), &payload);
}

/// Writes as much of the batched output as the socket accepts; registers
/// WRITABLE interest only while a remainder exists.
fn flush_conn(id: usize, poll: &mut Poll, conns: &mut HashMap<usize, Conn>) -> ConnFate {
    let Some(conn) = conns.get_mut(&id) else {
        return ConnFate::Keep;
    };
    while conn.pending_write() > 0 {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return ConnFate::Close,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ConnFate::Close,
        }
    }
    if conn.pending_write() == 0 {
        conn.write_buf.clear();
        conn.write_pos = 0;
        if conn.wants_write {
            conn.wants_write = false;
            let _ = poll
                .registry()
                .reregister(&conn.stream, Token(id), Interest::READABLE);
        }
    } else if !conn.wants_write {
        conn.wants_write = true;
        let _ = poll.registry().reregister(
            &conn.stream,
            Token(id),
            Interest::READABLE | Interest::WRITABLE,
        );
    }
    ConnFate::Keep
}

/// Drains the socket into the connection's read buffer, then parses and
/// handles every complete frame in it.
fn handle_readable(
    id: usize,
    conns: &mut HashMap<usize, Conn>,
    inner: &Arc<ShardInner>,
    job_tx: &Sender<Job>,
    queue_capacity: usize,
    max_pipeline: u64,
    drain_waiters: &mut Vec<(usize, u64)>,
) -> ConnFate {
    let Some(conn) = conns.get_mut(&id) else {
        return ConnFate::Keep;
    };
    let mut chunk = [0u8; 64 * 1024];
    let mut saw_eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ConnFate::Close,
        }
    }
    // Parse every complete frame out of the buffer before deciding the
    // connection's fate: pipelined requests arrive back to back.
    let mut consumed = 0usize;
    let mut fate = if saw_eof {
        ConnFate::Close
    } else {
        ConnFate::Keep
    };
    loop {
        let buf = &conn.read_buf[consumed..];
        if buf.len() < HEADER_LEN {
            break;
        }
        let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("checked length");
        let (t, len) = match parse_header(&header, inner.max_payload) {
            Ok(hl) => hl,
            Err(_) => {
                fate = ConnFate::Protocol;
                break;
            }
        };
        let total = HEADER_LEN + len + 8;
        if buf.len() < total {
            break;
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + len];
        if verify_checksum(payload, &buf[HEADER_LEN + len..total]).is_err() {
            fate = ConnFate::Protocol;
            break;
        }
        let msg = match Message::decode_payload(t, bytes::Bytes::from_vec(payload.to_vec())) {
            Ok(m) => m,
            Err(_) => {
                fate = ConnFate::Protocol;
                break;
            }
        };
        consumed += total;
        match handle_message(id, conn, inner, job_tx, queue_capacity, max_pipeline, msg) {
            HandleResult::Continue => {}
            HandleResult::Drain { rid } => {
                drain_waiters.push((id, rid));
                inner.draining.store(true, Ordering::SeqCst);
            }
            HandleResult::Protocol => {
                fate = ConnFate::Protocol;
                break;
            }
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
    // EOF with dangling bytes means the peer died mid-frame; that is a
    // connection loss, not a protocol error (matches the old reader).
    fate
}

enum HandleResult {
    Continue,
    Drain { rid: u64 },
    Protocol,
}

fn handle_message(
    conn_id: usize,
    conn: &mut Conn,
    inner: &Arc<ShardInner>,
    job_tx: &Sender<Job>,
    queue_capacity: usize,
    max_pipeline: u64,
    msg: Message,
) -> HandleResult {
    match msg {
        Message::Explain(req) => {
            let rid = req.rid;
            let reject = |reason: RejectReason| {
                Message::ExplainReply(WireResponse {
                    rid,
                    outcome: Err(ServeError::Rejected(reason)),
                })
            };
            if inner.draining.load(Ordering::SeqCst) {
                queue_message(conn, &reject(RejectReason::ShuttingDown));
                return HandleResult::Continue;
            }
            if conn.in_flight >= max_pipeline {
                queue_message(
                    conn,
                    &reject(RejectReason::PipelineTooDeep {
                        depth: conn.in_flight,
                        limit: max_pipeline,
                    }),
                );
                return HandleResult::Continue;
            }
            let job = Job {
                conn_id,
                rid,
                model_id: req.model_id,
                features: req.features,
                method: req.method,
                budget_ns: req.budget_ns,
            };
            inner.in_flight.fetch_add(1, Ordering::SeqCst);
            conn.in_flight += 1;
            match job_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                    conn.in_flight -= 1;
                    queue_message(
                        conn,
                        &reject(RejectReason::QueueFull {
                            capacity: queue_capacity,
                        }),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                    conn.in_flight -= 1;
                    queue_message(
                        conn,
                        &Message::ExplainReply(WireResponse {
                            rid,
                            outcome: Err(ServeError::Internal("dispatch pool gone".into())),
                        }),
                    );
                }
            }
            HandleResult::Continue
        }
        Message::Register(reg) => {
            let reply = handle_register(inner, reg);
            queue_message(conn, &reply);
            HandleResult::Continue
        }
        Message::Health { rid } => {
            let stats_json =
                serde_json::to_string(&inner.engine.stats()).unwrap_or_else(|_| "{}".into());
            let reply = Message::HealthOk(WireHealth {
                rid,
                draining: inner.draining.load(Ordering::SeqCst),
                queue_len: inner.engine.queue_len() as u64,
                cache_len: inner.engine.cache_len() as u64,
                protocol_errors: inner.protocol_errors.load(Ordering::Relaxed),
                stats_json,
            });
            queue_message(conn, &reply);
            HandleResult::Continue
        }
        Message::Drain { rid } => HandleResult::Drain { rid },
        // Server-bound traffic only; a response type here is a
        // protocol error.
        Message::ExplainReply(_)
        | Message::RegisterOk { .. }
        | Message::RegisterErr { .. }
        | Message::HealthOk(_)
        | Message::DrainOk { .. } => HandleResult::Protocol,
    }
}

fn handle_register(inner: &ShardInner, reg: WireRegister) -> Message {
    let rid = reg.rid;
    // Failures answer with the typed `RegisterErr`, not a mislabelled
    // `ExplainReply` — a registration has no explain outcome to carry.
    let fail = |m: String| Message::RegisterErr {
        rid,
        error: ServeError::Internal(m),
    };
    let model: ServeModel = match serde_json::from_str(&reg.model_json) {
        Ok(m) => m,
        Err(e) => return fail(format!("model json: {e}")),
    };
    let background = match Background::from_rows(reg.background_rows) {
        Ok(b) => b,
        Err(e) => return fail(format!("background: {e}")),
    };
    match inner
        .engine
        .registry()
        .register(&reg.model_id, model, reg.feature_names, background)
    {
        Ok(version) => {
            // Per-method serving config rides the registration: apply it
            // only once the model is in, so a failed registration leaves
            // no orphaned config behind.
            for (method, divisor) in &reg.method_configs {
                inner
                    .engine
                    .registry()
                    .set_anytime_divisor(&reg.model_id, method, *divisor);
            }
            Message::RegisterOk { rid, version }
        }
        Err(e) => fail(format!("register: {e}")),
    }
}
