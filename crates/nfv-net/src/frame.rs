//! The frame layer: one message = one length-prefixed, checksummed frame.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! MAGIC "NFVW" | version u16 | msg_type u8 | len u32 | payload[len] | fnv1a u64
//! ```
//!
//! The checksum is FNV-1a 64 over the payload bytes ([`nfv_sim::wire::fnv1a`],
//! the same hash the serving cache keys use). Decoding is fail-loud: a bad
//! magic, unsupported version, unknown type, oversized length prefix,
//! truncated body, or checksum mismatch each yield a distinct [`WireError`]
//! — never a panic, never a partially-decoded message. The length prefix is
//! validated against [`MAX_PAYLOAD`] *before* any allocation, so a hostile
//! peer cannot OOM the process with a 4 GiB claim.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use nfv_sim::wire;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Magic bytes opening every frame ("NFV Wire").
pub const MAGIC: [u8; 4] = *b"NFVW";

/// Current protocol version. Bump on any layout change; peers reject
/// mismatches instead of guessing.
pub const VERSION: u16 = 1;

/// Default cap on a frame's payload length. Large enough for a registered
/// model plus a few thousand background rows, small enough that a corrupt
/// or hostile length prefix cannot exhaust memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Bytes of frame header preceding the payload: magic + version + type + len.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;

/// Message discriminants carried in the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Client → shard: explain one instance.
    ExplainRequest = 1,
    /// Shard → client: the answer (or error) for one request id.
    ExplainResponse = 2,
    /// Client → shard: register a model (model JSON + background rows).
    RegisterModel = 3,
    /// Shard → client: registration succeeded, carries the version.
    RegisterOk = 4,
    /// Client → shard: health probe.
    Health = 5,
    /// Shard → client: health snapshot.
    HealthOk = 6,
    /// Client → shard: stop accepting work, finish in-flight requests.
    Drain = 7,
    /// Shard → client: drain complete, carries requests served.
    DrainOk = 8,
    /// Shard → client: registration failed, carries the typed error.
    /// (Added after v1 shipped; a register failure used to masquerade as
    /// an `ExplainResponse`, which clients still accept for one version.)
    RegisterErr = 9,
}

impl MsgType {
    /// Parses a wire discriminant.
    pub fn from_u8(v: u8) -> Result<MsgType, WireError> {
        Ok(match v {
            1 => MsgType::ExplainRequest,
            2 => MsgType::ExplainResponse,
            3 => MsgType::RegisterModel,
            4 => MsgType::RegisterOk,
            5 => MsgType::Health,
            6 => MsgType::HealthOk,
            7 => MsgType::Drain,
            8 => MsgType::DrainOk,
            9 => MsgType::RegisterErr,
            other => return Err(WireError::BadType(other)),
        })
    }
}

/// Everything the wire layer can reject. Every variant names the field
/// that failed and the numbers involved — a protocol error must be
/// diagnosable from its message alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// OS-level I/O failure (other than a closed peer).
    Io(String),
    /// The peer closed the connection (EOF mid-protocol or reset).
    ConnectionLost(String),
    /// Frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Peer speaks a different protocol version.
    BadVersion(u16),
    /// Unknown message discriminant.
    BadType(u8),
    /// Length prefix exceeds the payload cap (checked before allocating).
    Oversized {
        /// Claimed payload length.
        len: usize,
        /// Configured cap.
        cap: usize,
    },
    /// Fewer bytes than a field needs.
    Truncated(String),
    /// Payload bytes do not hash to the trailing checksum.
    Checksum {
        /// Checksum the frame carried.
        expected: u64,
        /// Checksum of the bytes actually received.
        got: u64,
    },
    /// Payload decoded structurally but a field was invalid.
    Decode(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "i/o error: {m}"),
            WireError::ConnectionLost(m) => write!(f, "connection lost: {m}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}, expected {MAGIC:?}"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (supported: {VERSION})")
            }
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::Oversized { len, cap } => {
                write!(f, "payload length {len} exceeds cap {cap}")
            }
            WireError::Truncated(m) => write!(f, "truncated frame: {m}"),
            WireError::Checksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:#x}, got {got:#x}"
                )
            }
            WireError::Decode(m) => write!(f, "decode error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        match e.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => WireError::ConnectionLost(e.to_string()),
            _ => WireError::Io(e.to_string()),
        }
    }
}

/// Maps the string errors of the shared [`wire`] helpers into [`WireError`].
pub(crate) fn truncated(e: String) -> WireError {
    WireError::Truncated(e)
}

/// Validates a frame header in wire order — magic, version, type, then
/// the length against `cap` — and returns the message type and payload
/// length. The one place header validation lives: [`read_frame`],
/// [`decode_frame`], and the server's incremental stream parser all call
/// it, so the checks cannot drift apart.
pub fn parse_header(header: &[u8; HEADER_LEN], cap: usize) -> Result<(MsgType, usize), WireError> {
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let t = MsgType::from_u8(header[6])?;
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > cap {
        return Err(WireError::Oversized { len, cap });
    }
    Ok((t, len))
}

/// Verifies the trailing checksum of a payload slice against its 8-byte
/// little-endian FNV-1a tail. Shared by every frame reader.
pub fn verify_checksum(payload: &[u8], tail: &[u8]) -> Result<(), WireError> {
    let expected =
        u64::from_le_bytes(tail.try_into().map_err(|_| {
            WireError::Truncated("frame checksum tail shorter than 8 bytes".into())
        })?);
    let got = wire::fnv1a(payload);
    if expected != got {
        return Err(WireError::Checksum { expected, got });
    }
    Ok(())
}

/// Assembles one frame into a byte vector (header, payload, checksum).
pub fn encode_frame(t: MsgType, payload: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len() + 8);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(t as u8);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf.put_u64_le(wire::fnv1a(payload));
    buf.freeze().as_ref().to_vec()
}

/// Decodes one frame from an in-memory buffer, advancing past it. The
/// in-memory twin of [`read_frame`], shared with the codec proptests.
pub fn decode_frame(data: &mut Bytes, cap: usize) -> Result<(MsgType, Bytes), WireError> {
    wire::ensure(data, HEADER_LEN, "frame header").map_err(truncated)?;
    let mut header = [0u8; HEADER_LEN];
    data.copy_to_slice(&mut header);
    let (t, len) = parse_header(&header, cap)?;
    wire::ensure(data, len + 8, "frame payload + checksum").map_err(truncated)?;
    let payload = data.slice(0..len);
    data.advance(len);
    let mut tail = [0u8; 8];
    data.copy_to_slice(&mut tail);
    verify_checksum(payload.as_ref(), &tail)?;
    Ok((t, payload))
}

/// Writes one frame to a stream (single buffered write + flush).
pub fn write_frame(w: &mut impl Write, t: MsgType, payload: &[u8]) -> Result<(), WireError> {
    let frame = encode_frame(t, payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a stream. The header is read and validated first;
/// the payload buffer is only allocated after the length prefix passes the
/// cap check.
pub fn read_frame(r: &mut impl Read, cap: usize) -> Result<(MsgType, Bytes), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (t, len) = parse_header(&header, cap)?;
    let mut body = vec![0u8; len + 8];
    r.read_exact(&mut body)?;
    let tail: [u8; 8] = body[len..len + 8].try_into().expect("8-byte tail");
    body.truncate(len);
    verify_checksum(&body, &tail)?;
    Ok((t, Bytes::from_vec(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_through_memory_and_io() {
        let payload = b"explain this".to_vec();
        let frame = encode_frame(MsgType::Health, &payload);
        let mut mem = Bytes::from_vec(frame.clone());
        let (t, body) = decode_frame(&mut mem, MAX_PAYLOAD).unwrap();
        assert_eq!(t, MsgType::Health);
        assert_eq!(body.as_ref(), payload.as_slice());
        assert_eq!(mem.remaining(), 0, "decode consumes the whole frame");

        let mut cursor = std::io::Cursor::new(frame);
        let (t2, body2) = read_frame(&mut cursor, MAX_PAYLOAD).unwrap();
        assert_eq!(t2, MsgType::Health);
        assert_eq!(body2.as_ref(), payload.as_slice());
    }

    #[test]
    fn every_header_fault_gets_its_own_error() {
        let good = encode_frame(MsgType::Drain, b"x");

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&mut Bytes::from_vec(bad), MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_frame(&mut Bytes::from_vec(bad), MAX_PAYLOAD),
            Err(WireError::BadVersion(_))
        ));

        let mut bad = good.clone();
        bad[6] = 200;
        assert!(matches!(
            decode_frame(&mut Bytes::from_vec(bad), MAX_PAYLOAD),
            Err(WireError::BadType(200))
        ));

        // Corrupt one payload byte: checksum catches it.
        let mut bad = good.clone();
        bad[HEADER_LEN] ^= 0xff;
        assert!(matches!(
            decode_frame(&mut Bytes::from_vec(bad), MAX_PAYLOAD),
            Err(WireError::Checksum { .. })
        ));

        // Truncation.
        let cut = good[..good.len() - 3].to_vec();
        assert!(matches!(
            decode_frame(&mut Bytes::from_vec(cut), MAX_PAYLOAD),
            Err(WireError::Truncated(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_fails_before_allocating() {
        // Hand-build a header claiming a 3 GiB payload.
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(MsgType::Health as u8);
        buf.put_u32_le(3 << 30);
        let frame = buf.freeze().as_ref().to_vec();
        assert!(matches!(
            decode_frame(&mut Bytes::from_vec(frame.clone()), MAX_PAYLOAD),
            Err(WireError::Oversized { .. })
        ));
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, MAX_PAYLOAD),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn eof_maps_to_connection_lost() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut cursor, MAX_PAYLOAD),
            Err(WireError::ConnectionLost(_))
        ));
    }
}
