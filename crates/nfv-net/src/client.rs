//! Client side of one shard connection: request-id correlation over a
//! single TCP stream.
//!
//! A [`ShardConn`] owns one socket. Callers from any thread frame a
//! message, park a channel under its rid, and wait; a dedicated reader
//! thread decodes incoming frames and completes the matching channel —
//! out-of-order responses are the normal case, not an error. When the
//! stream dies (shard killed, network partition) the reader fails *every*
//! pending call immediately with [`WireError::ConnectionLost`] — callers
//! never stall out a timeout waiting on a corpse — and the connection is
//! marked dead so the router can reroute.

use crate::frame::{read_frame, write_frame, WireError};
use crate::msg::{Message, WireHealth, WireRegister, WireRequest, WireResponse};
use nfv_serve::prelude::*;
use nfv_xai::prelude::Background;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// In-flight requests by rid: the reader thread routes each decoded
/// frame (or a terminal wire error) to the waiting caller's channel.
type PendingMap = Arc<Mutex<HashMap<u64, mpsc::Sender<Result<Message, WireError>>>>>;

/// One client connection to one shard process.
pub struct ShardConn {
    addr: String,
    writer: Mutex<TcpStream>,
    pending: PendingMap,
    alive: Arc<AtomicBool>,
    next_rid: AtomicU64,
    rpc_timeout: Duration,
    /// Test seam: runs between the liveness check and the pending-map
    /// insert in [`ShardConn::begin`], where the insert can race the
    /// reader's `fail_all`. Lets the regression test kill the stream in
    /// exactly that window.
    rpc_race_hook: Mutex<Option<Box<dyn Fn() + Send>>>,
}

impl ShardConn {
    /// Connects and starts the reader thread.
    pub fn connect(
        addr: &str,
        max_payload: usize,
        rpc_timeout: Duration,
    ) -> Result<ShardConn, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        {
            let pending = Arc::clone(&pending);
            let alive = Arc::clone(&alive);
            thread::Builder::new()
                .name("nfv-net-reader".into())
                .spawn(move || reader_loop(reader, max_payload, pending, alive))
                .map_err(|e| WireError::Io(e.to_string()))?;
        }
        Ok(ShardConn {
            addr: addr.to_string(),
            writer: Mutex::new(stream),
            pending,
            alive,
            next_rid: AtomicU64::new(1),
            rpc_timeout,
            rpc_race_hook: Mutex::new(None),
        })
    }

    /// Installs the [`ShardConn::begin`] race hook. Test-only seam; not
    /// part of the supported API.
    #[doc(hidden)]
    pub fn set_rpc_race_hook(&self, hook: Box<dyn Fn() + Send>) {
        *self.rpc_race_hook.lock() = Some(hook);
    }

    /// The address this connection dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// False once the stream has died; calls will fail fast.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn next_rid(&self) -> u64 {
        self.next_rid.fetch_add(1, Ordering::Relaxed)
    }

    /// Parks a response channel under the message's rid and sends the
    /// frame; [`ShardConn::finish`] waits the reply out. Split so
    /// pipelined callers can issue many sends before their first wait.
    fn begin(
        &self,
        msg: Message,
    ) -> Result<(u64, mpsc::Receiver<Result<Message, WireError>>), WireError> {
        let dead = || WireError::ConnectionLost(format!("{} is marked dead", self.addr));
        if !self.is_alive() {
            return Err(dead());
        }
        if let Some(hook) = &*self.rpc_race_hook.lock() {
            hook();
        }
        let rid = msg.rid();
        let (tx, rx) = mpsc::channel();
        self.pending.lock().insert(rid, tx);
        // The reader's `fail_all` marks the connection dead *before*
        // draining the pending map, so an insert that lost the race (the
        // map was already drained; nothing will ever complete this entry)
        // is always visible here: re-check and fail fast instead of
        // stalling out the full rpc timeout.
        if !self.is_alive() {
            self.pending.lock().remove(&rid);
            return Err(dead());
        }
        let payload = msg.encode_payload();
        let write_result = {
            let mut w = self.writer.lock();
            write_frame(&mut *w, msg.msg_type(), &payload)
        };
        if let Err(e) = write_result {
            self.pending.lock().remove(&rid);
            self.alive.store(false, Ordering::SeqCst);
            return Err(e);
        }
        Ok((rid, rx))
    }

    /// Waits out one response parked by [`ShardConn::begin`].
    fn finish(
        &self,
        rid: u64,
        rx: mpsc::Receiver<Result<Message, WireError>>,
    ) -> Result<Message, WireError> {
        match rx.recv_timeout(self.rpc_timeout) {
            Ok(result) => result,
            Err(_) => {
                self.pending.lock().remove(&rid);
                Err(WireError::Io(format!(
                    "rpc to {} timed out after {:?}",
                    self.addr, self.rpc_timeout
                )))
            }
        }
    }

    /// Sends one message and waits for the response bearing the same rid.
    fn rpc(&self, msg: Message) -> Result<Message, WireError> {
        let (rid, rx) = self.begin(msg)?;
        self.finish(rid, rx)
    }

    fn explain_message(&self, request: &ExplainRequest) -> Message {
        Message::Explain(WireRequest {
            rid: self.next_rid(),
            model_id: request.model_id.clone(),
            features: request.features.clone(),
            method: request.method,
            budget_ns: request.budget.as_nanos() as u64,
        })
    }

    fn decode_explain(msg: Message) -> Result<ExplainResponse, ShardCallError> {
        match msg {
            Message::ExplainReply(WireResponse { outcome, .. }) => match outcome {
                Ok(a) => Ok(ExplainResponse {
                    attribution: Arc::new(a.attribution),
                    model_version: a.model_version,
                    cache_hit: a.cache_hit,
                    batch_size: a.batch_size as usize,
                    queue_wait: Duration::from_nanos(a.queue_wait_ns),
                    service_time: Duration::from_nanos(a.service_ns),
                    fidelity: Fidelity::from_parts(a.coarse_budget, a.max_abs_err),
                }),
                Err(e) => Err(ShardCallError::Serve(e)),
            },
            other => Err(ShardCallError::Wire(WireError::Decode(format!(
                "expected ExplainReply, got {:?}",
                other.msg_type()
            )))),
        }
    }

    /// Remote `Engine::explain`.
    pub fn explain(&self, request: &ExplainRequest) -> Result<ExplainResponse, ShardCallError> {
        let msg = self.explain_message(request);
        Self::decode_explain(self.rpc(msg).map_err(ShardCallError::Wire)?)
    }

    /// Pipelined remote explains: every request is written to the socket
    /// before the first response is awaited, so one connection keeps up
    /// to `requests.len()` explains in flight. Results come back in input
    /// order (the wire order may differ; rids correlate). Each slot fails
    /// independently — a reject on one request does not poison the rest.
    pub fn explain_many(
        &self,
        requests: &[ExplainRequest],
    ) -> Vec<Result<ExplainResponse, ShardCallError>> {
        let tickets: Vec<_> = requests
            .iter()
            .map(|request| self.begin(self.explain_message(request)))
            .collect();
        tickets
            .into_iter()
            .map(|ticket| match ticket {
                Ok((rid, rx)) => {
                    Self::decode_explain(self.finish(rid, rx).map_err(ShardCallError::Wire)?)
                }
                Err(e) => Err(ShardCallError::Wire(e)),
            })
            .collect()
    }

    /// Remote `ModelRegistry::register`: ships the model as JSON and the
    /// background as raw rows. Returns the registry version the shard
    /// assigned.
    pub fn register(
        &self,
        model_id: &str,
        model: &ServeModel,
        feature_names: &[String],
        background: &Background,
    ) -> Result<u64, ShardCallError> {
        self.register_with_configs(model_id, model, feature_names, background, &[])
    }

    /// [`ShardConn::register`] with per-method serving configuration:
    /// `(method name, anytime divisor)` pairs the shard applies to its
    /// `ModelRegistry` alongside the registration (an empty slice encodes
    /// a byte-identical v1 `Register` frame).
    pub fn register_with_configs(
        &self,
        model_id: &str,
        model: &ServeModel,
        feature_names: &[String],
        background: &Background,
        method_configs: &[(String, u64)],
    ) -> Result<u64, ShardCallError> {
        let model_json = serde_json::to_string(model)
            .map_err(|e| ShardCallError::Wire(WireError::Decode(format!("model json: {e}"))))?;
        let msg = Message::Register(WireRegister {
            rid: self.next_rid(),
            model_id: model_id.to_string(),
            model_json,
            feature_names: feature_names.to_vec(),
            background_rows: background.rows().to_vec(),
            method_configs: method_configs.to_vec(),
        });
        match self.rpc(msg).map_err(ShardCallError::Wire)? {
            Message::RegisterOk { version, .. } => Ok(version),
            Message::RegisterErr { error, .. } => Err(ShardCallError::Serve(error)),
            // Legacy arm: shards older than the `RegisterErr` message
            // reported registration failures as an `ExplainReply` error.
            // Kept for one protocol version so a new client can talk to
            // an old shard; remove when VERSION bumps.
            Message::ExplainReply(WireResponse {
                outcome: Err(e), ..
            }) => Err(ShardCallError::Serve(e)),
            other => Err(ShardCallError::Wire(WireError::Decode(format!(
                "expected RegisterOk, got {:?}",
                other.msg_type()
            )))),
        }
    }

    /// Health probe.
    pub fn health(&self) -> Result<WireHealth, ShardCallError> {
        let msg = Message::Health {
            rid: self.next_rid(),
        };
        match self.rpc(msg).map_err(ShardCallError::Wire)? {
            Message::HealthOk(h) => Ok(h),
            other => Err(ShardCallError::Wire(WireError::Decode(format!(
                "expected HealthOk, got {:?}",
                other.msg_type()
            )))),
        }
    }

    /// Graceful drain handshake; returns the shard's completed-request
    /// count. The shard stops accepting and exits after replying.
    pub fn drain(&self) -> Result<u64, ShardCallError> {
        let msg = Message::Drain {
            rid: self.next_rid(),
        };
        match self.rpc(msg).map_err(ShardCallError::Wire)? {
            Message::DrainOk { completed, .. } => Ok(completed),
            other => Err(ShardCallError::Wire(WireError::Decode(format!(
                "expected DrainOk, got {:?}",
                other.msg_type()
            )))),
        }
    }
}

/// What one shard call can return: a transport fault (reroutable) or the
/// engine's own verdict (authoritative).
#[derive(Debug, Clone, PartialEq)]
pub enum ShardCallError {
    /// Framing/transport failure — the router may retry elsewhere.
    Wire(WireError),
    /// The shard's engine answered with an error — not a transport issue.
    Serve(ServeError),
}

impl std::fmt::Display for ShardCallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCallError::Wire(e) => write!(f, "wire: {e}"),
            ShardCallError::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ShardCallError {}

fn reader_loop(
    mut stream: TcpStream,
    max_payload: usize,
    pending: PendingMap,
    alive: Arc<AtomicBool>,
) {
    let fail_all = |err: WireError| {
        alive.store(false, Ordering::SeqCst);
        let mut map = pending.lock();
        for (_, tx) in map.drain() {
            let _ = tx.send(Err(err.clone()));
        }
    };
    loop {
        let (t, payload) = match read_frame(&mut stream, max_payload) {
            Ok(f) => f,
            Err(e) => {
                fail_all(e);
                return;
            }
        };
        let msg = match Message::decode_payload(t, payload) {
            Ok(m) => m,
            Err(e) => {
                // A frame we cannot decode means the stream state is
                // unknowable; fail loud and kill the connection.
                fail_all(e);
                return;
            }
        };
        let rid = msg.rid();
        if let Some(tx) = pending.lock().remove(&rid) {
            let _ = tx.send(Ok(msg));
        }
        // An unmatched rid (caller timed out and gave up) is dropped.
    }
}
