//! Message bodies: what rides inside a frame's payload.
//!
//! Every message carries a request id (`rid`) chosen by the client, echoed
//! verbatim by the shard. Responses may arrive in any order — a shard
//! answers cheap cache hits while an exact-Shapley request is still
//! computing — and the client demultiplexes purely on `rid`.
//!
//! Numbers cross the wire as fixed-width little-endian; every `f64` is its
//! IEEE-754 bit pattern, so feature vectors and attributions round-trip
//! bit-exactly. Models travel as `serde_json` of
//! [`ServeModel`](nfv_serve::prelude::ServeModel) — all
//! weights are finite, and Rust's shortest-round-trip float formatting
//! makes that encoding bit-exact too. Background data travels as raw rows;
//! the shard rebuilds summary statistics with `Background::from_rows`, the
//! same constructor the in-process path uses.

use crate::frame::{truncated, MsgType, WireError};
use bytes::{BufMut, Bytes, BytesMut};
use nfv_serve::prelude::{ExplainMethod, RejectReason, ServeError};
use nfv_sim::wire;
use nfv_xai::prelude::Attribution;
use nfv_xai::XaiError;

/// Cap for short strings (model ids, method tags, error messages).
pub const MAX_STR: usize = 1 << 16;
/// Cap for serialized model JSON.
pub const MAX_MODEL_JSON: usize = 32 << 20;
/// Cap for f64 vector lengths (features, attribution values, background
/// rows): 2^20 values = 8 MiB.
pub const MAX_VEC: usize = 1 << 20;
/// Cap on background row count in one registration.
pub const MAX_ROWS: usize = 1 << 16;

/// One explanation request as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub rid: u64,
    /// Registry id of the model to explain.
    pub model_id: String,
    /// The instance to explain.
    pub features: Vec<f64>,
    /// Which explainer to run.
    pub method: ExplainMethod,
    /// Latency budget, nanoseconds.
    pub budget_ns: u64,
}

/// The successful half of a response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// The attribution, reconstructed field-for-field.
    pub attribution: Attribution,
    /// Version of the model that produced it.
    pub model_version: u64,
    /// Served from the shard's cache.
    pub cache_hit: bool,
    /// Worker batch size.
    pub batch_size: u64,
    /// Queue wait on the shard, nanoseconds.
    pub queue_wait_ns: u64,
    /// Explainer compute time, nanoseconds.
    pub service_ns: u64,
    /// Sampling budget of a coarse (anytime) answer; `0` means the
    /// attribution was computed at the request's full budget. Wire-optional:
    /// frames from older peers omit it and decode as `0`.
    pub coarse_budget: u64,
    /// Max-abs dequantization error of a cold-tier hit; `0.0` means the
    /// attribution is bit-exact. Wire-optional like `coarse_budget`.
    pub max_abs_err: f64,
}

/// A response: the answer or the engine's error, tagged with the rid.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// Echo of the request's correlation id.
    pub rid: u64,
    /// What the shard's engine returned.
    pub outcome: Result<WireAnswer, ServeError>,
}

/// A model registration as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRegister {
    /// Correlation id.
    pub rid: u64,
    /// Registry id to register under.
    pub model_id: String,
    /// `serde_json` of [`nfv_serve::prelude::ServeModel`].
    pub model_json: String,
    /// Feature names, in order.
    pub feature_names: Vec<String>,
    /// Raw background rows; the shard rebuilds the `Background`.
    pub background_rows: Vec<Vec<f64>>,
    /// Per-method serving configuration shipped with the registration:
    /// `(method name, anytime coarsening divisor)` pairs the shard applies
    /// via `ModelRegistry::set_anytime_divisor`. Wire-optional trailing
    /// tail (same evolution pattern as [`WireAnswer`]'s fidelity fields):
    /// empty vectors encode nothing, so a v1 `Register` frame is
    /// byte-identical and v1 frames decode as "no configs".
    pub method_configs: Vec<(String, u64)>,
}

/// Cap on [`WireRegister::method_configs`] entries per frame — far above
/// any real per-model method count, small enough that a hostile length
/// prefix cannot balloon allocation.
pub const MAX_METHOD_CONFIGS: usize = 1024;

/// A shard's health snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHealth {
    /// Correlation id.
    pub rid: u64,
    /// True once a drain has been requested.
    pub draining: bool,
    /// Engine queue depth at snapshot time.
    pub queue_len: u64,
    /// Engine cache entries at snapshot time.
    pub cache_len: u64,
    /// Frames this shard failed to decode (fail-loud counter).
    pub protocol_errors: u64,
    /// `serde_json` of the shard's `ServeStats`.
    pub stats_json: String,
}

/// Every protocol message. The variant set mirrors [`MsgType`] one-to-one.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → shard.
    Explain(WireRequest),
    /// Shard → client. Also the error reply for any failed RPC.
    ExplainReply(WireResponse),
    /// Client → shard.
    Register(WireRegister),
    /// Shard → client.
    RegisterOk {
        /// Correlation id.
        rid: u64,
        /// Registry version assigned to the model.
        version: u64,
    },
    /// Client → shard.
    Health {
        /// Correlation id.
        rid: u64,
    },
    /// Shard → client.
    HealthOk(WireHealth),
    /// Client → shard.
    Drain {
        /// Correlation id.
        rid: u64,
    },
    /// Shard → client.
    DrainOk {
        /// Correlation id.
        rid: u64,
        /// Requests this shard completed over its lifetime.
        completed: u64,
    },
    /// Shard → client: a [`Message::Register`] failed. Carries the typed
    /// engine error instead of dressing it up as an explain response
    /// (which is what protocol v1 servers did — clients keep a legacy
    /// decode arm for that shape for one version).
    RegisterErr {
        /// Correlation id.
        rid: u64,
        /// Why the registration failed.
        error: ServeError,
    },
}

/// Method encoding, two shapes behind one leading tag byte:
///
/// * Tags 1–7 are the protocol-v1 *legacy discriminants* of the seven
///   original built-ins, kept byte-identical so v1 frames decode forever
///   (proptested in `codec_proptests`). Built-ins still encode this way —
///   it is both compatible and smaller than a name.
/// * Tag 0 is the open-registry shape: a length-prefixed method *name*
///   plus the u64 budget word. Anything beyond the legacy seven —
///   `interactions`, runtime-registered methods — uses it. Decoding
///   normalizes built-in names to their canonical variants
///   ([`ExplainMethod::from_name`]), so a named frame and a legacy frame
///   for the same request yield identical cache keys and seeds; an
///   *unknown* name decodes as a `Custom` id and is answered by the
///   engine's typed `UnknownMethod` reject, never a protocol error.
fn put_method(buf: &mut BytesMut, m: ExplainMethod) {
    match m {
        ExplainMethod::Interactions | ExplainMethod::Custom { .. } => {
            buf.put_u8(0);
            put_string(buf, &m.display_name());
            buf.put_u64_le(m.budget_word());
        }
        ExplainMethod::TreeShap => buf.put_u8(1),
        ExplainMethod::KernelShap { n_coalitions } => {
            buf.put_u8(2);
            buf.put_u64_le(n_coalitions as u64);
        }
        ExplainMethod::Lime { n_samples } => {
            buf.put_u8(3);
            buf.put_u64_le(n_samples as u64);
        }
        ExplainMethod::SamplingShapley {
            n_permutations,
            antithetic,
        } => {
            buf.put_u8(4);
            buf.put_u64_le(n_permutations as u64);
            buf.put_u8(antithetic as u8);
        }
        ExplainMethod::ExactShapley => buf.put_u8(5),
        ExplainMethod::GroupedShapley => buf.put_u8(6),
        ExplainMethod::Permutation => buf.put_u8(7),
    }
}

fn get_method(buf: &mut Bytes) -> Result<ExplainMethod, WireError> {
    let tag = wire::get_u8(buf, "method tag").map_err(truncated)?;
    Ok(match tag {
        0 => {
            let name = get_string(buf, MAX_STR, "method name")?;
            let budget = wire::get_u64(buf, "method budget").map_err(truncated)?;
            ExplainMethod::from_name(&name, budget)
        }
        1 => ExplainMethod::TreeShap,
        2 => ExplainMethod::KernelShap {
            n_coalitions: wire::get_u64(buf, "n_coalitions").map_err(truncated)? as usize,
        },
        3 => ExplainMethod::Lime {
            n_samples: wire::get_u64(buf, "n_samples").map_err(truncated)? as usize,
        },
        4 => ExplainMethod::SamplingShapley {
            n_permutations: wire::get_u64(buf, "n_permutations").map_err(truncated)? as usize,
            antithetic: wire::get_u8(buf, "antithetic").map_err(truncated)? != 0,
        },
        5 => ExplainMethod::ExactShapley,
        6 => ExplainMethod::GroupedShapley,
        7 => ExplainMethod::Permutation,
        other => return Err(WireError::Decode(format!("unknown method tag {other}"))),
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    wire::put_str(buf, s);
}

fn get_string(buf: &mut Bytes, cap: usize, what: &str) -> Result<String, WireError> {
    wire::get_str(buf, cap, what).map_err(|e| {
        if e.contains("cap") {
            WireError::Decode(e)
        } else {
            WireError::Truncated(e)
        }
    })
}

fn get_vec_f64(buf: &mut Bytes, what: &str) -> Result<Vec<f64>, WireError> {
    wire::get_f64s(buf, MAX_VEC, what).map_err(|e| {
        if e.contains("cap") {
            WireError::Decode(e)
        } else {
            WireError::Truncated(e)
        }
    })
}

fn put_serve_error(buf: &mut BytesMut, e: &ServeError) {
    match e {
        ServeError::Rejected(r) => {
            buf.put_u8(1);
            match r {
                RejectReason::QueueFull { capacity } => {
                    buf.put_u8(1);
                    buf.put_u64_le(*capacity as u64);
                }
                RejectReason::DeadlineUnmeetable {
                    estimated_us,
                    budget_us,
                } => {
                    buf.put_u8(2);
                    buf.put_u64_le(*estimated_us);
                    buf.put_u64_le(*budget_us);
                }
                RejectReason::DeadlineExpired {
                    waited_us,
                    budget_us,
                } => {
                    buf.put_u8(3);
                    buf.put_u64_le(*waited_us);
                    buf.put_u64_le(*budget_us);
                }
                RejectReason::UnknownModel { model_id } => {
                    buf.put_u8(4);
                    put_string(buf, model_id);
                }
                RejectReason::InvalidRequest { reason } => {
                    buf.put_u8(5);
                    put_string(buf, reason);
                }
                RejectReason::ShuttingDown => buf.put_u8(6),
                RejectReason::PipelineTooDeep { depth, limit } => {
                    buf.put_u8(7);
                    buf.put_u64_le(*depth);
                    buf.put_u64_le(*limit);
                }
                RejectReason::UnknownMethod { method } => {
                    buf.put_u8(8);
                    put_string(buf, method);
                }
            }
        }
        ServeError::Explain(x) => {
            buf.put_u8(2);
            let (tag, msg) = match x {
                XaiError::Input(m) => (1u8, m),
                XaiError::Budget(m) => (2, m),
                XaiError::Numeric(m) => (3, m),
            };
            buf.put_u8(tag);
            put_string(buf, msg);
        }
        ServeError::Internal(m) => {
            buf.put_u8(3);
            put_string(buf, m);
        }
    }
}

fn get_serve_error(buf: &mut Bytes) -> Result<ServeError, WireError> {
    let kind = wire::get_u8(buf, "error kind").map_err(truncated)?;
    Ok(match kind {
        1 => {
            let tag = wire::get_u8(buf, "reject tag").map_err(truncated)?;
            let reason = match tag {
                1 => RejectReason::QueueFull {
                    capacity: wire::get_u64(buf, "capacity").map_err(truncated)? as usize,
                },
                2 => RejectReason::DeadlineUnmeetable {
                    estimated_us: wire::get_u64(buf, "estimated_us").map_err(truncated)?,
                    budget_us: wire::get_u64(buf, "budget_us").map_err(truncated)?,
                },
                3 => RejectReason::DeadlineExpired {
                    waited_us: wire::get_u64(buf, "waited_us").map_err(truncated)?,
                    budget_us: wire::get_u64(buf, "budget_us").map_err(truncated)?,
                },
                4 => RejectReason::UnknownModel {
                    model_id: get_string(buf, MAX_STR, "model_id")?,
                },
                5 => RejectReason::InvalidRequest {
                    reason: get_string(buf, MAX_STR, "reason")?,
                },
                6 => RejectReason::ShuttingDown,
                7 => RejectReason::PipelineTooDeep {
                    depth: wire::get_u64(buf, "depth").map_err(truncated)?,
                    limit: wire::get_u64(buf, "limit").map_err(truncated)?,
                },
                8 => RejectReason::UnknownMethod {
                    method: get_string(buf, MAX_STR, "method")?,
                },
                other => return Err(WireError::Decode(format!("unknown reject tag {other}"))),
            };
            ServeError::Rejected(reason)
        }
        2 => {
            let tag = wire::get_u8(buf, "xai tag").map_err(truncated)?;
            let msg = get_string(buf, MAX_STR, "xai message")?;
            ServeError::Explain(match tag {
                1 => XaiError::Input(msg),
                2 => XaiError::Budget(msg),
                3 => XaiError::Numeric(msg),
                other => return Err(WireError::Decode(format!("unknown xai tag {other}"))),
            })
        }
        3 => ServeError::Internal(get_string(buf, MAX_STR, "internal message")?),
        other => return Err(WireError::Decode(format!("unknown error kind {other}"))),
    })
}

fn put_attribution(buf: &mut BytesMut, a: &Attribution) {
    buf.put_u32_le(a.names.len() as u32);
    for n in &a.names {
        put_string(buf, n);
    }
    wire::put_f64s(buf, &a.values);
    buf.put_u64_le(a.base_value.to_bits());
    buf.put_u64_le(a.prediction.to_bits());
    put_string(buf, &a.method);
}

fn get_attribution(buf: &mut Bytes) -> Result<Attribution, WireError> {
    let n_names = wire::get_u32(buf, "attribution names").map_err(truncated)? as usize;
    if n_names > MAX_VEC {
        return Err(WireError::Decode(format!(
            "attribution claims {n_names} names, cap {MAX_VEC}"
        )));
    }
    let mut names = Vec::with_capacity(n_names.min(4096));
    for _ in 0..n_names {
        names.push(get_string(buf, MAX_STR, "attribution name")?);
    }
    let values = get_vec_f64(buf, "attribution values")?;
    let base_value = wire::get_f64(buf, "base_value").map_err(truncated)?;
    let prediction = wire::get_f64(buf, "prediction").map_err(truncated)?;
    let method = get_string(buf, MAX_STR, "attribution method")?;
    Ok(Attribution {
        names,
        values,
        base_value,
        prediction,
        method,
    })
}

impl Message {
    /// The frame discriminant this message travels under.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Message::Explain(_) => MsgType::ExplainRequest,
            Message::ExplainReply(_) => MsgType::ExplainResponse,
            Message::Register(_) => MsgType::RegisterModel,
            Message::RegisterOk { .. } => MsgType::RegisterOk,
            Message::Health { .. } => MsgType::Health,
            Message::HealthOk(_) => MsgType::HealthOk,
            Message::Drain { .. } => MsgType::Drain,
            Message::DrainOk { .. } => MsgType::DrainOk,
            Message::RegisterErr { .. } => MsgType::RegisterErr,
        }
    }

    /// The correlation id — the demultiplexing key on both sides.
    pub fn rid(&self) -> u64 {
        match self {
            Message::Explain(r) => r.rid,
            Message::ExplainReply(r) => r.rid,
            Message::Register(r) => r.rid,
            Message::RegisterOk { rid, .. } => *rid,
            Message::Health { rid } => *rid,
            Message::HealthOk(h) => h.rid,
            Message::Drain { rid } => *rid,
            Message::DrainOk { rid, .. } => *rid,
            Message::RegisterErr { rid, .. } => *rid,
        }
    }

    /// Encodes the payload bytes (frame header and checksum are added by
    /// [`crate::frame::write_frame`]).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            Message::Explain(r) => {
                buf.put_u64_le(r.rid);
                put_string(&mut buf, &r.model_id);
                wire::put_f64s(&mut buf, &r.features);
                put_method(&mut buf, r.method);
                buf.put_u64_le(r.budget_ns);
            }
            Message::ExplainReply(r) => {
                buf.put_u64_le(r.rid);
                match &r.outcome {
                    Ok(a) => {
                        buf.put_u8(1);
                        put_attribution(&mut buf, &a.attribution);
                        buf.put_u64_le(a.model_version);
                        buf.put_u8(a.cache_hit as u8);
                        buf.put_u64_le(a.batch_size);
                        buf.put_u64_le(a.queue_wait_ns);
                        buf.put_u64_le(a.service_ns);
                        // Fidelity tail (added after the v1 wire freeze).
                        // Omitted entirely when the answer is exact, so
                        // exact-only deployments emit v1-identical frames.
                        if a.coarse_budget != 0 || a.max_abs_err != 0.0 {
                            buf.put_u64_le(a.coarse_budget);
                            buf.put_u64_le(a.max_abs_err.to_bits());
                        }
                    }
                    Err(e) => {
                        buf.put_u8(0);
                        put_serve_error(&mut buf, e);
                    }
                }
            }
            Message::Register(r) => {
                buf.put_u64_le(r.rid);
                put_string(&mut buf, &r.model_id);
                put_string(&mut buf, &r.model_json);
                buf.put_u32_le(r.feature_names.len() as u32);
                for n in &r.feature_names {
                    put_string(&mut buf, n);
                }
                buf.put_u32_le(r.background_rows.len() as u32);
                for row in &r.background_rows {
                    wire::put_f64s(&mut buf, row);
                }
                // Wire-optional tail: only encoded when non-empty, so
                // config-less registrations stay byte-identical to v1.
                if !r.method_configs.is_empty() {
                    buf.put_u32_le(r.method_configs.len() as u32);
                    for (name, divisor) in &r.method_configs {
                        put_string(&mut buf, name);
                        buf.put_u64_le(*divisor);
                    }
                }
            }
            Message::RegisterOk { rid, version } => {
                buf.put_u64_le(*rid);
                buf.put_u64_le(*version);
            }
            Message::Health { rid } => buf.put_u64_le(*rid),
            Message::HealthOk(h) => {
                buf.put_u64_le(h.rid);
                buf.put_u8(h.draining as u8);
                buf.put_u64_le(h.queue_len);
                buf.put_u64_le(h.cache_len);
                buf.put_u64_le(h.protocol_errors);
                put_string(&mut buf, &h.stats_json);
            }
            Message::Drain { rid } => buf.put_u64_le(*rid),
            Message::DrainOk { rid, completed } => {
                buf.put_u64_le(*rid);
                buf.put_u64_le(*completed);
            }
            Message::RegisterErr { rid, error } => {
                buf.put_u64_le(*rid);
                put_serve_error(&mut buf, error);
            }
        }
        buf.freeze().as_ref().to_vec()
    }

    /// Decodes a payload under its frame's [`MsgType`]. Trailing garbage
    /// after a well-formed body is a decode error: a frame is exactly one
    /// message.
    pub fn decode_payload(t: MsgType, mut buf: Bytes) -> Result<Message, WireError> {
        let rid = wire::get_u64(&mut buf, "rid").map_err(truncated)?;
        let msg = match t {
            MsgType::ExplainRequest => Message::Explain(WireRequest {
                rid,
                model_id: get_string(&mut buf, MAX_STR, "model_id")?,
                features: get_vec_f64(&mut buf, "features")?,
                method: get_method(&mut buf)?,
                budget_ns: wire::get_u64(&mut buf, "budget_ns").map_err(truncated)?,
            }),
            MsgType::ExplainResponse => {
                let ok = wire::get_u8(&mut buf, "outcome tag").map_err(truncated)?;
                let outcome = match ok {
                    1 => {
                        let attribution = get_attribution(&mut buf)?;
                        let model_version =
                            wire::get_u64(&mut buf, "model_version").map_err(truncated)?;
                        let cache_hit =
                            wire::get_u8(&mut buf, "cache_hit").map_err(truncated)? != 0;
                        let batch_size =
                            wire::get_u64(&mut buf, "batch_size").map_err(truncated)?;
                        let queue_wait_ns =
                            wire::get_u64(&mut buf, "queue_wait_ns").map_err(truncated)?;
                        let service_ns =
                            wire::get_u64(&mut buf, "service_ns").map_err(truncated)?;
                        // The fidelity tail is optional: a v1 frame ends at
                        // `service_ns`, and the frame layer forbids trailing
                        // garbage, so "bytes remain" is an unambiguous signal
                        // that the peer wrote the tail.
                        let (coarse_budget, max_abs_err) = if !buf.is_empty() {
                            (
                                wire::get_u64(&mut buf, "coarse_budget").map_err(truncated)?,
                                f64::from_bits(
                                    wire::get_u64(&mut buf, "max_abs_err").map_err(truncated)?,
                                ),
                            )
                        } else {
                            (0, 0.0)
                        };
                        Ok(WireAnswer {
                            attribution,
                            model_version,
                            cache_hit,
                            batch_size,
                            queue_wait_ns,
                            service_ns,
                            coarse_budget,
                            max_abs_err,
                        })
                    }
                    0 => Err(get_serve_error(&mut buf)?),
                    other => return Err(WireError::Decode(format!("unknown outcome tag {other}"))),
                };
                Message::ExplainReply(WireResponse { rid, outcome })
            }
            MsgType::RegisterModel => {
                let model_id = get_string(&mut buf, MAX_STR, "model_id")?;
                let model_json = get_string(&mut buf, MAX_MODEL_JSON, "model_json")?;
                let n_names = wire::get_u32(&mut buf, "feature_names").map_err(truncated)? as usize;
                if n_names > MAX_VEC {
                    return Err(WireError::Decode(format!(
                        "register claims {n_names} feature names, cap {MAX_VEC}"
                    )));
                }
                let mut feature_names = Vec::with_capacity(n_names.min(4096));
                for _ in 0..n_names {
                    feature_names.push(get_string(&mut buf, MAX_STR, "feature name")?);
                }
                let n_rows =
                    wire::get_u32(&mut buf, "background rows").map_err(truncated)? as usize;
                if n_rows > MAX_ROWS {
                    return Err(WireError::Decode(format!(
                        "register claims {n_rows} background rows, cap {MAX_ROWS}"
                    )));
                }
                let mut background_rows = Vec::with_capacity(n_rows.min(4096));
                for _ in 0..n_rows {
                    background_rows.push(get_vec_f64(&mut buf, "background row")?);
                }
                // Wire-optional tail (absent in v1 frames): per-method
                // serving configs. The frame layer rejects trailing
                // garbage, so "bytes remain" unambiguously means the tail
                // is present.
                let mut method_configs = Vec::new();
                if !buf.is_empty() {
                    let n = wire::get_u32(&mut buf, "method configs").map_err(truncated)? as usize;
                    if n > MAX_METHOD_CONFIGS {
                        return Err(WireError::Decode(format!(
                            "register claims {n} method configs, cap {MAX_METHOD_CONFIGS}"
                        )));
                    }
                    method_configs.reserve(n.min(4096));
                    for _ in 0..n {
                        let name = get_string(&mut buf, MAX_STR, "method config name")?;
                        let divisor =
                            wire::get_u64(&mut buf, "method config divisor").map_err(truncated)?;
                        method_configs.push((name, divisor));
                    }
                }
                Message::Register(WireRegister {
                    rid,
                    model_id,
                    model_json,
                    feature_names,
                    background_rows,
                    method_configs,
                })
            }
            MsgType::RegisterOk => Message::RegisterOk {
                rid,
                version: wire::get_u64(&mut buf, "version").map_err(truncated)?,
            },
            MsgType::Health => Message::Health { rid },
            MsgType::HealthOk => Message::HealthOk(WireHealth {
                rid,
                draining: wire::get_u8(&mut buf, "draining").map_err(truncated)? != 0,
                queue_len: wire::get_u64(&mut buf, "queue_len").map_err(truncated)?,
                cache_len: wire::get_u64(&mut buf, "cache_len").map_err(truncated)?,
                protocol_errors: wire::get_u64(&mut buf, "protocol_errors").map_err(truncated)?,
                stats_json: get_string(&mut buf, MAX_STR, "stats_json")?,
            }),
            MsgType::Drain => Message::Drain { rid },
            MsgType::DrainOk => Message::DrainOk {
                rid,
                completed: wire::get_u64(&mut buf, "completed").map_err(truncated)?,
            },
            MsgType::RegisterErr => Message::RegisterErr {
                rid,
                error: get_serve_error(&mut buf)?,
            },
        };
        if !buf.is_empty() {
            return Err(WireError::Decode(format!(
                "{} trailing bytes after {:?} body",
                buf.len(),
                t
            )));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Message) -> Message {
        let payload = m.encode_payload();
        Message::decode_payload(m.msg_type(), Bytes::from_vec(payload)).unwrap()
    }

    #[test]
    fn every_message_type_roundtrips() {
        let attribution = Attribution {
            names: vec!["pps".into(), "q_len".into()],
            values: vec![0.25, -1.5e-9],
            base_value: 3.125,
            prediction: 1.875,
            method: "kernel-shap".into(),
        };
        let messages = [
            Message::Explain(WireRequest {
                rid: 7,
                model_id: "sla".into(),
                features: vec![1.0, -0.0, f64::MIN_POSITIVE],
                method: ExplainMethod::SamplingShapley {
                    n_permutations: 32,
                    antithetic: true,
                },
                budget_ns: 1_000_000,
            }),
            Message::ExplainReply(WireResponse {
                rid: 7,
                outcome: Ok(WireAnswer {
                    attribution,
                    model_version: 3,
                    cache_hit: true,
                    batch_size: 4,
                    queue_wait_ns: 120,
                    service_ns: 4_500,
                    coarse_budget: 16,
                    max_abs_err: 1.25e-4,
                }),
            }),
            Message::ExplainReply(WireResponse {
                rid: 8,
                outcome: Err(ServeError::Rejected(RejectReason::QueueFull {
                    capacity: 256,
                })),
            }),
            Message::Register(WireRegister {
                rid: 1,
                model_id: "sla".into(),
                model_json: "{\"Linear\":{}}".into(),
                feature_names: vec!["a".into(), "b".into()],
                background_rows: vec![vec![0.5, 1.5], vec![-2.0, 0.25]],
                method_configs: vec![("kernel-shap".into(), 4)],
            }),
            Message::RegisterOk { rid: 1, version: 1 },
            Message::Health { rid: 2 },
            Message::HealthOk(WireHealth {
                rid: 2,
                draining: false,
                queue_len: 3,
                cache_len: 9,
                protocol_errors: 0,
                stats_json: "{}".into(),
            }),
            Message::Drain { rid: 3 },
            Message::DrainOk {
                rid: 3,
                completed: 42,
            },
            Message::RegisterErr {
                rid: 4,
                error: ServeError::Internal("model json: EOF".into()),
            },
            Message::RegisterErr {
                rid: 5,
                error: ServeError::Rejected(RejectReason::InvalidRequest {
                    reason: "zero-dimensional background".into(),
                }),
            },
        ];
        for m in &messages {
            assert_eq!(&roundtrip(m), m);
            assert_eq!(roundtrip(m).rid(), m.rid());
        }
    }

    #[test]
    fn every_serve_error_variant_roundtrips() {
        let errors = [
            ServeError::Rejected(RejectReason::QueueFull { capacity: 8 }),
            ServeError::Rejected(RejectReason::DeadlineUnmeetable {
                estimated_us: 900,
                budget_us: 100,
            }),
            ServeError::Rejected(RejectReason::DeadlineExpired {
                waited_us: 150,
                budget_us: 100,
            }),
            ServeError::Rejected(RejectReason::UnknownModel {
                model_id: "ghost".into(),
            }),
            ServeError::Rejected(RejectReason::InvalidRequest {
                reason: "wrong feature count".into(),
            }),
            ServeError::Rejected(RejectReason::ShuttingDown),
            ServeError::Rejected(RejectReason::PipelineTooDeep {
                depth: 65,
                limit: 64,
            }),
            ServeError::Rejected(RejectReason::UnknownMethod {
                method: "online-sage".into(),
            }),
            ServeError::Explain(XaiError::Input("bad".into())),
            ServeError::Explain(XaiError::Budget("zero".into())),
            ServeError::Explain(XaiError::Numeric("singular".into())),
            ServeError::Internal("worker died".into()),
        ];
        for e in errors {
            let m = Message::ExplainReply(WireResponse {
                rid: 9,
                outcome: Err(e.clone()),
            });
            match roundtrip(&m) {
                Message::ExplainReply(WireResponse {
                    outcome: Err(back), ..
                }) => assert_eq!(back, e),
                other => panic!("wrong shape: {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Message::Health { rid: 1 }.encode_payload();
        payload.push(0);
        assert!(matches!(
            Message::decode_payload(MsgType::Health, Bytes::from_vec(payload)),
            Err(WireError::Decode(_))
        ));
    }

    #[test]
    fn exact_answers_encode_v1_frames_and_legacy_frames_decode() {
        let answer = WireAnswer {
            attribution: Attribution {
                names: vec!["pps".into()],
                values: vec![0.5],
                base_value: 1.0,
                prediction: 1.5,
                method: "tree-shap".into(),
            },
            model_version: 2,
            cache_hit: false,
            batch_size: 1,
            queue_wait_ns: 10,
            service_ns: 20,
            coarse_budget: 0,
            max_abs_err: 0.0,
        };
        let exact = Message::ExplainReply(WireResponse {
            rid: 9,
            outcome: Ok(answer.clone()),
        });
        // An exact answer omits the fidelity tail entirely — its payload is
        // byte-identical to what a v1 encoder produced, i.e. any v1 frame a
        // legacy peer sends is exactly this payload. Decoding it must
        // default the fidelity fields rather than error on truncation.
        let payload = exact.encode_payload();
        let degraded = Message::ExplainReply(WireResponse {
            rid: 9,
            outcome: Ok(WireAnswer {
                coarse_budget: 8,
                max_abs_err: 3.0e-5,
                ..answer
            }),
        });
        assert_eq!(
            degraded.encode_payload().len(),
            payload.len() + 16,
            "fidelity tail is exactly two trailing u64 words"
        );
        match Message::decode_payload(MsgType::ExplainResponse, Bytes::from_vec(payload)) {
            Ok(Message::ExplainReply(r)) => {
                let a = r.outcome.unwrap();
                assert_eq!(a.coarse_budget, 0);
                assert_eq!(a.max_abs_err.to_bits(), 0.0f64.to_bits());
            }
            other => panic!("wrong shape: {other:?}"),
        }
        assert_eq!(roundtrip(&degraded), degraded);
    }

    #[test]
    fn named_methods_roundtrip_and_normalize_to_canonical_variants() {
        // Beyond-the-legacy-seven methods ride tag 0 as (name, budget).
        for method in [
            ExplainMethod::Interactions,
            ExplainMethod::custom("online-sage", 32),
        ] {
            let m = Message::Explain(WireRequest {
                rid: 3,
                model_id: "m".into(),
                features: vec![1.0],
                method,
                budget_ns: 5,
            });
            match roundtrip(&m) {
                Message::Explain(r) => assert_eq!(r.method, method),
                other => panic!("wrong shape: {other:?}"),
            }
        }
        // A hand-built tag-0 frame naming a *built-in* decodes to the
        // canonical variant, so named and legacy frames produce identical
        // cache keys and seeds.
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        put_string(&mut buf, "kernel-shap");
        buf.put_u64_le(64);
        let mut bytes = Bytes::from_vec(buf.freeze().as_ref().to_vec());
        assert_eq!(
            get_method(&mut bytes).unwrap(),
            ExplainMethod::KernelShap { n_coalitions: 64 }
        );
        // An unknown custom id survives the wire via the #hex escape.
        let c = ExplainMethod::Custom {
            id: 0xfeed_f00d_dead_beef,
            budget: 2,
        };
        let mut buf = BytesMut::new();
        put_method(&mut buf, c);
        let mut bytes = Bytes::from_vec(buf.freeze().as_ref().to_vec());
        assert_eq!(get_method(&mut bytes).unwrap(), c);
    }

    #[test]
    fn configless_registers_encode_v1_frames_and_config_tails_roundtrip() {
        let bare = WireRegister {
            rid: 4,
            model_id: "sla".into(),
            model_json: "{}".into(),
            feature_names: vec!["a".into()],
            background_rows: vec![vec![0.0]],
            method_configs: Vec::new(),
        };
        // No configs → no tail: the payload is byte-identical to a v1
        // Register frame, so v1 frames decode as "no configs".
        let payload = Message::Register(bare.clone()).encode_payload();
        match Message::decode_payload(MsgType::RegisterModel, Bytes::from_vec(payload)) {
            Ok(Message::Register(r)) => assert_eq!(r, bare),
            other => panic!("wrong shape: {other:?}"),
        }
        let with_configs = Message::Register(WireRegister {
            method_configs: vec![("kernel-shap".into(), 4), ("lime".into(), 16)],
            ..bare
        });
        assert_eq!(roundtrip(&with_configs), with_configs);
    }

    #[test]
    fn oversized_method_config_counts_are_rejected() {
        let bare = Message::Register(WireRegister {
            rid: 4,
            model_id: "sla".into(),
            model_json: "{}".into(),
            feature_names: vec!["a".into()],
            background_rows: vec![vec![0.0]],
            method_configs: Vec::new(),
        });
        let mut payload = bare.encode_payload();
        // Claim a hostile config count with no entries behind it.
        payload.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            Message::decode_payload(MsgType::RegisterModel, Bytes::from_vec(payload)),
            Err(WireError::Decode(_))
        ));
    }

    #[test]
    fn features_cross_bit_exactly() {
        let features = vec![f64::NAN, -0.0, 1.0 + f64::EPSILON, 1e-308];
        let m = Message::Explain(WireRequest {
            rid: 1,
            model_id: "m".into(),
            features: features.clone(),
            method: ExplainMethod::TreeShap,
            budget_ns: 1,
        });
        match roundtrip(&m) {
            Message::Explain(r) => {
                let want: Vec<u64> = features.iter().map(|v| v.to_bits()).collect();
                let got: Vec<u64> = r.features.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }
}
