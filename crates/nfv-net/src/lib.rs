//! # nfv-net — multi-process shard serving over a binary wire protocol
//!
//! PR 5's `ServeCluster` sharded the serving [`Engine`] across threads of
//! one process; this crate puts each shard in its **own OS process** and
//! connects them with a versioned, length-prefixed binary protocol over
//! TCP — the deployment shape an NFV operator actually runs (shards pinned
//! to NUMA nodes, restarted independently, scaled across hosts).
//!
//! The layering, bottom-up:
//!
//! - [`frame`] — the frame codec: `MAGIC | version | type | len | payload |
//!   fnv1a`. Fail-loud on truncation, corruption, and hostile length
//!   prefixes (cap checked before any allocation).
//! - [`msg`] — message bodies with request-id correlation on every
//!   message; responses may arrive out of order. Floats cross as IEEE-754
//!   bit patterns, so wire answers are **bit-identical** to in-process
//!   answers.
//! - [`server`] — the shard: one event-driven readiness loop owning
//!   accept and all connection I/O, a bounded dispatch pool for explains
//!   (overflow and over-deep pipelines shed as typed rejects),
//!   per-connection write batching, and an event-driven drain state
//!   machine; shipped as the `nfv-shard` binary.
//! - [`client`] — one connection, one reader thread, rid demultiplexing,
//!   pipelined sends (`explain_many`), fail-fast on connection loss.
//! - [`router`] — [`NetCluster`]: the same content-hash ring placement as
//!   the in-process cluster ([`nfv_serve::cluster::route_hash`] +
//!   `HashRing::from_ids`), ordered model-registration fan-out with a
//!   replay log for joiners, read fan-out over ring successors for hot
//!   models, graceful join/leave with bounded remap, and spill-on-failure
//!   load shedding with cluster counters.
//!
//! Determinism contract: a request's answer depends only on its content
//! (model, method, features, budget) and the shard seed — never on which
//! transport carried it. `direct == Engine == ServeCluster == NetCluster`
//! to the last bit; the `wire_bit_identity` integration test enforces all
//! four, under forced-scalar and forced-SIMD evaluation.
//!
//! [`Engine`]: nfv_serve::Engine
//! [`NetCluster`]: router::NetCluster

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod msg;
pub mod router;
pub mod server;

/// One-stop imports.
pub mod prelude {
    pub use crate::client::{ShardCallError, ShardConn};
    pub use crate::frame::{MsgType, WireError, MAX_PAYLOAD, VERSION};
    pub use crate::msg::{Message, WireHealth, WireRegister, WireRequest, WireResponse};
    pub use crate::router::{NetCluster, NetClusterConfig, NetClusterStats, NetError};
    pub use crate::server::{ShardConfig, ShardServer};
}
