//! Permutation feature importance (Breiman, 2001): the *global* baseline —
//! how much does shuffling one column degrade the model's score on a
//! dataset.

use crate::XaiError;
use nfv_data::dataset::{Dataset, Task};
use nfv_ml::metrics;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for permutation importance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationConfig {
    /// Number of independent shuffles per feature (scores are averaged).
    pub n_repeats: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PermutationConfig {
    fn default() -> Self {
        Self {
            n_repeats: 5,
            seed: 0,
        }
    }
}

/// Per-feature importance: mean score drop across shuffles.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationImportance {
    /// Feature names from the dataset.
    pub names: Vec<String>,
    /// Mean score drop (baseline − shuffled); higher = more important.
    pub importances: Vec<f64>,
    /// Baseline score of the unshuffled data (R² or ROC-AUC by task).
    pub baseline_score: f64,
}

impl PermutationImportance {
    /// Indices sorted by importance descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.importances.len()).collect();
        idx.sort_by(|&i, &j| {
            self.importances[j]
                .partial_cmp(&self.importances[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

fn score(task: Task, y: &[f64], preds: &[f64]) -> Result<f64, XaiError> {
    match task {
        Task::Regression => metrics::r2(y, preds),
        Task::BinaryClassification => metrics::roc_auc(y, preds),
    }
    .map_err(|e| XaiError::Numeric(e.to_string()))
}

/// Computes permutation importance of `model` on `data`. The model's
/// outputs are scored with R² (regression) or ROC-AUC (classification —
/// pass a probability surface via [`nfv_ml::model::ProbaSurface`]).
pub fn permutation_importance(
    model: &dyn Regressor,
    data: &Dataset,
    cfg: &PermutationConfig,
) -> Result<PermutationImportance, XaiError> {
    if cfg.n_repeats == 0 {
        return Err(XaiError::Budget("n_repeats must be positive".into()));
    }
    if data.n_rows() < 2 {
        return Err(XaiError::Input("need at least two rows".into()));
    }
    let n = data.n_rows();
    let d = data.n_features();
    let base_refs: Vec<&[f64]> = data.rows().collect();
    let base_preds = model.predict_batch(&base_refs);
    let baseline_score = score(data.task, &data.y, &base_preds)?;

    // Shuffled evaluations go through `predict_batch` in bounded blocks:
    // one model call per block of composite rows instead of one per row.
    const BLOCK_ROWS: usize = 4096;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut importances = vec![0.0; d];
    let mut col_idx: Vec<usize> = (0..n).collect();
    let mut block = Vec::with_capacity(BLOCK_ROWS.min(n) * d);
    for j in 0..d {
        let col = data.column(j);
        let mut drop_sum = 0.0;
        for _ in 0..cfg.n_repeats {
            col_idx.shuffle(&mut rng);
            let mut preds: Vec<f64> = Vec::with_capacity(n);
            for chunk_start in (0..n).step_by(BLOCK_ROWS) {
                let chunk_end = (chunk_start + BLOCK_ROWS).min(n);
                block.clear();
                for i in chunk_start..chunk_end {
                    let start = block.len();
                    block.extend_from_slice(data.row(i));
                    block[start + j] = col[col_idx[i]];
                }
                let refs: Vec<&[f64]> = block.chunks(d).collect();
                preds.extend_from_slice(&model.predict_batch(&refs));
            }
            drop_sum += baseline_score - score(data.task, &data.y, &preds)?;
        }
        importances[j] = drop_sum / cfg.n_repeats as f64;
    }
    Ok(PermutationImportance {
        names: data.names.clone(),
        importances,
        baseline_score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::{FnModel, ProbaSurface};
    use nfv_ml::prelude::*;

    #[test]
    fn strong_feature_outranks_weak_and_noise() {
        let s = linear_gaussian(1_500, 3, 2, 0.1, 71).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(5, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let pi = permutation_importance(&model, &s.data, &PermutationConfig::default()).unwrap();
        assert!(pi.baseline_score > 0.99);
        let rank = pi.ranking();
        assert_eq!(rank[0], 0, "x0 has |w|=4");
        assert_eq!(rank[1], 1, "x1 has |w|=2");
        for noise in [3usize, 4] {
            assert!(
                pi.importances[noise].abs() < 0.01,
                "noise feature {noise}: {}",
                pi.importances[noise]
            );
        }
    }

    #[test]
    fn classification_uses_auc() {
        let s = interaction_xor(1_500, 1, 72).unwrap();
        let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
        let pi = permutation_importance(&ProbaSurface(&g), &s.data, &PermutationConfig::default())
            .unwrap();
        assert!(pi.baseline_score > 0.9, "auc={}", pi.baseline_score);
        let rank = pi.ranking();
        assert!(
            rank[0] < 2 && rank[1] < 2,
            "interacting pair on top: {rank:?}"
        );
        assert!(pi.importances[2] < pi.importances[rank[1]] * 0.3);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = friedman1(300, 6, 0.2, 73).unwrap();
        let t = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let a = permutation_importance(&t, &s.data, &PermutationConfig::default()).unwrap();
        let b = permutation_importance(&t, &s.data, &PermutationConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn guards() {
        let s = friedman1(100, 5, 0.2, 74).unwrap();
        let t = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        assert!(permutation_importance(
            &t,
            &s.data,
            &PermutationConfig {
                n_repeats: 0,
                seed: 0
            }
        )
        .is_err());
        let tiny = s.data.take_rows(&[0]).unwrap();
        assert!(permutation_importance(&t, &tiny, &PermutationConfig::default()).is_err());
    }
}
