//! Permutation feature importance (Breiman, 2001): the *global* baseline —
//! how much does shuffling one column degrade the model's score on a
//! dataset — plus its *per-instance* single-feature ablation counterpart
//! ([`instance_permutation`]), which is plan-capable and fuses into shared
//! [`FusedBlock`]s like the Shapley family.

use crate::background::{Background, CoalitionPlan, CoalitionWorkspace, FusedBlock};
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_data::dataset::{Dataset, Task};
use nfv_ml::metrics;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for permutation importance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationConfig {
    /// Number of independent shuffles per feature (scores are averaged).
    pub n_repeats: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PermutationConfig {
    fn default() -> Self {
        Self {
            n_repeats: 5,
            seed: 0,
        }
    }
}

/// Per-feature importance: mean score drop across shuffles.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationImportance {
    /// Feature names from the dataset.
    pub names: Vec<String>,
    /// Mean score drop (baseline − shuffled); higher = more important.
    pub importances: Vec<f64>,
    /// Baseline score of the unshuffled data (R² or ROC-AUC by task).
    pub baseline_score: f64,
}

impl PermutationImportance {
    /// Indices sorted by importance descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.importances.len()).collect();
        idx.sort_by(|&i, &j| {
            self.importances[j]
                .partial_cmp(&self.importances[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

fn score(task: Task, y: &[f64], preds: &[f64]) -> Result<f64, XaiError> {
    match task {
        Task::Regression => metrics::r2(y, preds),
        Task::BinaryClassification => metrics::roc_auc(y, preds),
    }
    .map_err(|e| XaiError::Numeric(e.to_string()))
}

/// Computes permutation importance of `model` on `data`. The model's
/// outputs are scored with R² (regression) or ROC-AUC (classification —
/// pass a probability surface via [`nfv_ml::model::ProbaSurface`]).
pub fn permutation_importance(
    model: &dyn Regressor,
    data: &Dataset,
    cfg: &PermutationConfig,
) -> Result<PermutationImportance, XaiError> {
    if cfg.n_repeats == 0 {
        return Err(XaiError::Budget("n_repeats must be positive".into()));
    }
    if data.n_rows() < 2 {
        return Err(XaiError::Input("need at least two rows".into()));
    }
    let n = data.n_rows();
    let d = data.n_features();
    let base_refs: Vec<&[f64]> = data.rows().collect();
    let base_preds = model.predict_batch(&base_refs);
    let baseline_score = score(data.task, &data.y, &base_preds)?;

    // Shuffled evaluations go through `predict_batch` in bounded blocks:
    // one model call per block of composite rows instead of one per row.
    const BLOCK_ROWS: usize = 4096;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut importances = vec![0.0; d];
    let mut col_idx: Vec<usize> = (0..n).collect();
    let mut block = Vec::with_capacity(BLOCK_ROWS.min(n) * d);
    for j in 0..d {
        let col = data.column(j);
        let mut drop_sum = 0.0;
        for _ in 0..cfg.n_repeats {
            col_idx.shuffle(&mut rng);
            let mut preds: Vec<f64> = Vec::with_capacity(n);
            for chunk_start in (0..n).step_by(BLOCK_ROWS) {
                let chunk_end = (chunk_start + BLOCK_ROWS).min(n);
                block.clear();
                for i in chunk_start..chunk_end {
                    let start = block.len();
                    block.extend_from_slice(data.row(i));
                    block[start + j] = col[col_idx[i]];
                }
                let refs: Vec<&[f64]> = block.chunks(d).collect();
                preds.extend_from_slice(&model.predict_batch(&refs));
            }
            drop_sum += baseline_score - score(data.task, &data.y, &preds)?;
        }
        importances[j] = drop_sum / cfg.n_repeats as f64;
    }
    Ok(PermutationImportance {
        names: data.names.clone(),
        importances,
        baseline_score,
    })
}

fn check_instance_shapes(x: &[f64], background: &Background) -> Result<usize, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input("empty instance".into()));
    }
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d} features, background has {}",
            background.n_features()
        )));
    }
    Ok(d)
}

/// The `d + 1` ablation coalitions: coalition `0` is the full feature set
/// (its value is the fused-path estimate of `f(x)`); coalition `k` drops
/// feature `k - 1`, so `phi_j = v(N) - v(N \ {j})`.
fn ablation_membership(k: usize, members: &mut [bool]) {
    for m in members.iter_mut() {
        *m = true;
    }
    if k > 0 {
        members[k - 1] = false;
    }
}

fn ablation_attribution(v: &[f64], base: f64, names: &[String]) -> Attribution {
    let full = v[0];
    Attribution {
        names: names.to_vec(),
        values: v[1..].iter().map(|&leave_out| full - leave_out).collect(),
        base_value: base,
        prediction: full,
        method: "permutation".into(),
    }
}

/// Per-instance permutation attribution (leave-one-covariate-out):
/// `phi_j = v(N) - v(N \ {j})`, where `v` marginalizes absent features over
/// `background`. Deterministic — no RNG. Unlike Shapley values the result
/// does not satisfy efficiency (`sum(phi)` need not equal
/// `prediction - base_value`), but it costs only `d + 1` coalitions.
///
/// `base_hint` short-circuits the background sweep for `base_value` when
/// the caller already holds `background.expected_output(model)`; passing
/// `None` recomputes it bit-identically.
pub fn instance_permutation(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
    base_hint: Option<f64>,
) -> Result<Attribution, XaiError> {
    let mut ws = CoalitionWorkspace::default();
    instance_permutation_with(model, x, background, names, base_hint, &mut ws)
}

/// [`instance_permutation`] against a caller-owned workspace (zero
/// steady-state allocation on the serve path).
pub fn instance_permutation_with(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
    base_hint: Option<f64>,
    ws: &mut CoalitionWorkspace,
) -> Result<Attribution, XaiError> {
    let d = check_instance_shapes(x, background)?;
    if names.len() != d {
        return Err(XaiError::Input(format!(
            "{} names for {d} features",
            names.len()
        )));
    }
    let base = base_hint.unwrap_or_else(|| background.expected_output(model));
    let mut v = Vec::with_capacity(d + 1);
    background.coalition_values_into(model, x, d + 1, ablation_membership, ws, &mut v);
    Ok(ablation_attribution(&v, base, names))
}

/// The plan half of [`instance_permutation`] for cross-request fusion:
/// the `d + 1` ablation composites are stacked into the shared block
/// without evaluating; [`instance_permutation_finish`] reduces them with
/// the exact arithmetic of the direct path.
#[derive(Debug, Clone)]
pub struct PermutationPlan {
    plan: CoalitionPlan,
    d: usize,
    base: f64,
}

impl PermutationPlan {
    /// Composite rows this plan occupies in its block.
    pub fn n_rows(&self) -> usize {
        self.plan.n_rows()
    }
}

/// Builds a [`PermutationPlan`] for `x`, appending its composite rows to
/// `block`. The model is only touched when `base_hint` is `None` (one
/// background sweep for the base value); guards mirror
/// [`instance_permutation_with`], except the names check which moves to
/// finish time.
pub fn instance_permutation_plan(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    base_hint: Option<f64>,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) -> Result<PermutationPlan, XaiError> {
    let d = check_instance_shapes(x, background)?;
    let base = base_hint.unwrap_or_else(|| background.expected_output(model));
    let plan = background.plan_coalitions(x, d + 1, ablation_membership, ws, block);
    Ok(PermutationPlan { plan, d, base })
}

/// Completes a [`PermutationPlan`] against its evaluated block — results
/// are bit-identical to [`instance_permutation_with`].
pub fn instance_permutation_finish(
    plan: &PermutationPlan,
    block: &FusedBlock,
    names: &[String],
) -> Result<Attribution, XaiError> {
    if names.len() != plan.d {
        return Err(XaiError::Input(format!(
            "{} names for {} features",
            names.len(),
            plan.d
        )));
    }
    let mut v = Vec::with_capacity(plan.d + 1);
    plan.plan.values_into(block, &mut v);
    Ok(ablation_attribution(&v, plan.base, names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::{FnModel, ProbaSurface};
    use nfv_ml::prelude::*;

    #[test]
    fn strong_feature_outranks_weak_and_noise() {
        let s = linear_gaussian(1_500, 3, 2, 0.1, 71).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(5, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let pi = permutation_importance(&model, &s.data, &PermutationConfig::default()).unwrap();
        assert!(pi.baseline_score > 0.99);
        let rank = pi.ranking();
        assert_eq!(rank[0], 0, "x0 has |w|=4");
        assert_eq!(rank[1], 1, "x1 has |w|=2");
        for noise in [3usize, 4] {
            assert!(
                pi.importances[noise].abs() < 0.01,
                "noise feature {noise}: {}",
                pi.importances[noise]
            );
        }
    }

    #[test]
    fn classification_uses_auc() {
        let s = interaction_xor(1_500, 1, 72).unwrap();
        let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
        let pi = permutation_importance(&ProbaSurface(&g), &s.data, &PermutationConfig::default())
            .unwrap();
        assert!(pi.baseline_score > 0.9, "auc={}", pi.baseline_score);
        let rank = pi.ranking();
        assert!(
            rank[0] < 2 && rank[1] < 2,
            "interacting pair on top: {rank:?}"
        );
        assert!(pi.importances[2] < pi.importances[rank[1]] * 0.3);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = friedman1(300, 6, 0.2, 73).unwrap();
        let t = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let a = permutation_importance(&t, &s.data, &PermutationConfig::default()).unwrap();
        let b = permutation_importance(&t, &s.data, &PermutationConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn instance_permutation_on_linear_model_recovers_coefficients() {
        // For f(x) = w·x with a mean-marginalizing background,
        // v(N) − v(N∖{j}) = w_j (x_j − E[x_j]) exactly.
        let s = linear_gaussian(400, 3, 0, 0.0, 75).unwrap();
        let coefs = s.coefficients.clone();
        let w = coefs.clone();
        let model = FnModel::new(3, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let bg = Background::from_dataset(&s.data, 32, 0).unwrap();
        let x = s.data.row(7);
        let attr = instance_permutation(&model, x, &bg, &s.data.names, None).unwrap();
        assert_eq!(attr.method, "permutation");
        // prediction is v(N): f(x) averaged over |B| identical composites,
        // equal to f(x) up to summation rounding.
        assert!((attr.prediction - model.predict(x)).abs() < 1e-9);
        for j in 0..3 {
            let mean_j: f64 = (0..bg.len()).map(|i| bg.row(i)[j]).sum::<f64>() / bg.len() as f64;
            let expect = w[j] * (x[j] - mean_j);
            assert!(
                (attr.values[j] - expect).abs() < 1e-9,
                "phi_{j} = {} want {expect}",
                attr.values[j]
            );
        }
    }

    #[test]
    fn planned_instance_permutation_is_bit_identical_to_direct() {
        let s = friedman1(200, 6, 0.2, 76).unwrap();
        let model = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
        let bg = Background::from_dataset(&s.data, 16, 1).unwrap();
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        for row in [0usize, 5, 11] {
            let x = s.data.row(row).to_vec();
            let direct =
                instance_permutation_with(&model, &x, &bg, &s.data.names, None, &mut ws).unwrap();
            block.clear();
            let plan =
                instance_permutation_plan(&model, &x, &bg, None, &mut ws, &mut block).unwrap();
            assert_eq!(plan.n_rows(), block.n_rows());
            block.evaluate(&model);
            let fused = instance_permutation_finish(&plan, &block, &s.data.names).unwrap();
            assert_eq!(direct.base_value.to_bits(), fused.base_value.to_bits());
            assert_eq!(direct.prediction.to_bits(), fused.prediction.to_bits());
            for (a, b) in direct.values.iter().zip(&fused.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn instance_permutation_guards() {
        let s = friedman1(100, 5, 0.2, 77).unwrap();
        let t = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let bg = Background::from_dataset(&s.data, 8, 0).unwrap();
        let names = s.data.names.clone();
        assert!(instance_permutation(&t, &[], &bg, &names, None).is_err());
        assert!(instance_permutation(&t, &[0.0; 4], &bg, &names, None).is_err());
        assert!(instance_permutation(&t, s.data.row(0), &bg, &names[..3], None).is_err());
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let plan =
            instance_permutation_plan(&t, s.data.row(0), &bg, None, &mut ws, &mut block).unwrap();
        block.evaluate(&t);
        assert!(instance_permutation_finish(&plan, &block, &names[..2]).is_err());
    }

    #[test]
    fn guards() {
        let s = friedman1(100, 5, 0.2, 74).unwrap();
        let t = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        assert!(permutation_importance(
            &t,
            &s.data,
            &PermutationConfig {
                n_repeats: 0,
                seed: 0
            }
        )
        .is_err());
        let tiny = s.data.take_rows(&[0]).unwrap();
        assert!(permutation_importance(&t, &tiny, &PermutationConfig::default()).is_err());
    }
}
