//! Partial dependence (PDP) and individual conditional expectation (ICE)
//! curves — the global "what does the model do as this feature moves"
//! view that complements local attributions.

use crate::XaiError;
use nfv_data::dataset::Dataset;
use nfv_ml::model::Regressor;

/// A PDP/ICE result over one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialDependence {
    /// The feature index examined.
    pub feature: usize,
    /// Grid of feature values.
    pub grid: Vec<f64>,
    /// Mean model output at each grid value (the PD curve).
    pub pd: Vec<f64>,
    /// Per-instance curves, `ice[i][g]` (empty unless requested).
    pub ice: Vec<Vec<f64>>,
}

impl PartialDependence {
    /// Total variation of the PD curve — a cheap global importance proxy.
    pub fn total_variation(&self) -> f64 {
        self.pd.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
    }
}

/// Computes PDP (and optionally ICE) of `model` for `feature` over `data`,
/// using a `grid_size`-point equi-quantile grid from the data column.
pub fn partial_dependence(
    model: &dyn Regressor,
    data: &Dataset,
    feature: usize,
    grid_size: usize,
    keep_ice: bool,
) -> Result<PartialDependence, XaiError> {
    if feature >= data.n_features() {
        return Err(XaiError::Input(format!(
            "feature {feature} out of {}",
            data.n_features()
        )));
    }
    if grid_size < 2 {
        return Err(XaiError::Input("grid_size must be at least 2".into()));
    }
    let col = data.column(feature);
    let mut grid: Vec<f64> = (0..grid_size)
        .map(|g| nfv_data::stats::quantile(&col, g as f64 / (grid_size - 1) as f64))
        .collect();
    grid.dedup();
    let n = data.n_rows();
    let mut pd = vec![0.0; grid.len()];
    let mut ice: Vec<Vec<f64>> = if keep_ice {
        vec![Vec::with_capacity(grid.len()); n]
    } else {
        Vec::new()
    };
    let mut row = vec![0.0; data.n_features()];
    for (g, &val) in grid.iter().enumerate() {
        let mut sum = 0.0;
        #[allow(clippy::needless_range_loop)] // i indexes both data rows and ice
        for i in 0..n {
            row.copy_from_slice(data.row(i));
            row[feature] = val;
            let p = model.predict(&row);
            sum += p;
            if keep_ice {
                ice[i].push(p);
            }
        }
        pd[g] = sum / n as f64;
    }
    Ok(PartialDependence {
        feature,
        grid,
        pd,
        ice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;

    #[test]
    fn pd_of_a_linear_effect_is_linear() {
        let s = friedman1(600, 6, 0.0, 81).unwrap();
        // True model uses 10·x3 linearly.
        let model = FnModel::new(6, |x: &[f64]| {
            10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3]
                + 5.0 * x[4]
        });
        let pd = partial_dependence(&model, &s.data, 3, 9, false).unwrap();
        // Slope between consecutive grid points ≈ 10.
        for w in pd.grid.windows(2).zip(pd.pd.windows(2)) {
            let (gs, ps) = w;
            if gs[1] - gs[0] > 1e-6 {
                let slope = (ps[1] - ps[0]) / (gs[1] - gs[0]);
                assert!((slope - 10.0).abs() < 0.5, "slope={slope}");
            }
        }
    }

    #[test]
    fn irrelevant_feature_has_flat_pd() {
        let s = friedman1(400, 7, 0.0, 82).unwrap();
        let model = FnModel::new(7, |x: &[f64]| 3.0 * x[0]);
        let pd_used = partial_dependence(&model, &s.data, 0, 7, false).unwrap();
        let pd_noise = partial_dependence(&model, &s.data, 6, 7, false).unwrap();
        assert!(pd_noise.total_variation() < 1e-9);
        assert!(pd_used.total_variation() > 1.0);
    }

    #[test]
    fn ice_curves_are_kept_when_requested() {
        let s = friedman1(50, 5, 0.0, 83).unwrap();
        let model = FnModel::new(5, |x: &[f64]| x[0] + x[1]);
        let pd = partial_dependence(&model, &s.data, 0, 5, true).unwrap();
        assert_eq!(pd.ice.len(), 50);
        assert!(pd.ice.iter().all(|c| c.len() == pd.grid.len()));
        // PD is the mean of ICE.
        for g in 0..pd.grid.len() {
            let mean: f64 = pd.ice.iter().map(|c| c[g]).sum::<f64>() / 50.0;
            assert!((mean - pd.pd[g]).abs() < 1e-9);
        }
        let no_ice = partial_dependence(&model, &s.data, 0, 5, false).unwrap();
        assert!(no_ice.ice.is_empty());
    }

    #[test]
    fn guards() {
        let s = friedman1(50, 5, 0.0, 84).unwrap();
        let model = FnModel::new(5, |x: &[f64]| x[0]);
        assert!(partial_dependence(&model, &s.data, 9, 5, false).is_err());
        assert!(partial_dependence(&model, &s.data, 0, 1, false).is_err());
    }
}
