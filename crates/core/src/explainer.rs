//! The unified explainer pipeline: every local attribution method behind
//! one object-safe trait, so callers — above all the serving layer — can
//! plan, fuse, and finish *any* method without per-method dispatch.
//!
//! ## The plan/finish contract
//!
//! A fusable explainer splits into two halves around one shared model
//! evaluation:
//!
//! 1. [`Explainer::plan`] materializes the method's composite rows into a
//!    shared [`FusedBlock`] **without evaluating the model on them** and
//!    returns a boxed [`ExplainPlan`] remembering its row range. Several
//!    requests' plans — from *different methods* — stack into one block.
//! 2. [`FusedBlock::evaluate`] runs a single `predict_block` call over the
//!    whole arena.
//! 3. [`ExplainPlan::finish`] reduces the plan's slice of the shared
//!    prediction buffer with exactly the arithmetic of the direct path, so
//!    fused results are **bit-identical** to unfused ones (enforced by the
//!    `fused_bit_identity` property tests).
//!
//! Non-fusable methods (TreeSHAP walks tree structure, LIME perturbs in
//! its own sample space; PDP/counterfactual produce non-attribution
//! artifacts and stay free functions) implement only
//! [`Explainer::direct`] and report [`Explainer::fusable`]` == false`; the
//! scheduler routes them around the fusion block.
//!
//! [`Explainer::direct`] has a default implementation (plan → evaluate →
//! finish against a private block); the concrete explainers override it
//! with their legacy single-request entry points, which avoid the block
//! detour and are proven bit-identical to the planned path.

use crate::background::{Background, CoalitionWorkspace, FusedBlock};
use crate::explanation::Attribution;
use crate::grouped::{
    grouped_shapley, grouped_shapley_finish, grouped_shapley_plan, FeatureGroups, GroupedShapPlan,
};
use crate::lime::{lime, LimeConfig};
use crate::permutation::{
    instance_permutation_finish, instance_permutation_plan, instance_permutation_with,
    PermutationPlan,
};
use crate::shapley::{
    exact_shapley, exact_shapley_finish, exact_shapley_plan, kernel_shap_finish, kernel_shap_plan,
    kernel_shap_with, sampling_shapley, sampling_shapley_finish, sampling_shapley_plan,
    ExactShapPlan, KernelShapConfig, KernelShapPlan, SamplingConfig, SamplingPlan,
};
use crate::XaiError;
use nfv_ml::model::Regressor;

/// Everything an [`Explainer`] needs to explain one instance. Borrowed per
/// request; the per-method budgets live in the explainer itself.
pub struct ExplainContext<'a> {
    /// The model to explain (callers serving tree ensembles pass the
    /// packed SoA engine here — it is bit-identical to the source model).
    pub model: &'a dyn Regressor,
    /// The instance to explain.
    pub x: &'a [f64],
    /// The background distribution realizing "feature absent".
    pub background: &'a Background,
    /// Feature names for the resulting [`Attribution`].
    pub names: &'a [String],
    /// Cached `background.expected_output(model)`, when the caller holds
    /// one. Must be bit-equal to a recompute; explainers that need the
    /// base value use it to skip a full background sweep.
    pub base_hint: Option<f64>,
    /// Seed for stochastic methods (deterministic methods ignore it).
    pub seed: u64,
}

impl ExplainContext<'_> {
    /// The base value: the hint when present, else a background sweep.
    /// Bit-identical either way (the hint contract requires it).
    pub fn base_value(&self) -> f64 {
        self.base_hint
            .unwrap_or_else(|| self.background.expected_output(self.model))
    }
}

/// The deferred half of a planned explanation: knows its row range inside
/// the shared block and how to reduce those predictions to an
/// [`Attribution`] with the direct path's exact arithmetic.
pub trait ExplainPlan: Send {
    /// Composite rows this plan occupies in its block (0 is legal — e.g. a
    /// one-feature KernelSHAP plan resolves fully at finish time).
    fn n_rows(&self) -> usize;

    /// Completes the plan against its evaluated block. `names` labels the
    /// model's features; plans that attribute to coarser units (grouped
    /// Shapley reports per-group values) ignore it.
    fn finish(&self, block: &FusedBlock, names: &[String]) -> Result<Attribution, XaiError>;
}

impl ExplainPlan for KernelShapPlan {
    fn n_rows(&self) -> usize {
        KernelShapPlan::n_rows(self)
    }
    fn finish(&self, block: &FusedBlock, names: &[String]) -> Result<Attribution, XaiError> {
        kernel_shap_finish(self, block, names)
    }
}

impl ExplainPlan for SamplingPlan {
    fn n_rows(&self) -> usize {
        SamplingPlan::n_rows(self)
    }
    fn finish(&self, block: &FusedBlock, names: &[String]) -> Result<Attribution, XaiError> {
        sampling_shapley_finish(self, block, names)
    }
}

impl ExplainPlan for ExactShapPlan {
    fn n_rows(&self) -> usize {
        ExactShapPlan::n_rows(self)
    }
    fn finish(&self, block: &FusedBlock, names: &[String]) -> Result<Attribution, XaiError> {
        exact_shapley_finish(self, block, names)
    }
}

impl ExplainPlan for GroupedShapPlan {
    fn n_rows(&self) -> usize {
        GroupedShapPlan::n_rows(self)
    }
    fn finish(&self, block: &FusedBlock, _names: &[String]) -> Result<Attribution, XaiError> {
        // Grouped attributions are labeled by the plan's group names, not
        // the model's feature names.
        grouped_shapley_finish(self, block)
    }
}

impl ExplainPlan for PermutationPlan {
    fn n_rows(&self) -> usize {
        PermutationPlan::n_rows(self)
    }
    fn finish(&self, block: &FusedBlock, names: &[String]) -> Result<Attribution, XaiError> {
        instance_permutation_finish(self, block, names)
    }
}

/// One attribution method behind a uniform, object-safe interface.
///
/// Implementations are cheap value objects carrying only the method's
/// budget/configuration; all per-request state arrives via
/// [`ExplainContext`]. `Send + Sync` so a registry can hand them across
/// worker threads.
pub trait Explainer: Send + Sync {
    /// Short method tag (matches the `method` field of the produced
    /// [`Attribution`] family, e.g. `"kernel-shap"`).
    fn tag(&self) -> &'static str;

    /// Whether this method can plan into a shared [`FusedBlock`]. The
    /// scheduler only calls [`Explainer::plan`] when this is `true`.
    fn fusable(&self) -> bool {
        true
    }

    /// Reserves this request's composite rows in `block` and returns the
    /// deferred finish half. Non-fusable methods return an error.
    fn plan(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError>;

    /// Explains one instance end to end, without cross-request fusion.
    ///
    /// The default drives the plan/finish pipeline against a private
    /// block; concrete fusable explainers override it with their direct
    /// entry points (same arithmetic, no block detour), and non-fusable
    /// methods must override it.
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        let mut block = FusedBlock::default();
        let plan = self.plan(ctx, ws, &mut block)?;
        block.evaluate(ctx.model);
        plan.finish(&block, ctx.names)
    }
}

/// KernelSHAP behind the [`Explainer`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelShapExplainer {
    /// Coalition evaluation budget.
    pub n_coalitions: usize,
    /// Ridge regularization of the weighted regression.
    pub ridge: f64,
}

impl KernelShapExplainer {
    fn config(&self, seed: u64) -> KernelShapConfig {
        KernelShapConfig {
            n_coalitions: self.n_coalitions,
            ridge: self.ridge,
            seed,
        }
    }
}

impl Explainer for KernelShapExplainer {
    fn tag(&self) -> &'static str {
        "kernel-shap"
    }
    fn plan(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        kernel_shap_plan(
            ctx.model,
            ctx.x,
            ctx.background,
            &self.config(ctx.seed),
            ctx.base_hint,
            ws,
            block,
        )
        .map(|p| Box::new(p) as Box<dyn ExplainPlan>)
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        kernel_shap_with(
            ctx.model,
            ctx.x,
            ctx.background,
            ctx.names,
            &self.config(ctx.seed),
            ws,
        )
    }
}

/// Permutation-sampling Shapley behind the [`Explainer`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingShapleyExplainer {
    /// Permutations to draw.
    pub n_permutations: usize,
    /// Pair each permutation with its reverse.
    pub antithetic: bool,
}

impl SamplingShapleyExplainer {
    fn config(&self, seed: u64) -> SamplingConfig {
        SamplingConfig {
            n_permutations: self.n_permutations,
            antithetic: self.antithetic,
            seed,
        }
    }
}

impl Explainer for SamplingShapleyExplainer {
    fn tag(&self) -> &'static str {
        "sampling-shapley"
    }
    fn plan(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        sampling_shapley_plan(
            ctx.model,
            ctx.x,
            ctx.background,
            &self.config(ctx.seed),
            ctx.base_hint,
            block,
        )
        .map(|p| Box::new(p) as Box<dyn ExplainPlan>)
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        sampling_shapley(
            ctx.model,
            ctx.x,
            ctx.background,
            ctx.names,
            &self.config(ctx.seed),
        )
    }
}

/// Exact (full-enumeration) Shapley behind the [`Explainer`] trait.
/// Deterministic — the context seed is ignored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactShapleyExplainer;

impl Explainer for ExactShapleyExplainer {
    fn tag(&self) -> &'static str {
        "exact-shapley"
    }
    fn plan(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        exact_shapley_plan(ctx.x, ctx.background, ws, block)
            .map(|p| Box::new(p) as Box<dyn ExplainPlan>)
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        exact_shapley(ctx.model, ctx.x, ctx.background, ctx.names)
    }
}

/// Grouped (Owen-style) Shapley behind the [`Explainer`] trait. Carries
/// its feature grouping; the produced attribution is per-*group*, so it
/// ignores the context's feature names. Deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedShapleyExplainer {
    /// The feature partition to attribute over.
    pub groups: FeatureGroups,
}

impl Explainer for GroupedShapleyExplainer {
    fn tag(&self) -> &'static str {
        "grouped-shapley"
    }
    fn plan(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        grouped_shapley_plan(ctx.x, ctx.background, &self.groups, ws, block)
            .map(|p| Box::new(p) as Box<dyn ExplainPlan>)
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        grouped_shapley(ctx.model, ctx.x, ctx.background, &self.groups)
    }
}

/// Per-instance permutation (single-feature ablation) behind the
/// [`Explainer`] trait. Deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PermutationExplainer;

impl Explainer for PermutationExplainer {
    fn tag(&self) -> &'static str {
        "permutation"
    }
    fn plan(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        instance_permutation_plan(ctx.model, ctx.x, ctx.background, ctx.base_hint, ws, block)
            .map(|p| Box::new(p) as Box<dyn ExplainPlan>)
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        instance_permutation_with(
            ctx.model,
            ctx.x,
            ctx.background,
            ctx.names,
            ctx.base_hint,
            ws,
        )
    }
}

/// LIME behind the [`Explainer`] trait. LIME perturbs in its own Gaussian
/// sample space rather than through coalition composites, so it does not
/// fuse — only [`Explainer::direct`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimeExplainer {
    /// Perturbation-sample budget.
    pub n_samples: usize,
}

impl Explainer for LimeExplainer {
    fn tag(&self) -> &'static str {
        "lime"
    }
    fn fusable(&self) -> bool {
        false
    }
    fn plan(
        &self,
        _ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
        _block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        Err(XaiError::Input(
            "lime does not plan into coalition blocks; use direct()".into(),
        ))
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        let cfg = LimeConfig {
            n_samples: self.n_samples,
            seed: ctx.seed,
            ..LimeConfig::default()
        };
        lime(ctx.model, ctx.x, ctx.background, ctx.names, &cfg).map(|e| e.attribution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::prelude::*;

    struct Fixture {
        model: Gbdt,
        names: Vec<String>,
        background: Background,
        x: Vec<f64>,
        base: f64,
    }

    fn fixture() -> Fixture {
        let s = friedman1(150, 5, 0.1, 3).unwrap();
        let model = Gbdt::fit(
            &s.data,
            &GbdtParams {
                n_rounds: 8,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let background = Background::from_dataset(&s.data, 8, 1).unwrap();
        let base = background.expected_output(&model);
        Fixture {
            x: s.data.row(3).to_vec(),
            names: s.data.names.clone(),
            model,
            background,
            base,
        }
    }

    fn explainers() -> Vec<Box<dyn Explainer>> {
        vec![
            Box::new(KernelShapExplainer {
                n_coalitions: 24,
                ridge: 0.0,
            }),
            Box::new(SamplingShapleyExplainer {
                n_permutations: 6,
                antithetic: true,
            }),
            Box::new(ExactShapleyExplainer),
            Box::new(GroupedShapleyExplainer {
                groups: FeatureGroups::new(vec!["a".into(), "b".into()], vec![0, 0, 0, 1, 1])
                    .unwrap(),
            }),
            Box::new(PermutationExplainer),
            Box::new(LimeExplainer { n_samples: 64 }),
        ]
    }

    // Exercises the trait's default `direct` via a wrapper that delegates
    // `plan` but does NOT override `direct`.
    struct DefaultDirect(KernelShapExplainer);
    impl Explainer for DefaultDirect {
        fn tag(&self) -> &'static str {
            "kernel-shap-default"
        }
        fn plan(
            &self,
            ctx: &ExplainContext<'_>,
            ws: &mut CoalitionWorkspace,
            block: &mut FusedBlock,
        ) -> Result<Box<dyn ExplainPlan>, XaiError> {
            self.0.plan(ctx, ws, block)
        }
    }

    fn ctx<'a>(f: &'a Fixture) -> ExplainContext<'a> {
        ExplainContext {
            model: &f.model,
            x: &f.x,
            background: &f.background,
            names: &f.names,
            base_hint: Some(f.base),
            seed: 42,
        }
    }

    #[test]
    fn fused_trait_dispatch_is_bit_identical_to_direct() {
        let f = fixture();
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let all = explainers();
        let fusable: Vec<&Box<dyn Explainer>> = all.iter().filter(|e| e.fusable()).collect();
        assert_eq!(fusable.len(), 5, "five fusable Shapley-family methods");

        // All five methods plan into ONE shared block, one evaluation.
        let plans: Vec<Box<dyn ExplainPlan>> = fusable
            .iter()
            .map(|e| e.plan(&ctx(&f), &mut ws, &mut block).unwrap())
            .collect();
        let total: usize = plans.iter().map(|p| p.n_rows()).sum();
        assert_eq!(block.n_rows(), total, "plans account for every row");
        block.evaluate(&f.model);

        for (e, p) in fusable.iter().zip(&plans) {
            let fused = p.finish(&block, &f.names).unwrap();
            let direct = e.direct(&ctx(&f), &mut ws).unwrap();
            assert_eq!(fused.method, direct.method, "{}", e.tag());
            assert_eq!(fused.base_value.to_bits(), direct.base_value.to_bits());
            assert_eq!(fused.prediction.to_bits(), direct.prediction.to_bits());
            assert_eq!(fused.values.len(), direct.values.len());
            for (a, b) in fused.values.iter().zip(&direct.values) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: fusion changed a bit",
                    e.tag()
                );
            }
        }
    }

    #[test]
    fn default_direct_matches_overridden_direct_bitwise() {
        let f = fixture();
        let mut ws = CoalitionWorkspace::default();
        let inner = KernelShapExplainer {
            n_coalitions: 24,
            ridge: 0.0,
        };
        let via_default = DefaultDirect(inner).direct(&ctx(&f), &mut ws).unwrap();
        let via_override = inner.direct(&ctx(&f), &mut ws).unwrap();
        for (a, b) in via_default.values.iter().zip(&via_override.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_fusable_methods_refuse_to_plan_but_serve_directly() {
        let f = fixture();
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let lime = LimeExplainer { n_samples: 64 };
        assert!(!lime.fusable());
        assert!(lime.plan(&ctx(&f), &mut ws, &mut block).is_err());
        assert!(block.is_empty(), "failed plan must not leave rows behind");
        let attr = lime.direct(&ctx(&f), &mut ws).unwrap();
        assert_eq!(attr.method, "lime");
        assert_eq!(attr.len(), 5);
    }

    #[test]
    fn grouped_plan_reports_group_names_not_feature_names() {
        let f = fixture();
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let e = GroupedShapleyExplainer {
            groups: FeatureGroups::new(vec!["a".into(), "b".into()], vec![0, 0, 0, 1, 1]).unwrap(),
        };
        let plan = e.plan(&ctx(&f), &mut ws, &mut block).unwrap();
        block.evaluate(&f.model);
        let attr = plan.finish(&block, &f.names).unwrap();
        assert_eq!(attr.names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn context_base_value_prefers_the_hint() {
        let f = fixture();
        let c = ctx(&f);
        assert_eq!(c.base_value().to_bits(), f.base.to_bits());
        let no_hint = ExplainContext {
            base_hint: None,
            ..ctx(&f)
        };
        assert_eq!(no_hint.base_value().to_bits(), f.base.to_bits());
    }
}
