//! Operator-facing explanation reports: rendering attributions into the
//! NFV-operations vocabulary, the artifact a NOC engineer actually reads.

use crate::explanation::Attribution;
use serde::{Deserialize, Serialize};

/// What kind of prediction is being explained (sets the report phrasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionKind {
    /// Probability of an SLA violation in the next window.
    SlaViolationRisk,
    /// Predicted p95 latency (log-ms scale).
    LatencyP95,
    /// A scaling decision score.
    ScalingScore,
}

/// A rendered operator report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorReport {
    /// One-line headline.
    pub headline: String,
    /// Per-driver lines, most influential first.
    pub drivers: Vec<String>,
    /// Full rendered text.
    pub text: String,
}

/// Humanizes a telemetry feature name like `"1_ids_cpu"` into
/// "CPU utilization of the IDS (stage 1)".
pub fn humanize_feature(name: &str) -> String {
    let parts: Vec<&str> = name.split('_').collect();
    if parts.len() == 3 {
        if let Ok(stage) = parts[0].parse::<usize>() {
            let vnf = parts[1].to_uppercase();
            let metric = match parts[2] {
                "cpu" => "CPU utilization",
                "queue" => "queue depth",
                "drop" => "local drop rate",
                "interf" => "co-location interference",
                other => other,
            };
            return format!("{metric} of the {vnf} (stage {stage})");
        }
    }
    match name {
        "offered_kpps" => "offered load (kpps)".to_string(),
        "payload_bytes" => "mean payload size".to_string(),
        other => other.replace('_', " "),
    }
}

/// Renders an attribution as an operator report, listing the `top_k`
/// drivers with their share of the total attribution mass.
pub fn render_report(attr: &Attribution, kind: PredictionKind, top_k: usize) -> OperatorReport {
    let what = match kind {
        PredictionKind::SlaViolationRisk => "SLA-violation risk",
        PredictionKind::LatencyP95 => "predicted p95 latency",
        PredictionKind::ScalingScore => "scale-out score",
    };
    let direction = if attr.prediction >= attr.base_value {
        "above"
    } else {
        "below"
    };
    let headline = format!(
        "{what} is {:.3} ({direction} the fleet baseline of {:.3})",
        attr.prediction, attr.base_value
    );
    let total_mass: f64 = attr.values.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
    let mut drivers = Vec::new();
    for i in attr.order_by_magnitude().into_iter().take(top_k) {
        let v = attr.values[i];
        if v == 0.0 {
            continue;
        }
        let arrow = if v > 0.0 { "raises" } else { "lowers" };
        let share = 100.0 * v.abs() / total_mass;
        drivers.push(format!(
            "{} {arrow} the prediction by {:+.4} ({share:.0}% of attribution mass)",
            humanize_feature(&attr.names[i]),
            v
        ));
    }
    let mut text = String::new();
    text.push_str(&headline);
    text.push('\n');
    if drivers.is_empty() {
        text.push_str("No feature contributes measurably; the prediction sits at the baseline.\n");
    } else {
        text.push_str("Top drivers:\n");
        for d in &drivers {
            text.push_str("  - ");
            text.push_str(d);
            text.push('\n');
        }
    }
    text.push_str(&format!(
        "(method: {}, residual: {:+.2e})\n",
        attr.method,
        attr.efficiency_gap()
    ));
    OperatorReport {
        headline,
        drivers,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr() -> Attribution {
        Attribution {
            names: vec![
                "offered_kpps".into(),
                "1_ids_cpu".into(),
                "2_lb_queue".into(),
                "payload_bytes".into(),
            ],
            values: vec![0.05, 0.30, -0.10, 0.0],
            base_value: 0.10,
            prediction: 0.35,
            method: "tree-shap".into(),
        }
    }

    #[test]
    fn humanize_covers_schema_names() {
        assert_eq!(
            humanize_feature("1_ids_cpu"),
            "CPU utilization of the IDS (stage 1)"
        );
        assert_eq!(
            humanize_feature("0_fw_drop"),
            "local drop rate of the FW (stage 0)"
        );
        assert_eq!(humanize_feature("offered_kpps"), "offered load (kpps)");
        assert_eq!(humanize_feature("some_other_thing"), "some other thing");
    }

    #[test]
    fn report_orders_drivers_and_skips_zeros() {
        let r = render_report(&attr(), PredictionKind::SlaViolationRisk, 4);
        assert!(r.headline.contains("SLA-violation risk"));
        assert!(r.headline.contains("above"));
        assert_eq!(r.drivers.len(), 3, "zero-value feature skipped");
        assert!(r.drivers[0].contains("IDS"), "{:?}", r.drivers);
        assert!(r.drivers[0].contains("raises"));
        assert!(r.drivers[1].contains("lowers") || r.drivers[2].contains("lowers"));
        assert!(r.text.contains("tree-shap"));
    }

    #[test]
    fn below_baseline_phrasing() {
        let mut a = attr();
        a.prediction = 0.01;
        a.values = vec![-0.05, -0.04, 0.0, 0.0];
        let r = render_report(&a, PredictionKind::LatencyP95, 2);
        assert!(r.headline.contains("below"));
        assert!(r.headline.contains("p95"));
    }

    #[test]
    fn all_zero_attribution_degrades_gracefully() {
        let a = Attribution {
            names: vec!["a".into()],
            values: vec![0.0],
            base_value: 0.5,
            prediction: 0.5,
            method: "t".into(),
        };
        let r = render_report(&a, PredictionKind::ScalingScore, 3);
        assert!(r.drivers.is_empty());
        assert!(r.text.contains("baseline"));
    }
}
