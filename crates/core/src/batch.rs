//! Batch explanation across threads: explaining a whole test set is
//! embarrassingly parallel, and the global-importance figures need hundreds
//! of local explanations.

use crate::explanation::Attribution;
use crate::XaiError;

/// Explains every instance with `explain`, fanning out across `threads`
/// scoped workers. Result order matches input order; the first error (by
/// instance index) wins. `explain` must be `Sync` — all provided explainers
/// are, since models are `Send + Sync` and configs are value types.
pub fn explain_batch<F>(
    instances: &[Vec<f64>],
    threads: usize,
    explain: F,
) -> Result<Vec<Attribution>, XaiError>
where
    F: Fn(&[f64]) -> Result<Attribution, XaiError> + Sync,
{
    if instances.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(instances.len());
    if threads == 1 {
        return instances.iter().map(|x| explain(x)).collect();
    }
    let mut slots: Vec<Option<Result<Attribution, XaiError>>> =
        (0..instances.len()).map(|_| None).collect();
    let chunk = instances.len().div_ceil(threads);
    crossbeam::scope(|s| {
        for (w, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let explain = &explain;
            s.spawn(move |_| {
                for (off, cell) in out_chunk.iter_mut().enumerate() {
                    let idx = w * chunk + off;
                    *cell = Some(explain(&instances[idx]));
                }
            });
        }
    })
    .map_err(|_| XaiError::Numeric("batch explanation thread panicked".into()))?;
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Like [`explain_batch`], but hands each instance its own RNG seed.
///
/// Serving stacks derive per-request seeds from request *content* rather
/// than arrival order, which keeps stochastic explainers (KernelSHAP,
/// LIME) bit-for-bit reproducible no matter how requests are batched or
/// interleaved. `seeds` must be parallel to `instances`.
pub fn explain_batch_seeded<F>(
    instances: &[Vec<f64>],
    seeds: &[u64],
    threads: usize,
    explain: F,
) -> Result<Vec<Attribution>, XaiError>
where
    F: Fn(&[f64], u64) -> Result<Attribution, XaiError> + Sync,
{
    explain_batch_seeded_ws(
        instances,
        seeds,
        threads,
        || (),
        |x, seed, _ws| explain(x, seed),
    )
}

/// Like [`explain_batch_seeded`], but each worker thread also gets its own
/// scratch workspace from `make_ws`, handed mutably to every `explain` call
/// that thread runs.
///
/// This is how the batched coalition evaluators amortize allocations: pass
/// `CoalitionWorkspace::default` as `make_ws` and route each call through
/// `kernel_shap_with` (or any `coalition_values_into` user). The workspace
/// only caches buffers — results stay bit-identical regardless of thread
/// count or batch composition, because each instance's RNG stream is fully
/// determined by its seed.
pub fn explain_batch_seeded_ws<W, M, F>(
    instances: &[Vec<f64>],
    seeds: &[u64],
    threads: usize,
    make_ws: M,
    explain: F,
) -> Result<Vec<Attribution>, XaiError>
where
    M: Fn() -> W + Sync,
    F: Fn(&[f64], u64, &mut W) -> Result<Attribution, XaiError> + Sync,
{
    if instances.len() != seeds.len() {
        return Err(XaiError::Input(format!(
            "instances ({}) and seeds ({}) must be parallel",
            instances.len(),
            seeds.len()
        )));
    }
    if instances.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(instances.len());
    if threads == 1 {
        let mut ws = make_ws();
        return instances
            .iter()
            .zip(seeds)
            .map(|(x, &s)| explain(x, s, &mut ws))
            .collect();
    }
    let mut slots: Vec<Option<Result<Attribution, XaiError>>> =
        (0..instances.len()).map(|_| None).collect();
    let chunk = instances.len().div_ceil(threads);
    crossbeam::scope(|s| {
        for (w, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let explain = &explain;
            let make_ws = &make_ws;
            s.spawn(move |_| {
                let mut ws = make_ws();
                for (off, cell) in out_chunk.iter_mut().enumerate() {
                    let idx = w * chunk + off;
                    *cell = Some(explain(&instances[idx], seeds[idx], &mut ws));
                }
            });
        }
    })
    .map_err(|_| XaiError::Numeric("batch explanation thread panicked".into()))?;
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::Background;
    use crate::shapley::tree::tree_shap;
    use nfv_data::prelude::*;
    use nfv_ml::prelude::*;

    #[test]
    fn batch_matches_serial_and_keeps_order() {
        let s = friedman1(200, 6, 0.2, 101).unwrap();
        let tree = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let names: Vec<String> = s.data.names.clone();
        let instances: Vec<Vec<f64>> = (0..40).map(|i| s.data.row(i).to_vec()).collect();
        let serial = explain_batch(&instances, 1, |x| tree_shap(&tree, x, &names)).unwrap();
        let parallel = explain_batch(&instances, 4, |x| tree_shap(&tree, x, &names)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 40);
        // Order preserved: prediction matches the instance's own output.
        for (a, x) in serial.iter().zip(&instances) {
            assert!((a.prediction - tree.output(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_propagate() {
        let _ = Background::from_rows(vec![vec![0.0]]).unwrap();
        let instances = vec![vec![1.0], vec![2.0]];
        let res = explain_batch(&instances, 2, |_| Err(XaiError::Numeric("nope".into())));
        assert!(res.is_err());
    }

    #[test]
    fn seeded_batch_is_order_and_thread_invariant() {
        use crate::shapley::kernel::{kernel_shap, KernelShapConfig};
        let s = friedman1(80, 5, 0.1, 7).unwrap();
        let model = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let bg = Background::from_dataset(&s.data, 12, 3).unwrap();
        let names = s.data.names.clone();
        let instances: Vec<Vec<f64>> = (0..6).map(|i| s.data.row(i).to_vec()).collect();
        let seeds: Vec<u64> = (0..6).map(|i| 1000 + i as u64).collect();
        let run = |threads| {
            explain_batch_seeded(&instances, &seeds, threads, |x, seed| {
                let cfg = KernelShapConfig {
                    seed,
                    ..KernelShapConfig::for_features(x.len())
                };
                kernel_shap(&model, x, &bg, &names, &cfg)
            })
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(3);
        assert_eq!(serial, parallel);
        // Each instance's result depends only on (instance, seed): explaining
        // one alone reproduces its batched attribution bit-for-bit.
        let alone = explain_batch_seeded(&instances[2..3], &seeds[2..3], 1, |x, seed| {
            let cfg = KernelShapConfig {
                seed,
                ..KernelShapConfig::for_features(x.len())
            };
            kernel_shap(&model, x, &bg, &names, &cfg)
        })
        .unwrap();
        assert_eq!(alone[0], serial[2]);
    }

    #[test]
    fn workspace_batch_matches_plain_seeded_batch() {
        use crate::background::CoalitionWorkspace;
        use crate::shapley::kernel::{kernel_shap, kernel_shap_with, KernelShapConfig};
        let s = friedman1(90, 6, 0.15, 17).unwrap();
        let model = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let bg = Background::from_dataset(&s.data, 10, 1).unwrap();
        let names = s.data.names.clone();
        let instances: Vec<Vec<f64>> = (0..9).map(|i| s.data.row(i).to_vec()).collect();
        let seeds: Vec<u64> = (0..9).map(|i| 7 * i as u64 + 3).collect();
        let cfg_for = |x: &[f64], seed| KernelShapConfig {
            seed,
            ..KernelShapConfig::for_features(x.len())
        };
        let plain = explain_batch_seeded(&instances, &seeds, 2, |x, seed| {
            kernel_shap(&model, x, &bg, &names, &cfg_for(x, seed))
        })
        .unwrap();
        // Per-thread workspaces must not perturb results, at any thread count.
        for threads in [1usize, 2, 4] {
            let ws_run = explain_batch_seeded_ws(
                &instances,
                &seeds,
                threads,
                CoalitionWorkspace::default,
                |x, seed, ws| kernel_shap_with(&model, x, &bg, &names, &cfg_for(x, seed), ws),
            )
            .unwrap();
            assert_eq!(plain, ws_run, "threads={threads}");
        }
    }

    #[test]
    fn seeded_batch_rejects_mismatched_seeds() {
        let out = explain_batch_seeded(&[vec![1.0]], &[1, 2], 1, |_, _| {
            unreachable!("shape error fires first")
        });
        assert!(matches!(out, Err(XaiError::Input(_))));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = explain_batch(&[], 4, |_| unreachable!("no instances to explain"));
        assert_eq!(out.unwrap().len(), 0);
    }
}
