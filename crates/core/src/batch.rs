//! Batch explanation across threads: explaining a whole test set is
//! embarrassingly parallel, and the global-importance figures need hundreds
//! of local explanations.

use crate::explanation::Attribution;
use crate::XaiError;

/// Explains every instance with `explain`, fanning out across `threads`
/// scoped workers. Result order matches input order; the first error (by
/// instance index) wins. `explain` must be `Sync` — all provided explainers
/// are, since models are `Send + Sync` and configs are value types.
pub fn explain_batch<F>(
    instances: &[Vec<f64>],
    threads: usize,
    explain: F,
) -> Result<Vec<Attribution>, XaiError>
where
    F: Fn(&[f64]) -> Result<Attribution, XaiError> + Sync,
{
    if instances.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(instances.len());
    if threads == 1 {
        return instances.iter().map(|x| explain(x)).collect();
    }
    let mut slots: Vec<Option<Result<Attribution, XaiError>>> =
        (0..instances.len()).map(|_| None).collect();
    let chunk = instances.len().div_ceil(threads);
    crossbeam::scope(|s| {
        for (w, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let explain = &explain;
            s.spawn(move |_| {
                for (off, cell) in out_chunk.iter_mut().enumerate() {
                    let idx = w * chunk + off;
                    *cell = Some(explain(&instances[idx]));
                }
            });
        }
    })
    .map_err(|_| XaiError::Numeric("batch explanation thread panicked".into()))?;
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::Background;
    use crate::shapley::tree::tree_shap;
    use nfv_data::prelude::*;
    use nfv_ml::prelude::*;

    #[test]
    fn batch_matches_serial_and_keeps_order() {
        let s = friedman1(200, 6, 0.2, 101).unwrap();
        let tree = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        let names: Vec<String> = s.data.names.clone();
        let instances: Vec<Vec<f64>> = (0..40).map(|i| s.data.row(i).to_vec()).collect();
        let serial = explain_batch(&instances, 1, |x| tree_shap(&tree, x, &names)).unwrap();
        let parallel = explain_batch(&instances, 4, |x| tree_shap(&tree, x, &names)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 40);
        // Order preserved: prediction matches the instance's own output.
        for (a, x) in serial.iter().zip(&instances) {
            assert!((a.prediction - tree.output(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_propagate() {
        let _ = Background::from_rows(vec![vec![0.0]]).unwrap();
        let instances = vec![vec![1.0], vec![2.0]];
        let res = explain_batch(&instances, 2, |_| {
            Err(XaiError::Numeric("nope".into()))
        });
        assert!(res.is_err());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out = explain_batch(&[], 4, |_| {
            unreachable!("no instances to explain")
        });
        assert_eq!(out.unwrap().len(), 0);
    }
}
