//! # nfv-xai — explainable AI for NFV management models
//!
//! The primary contribution of the reproduced paper: a from-scratch
//! explainability toolkit for the machine-learning models that drive NFV
//! management (SLA-violation prediction, latency forecasting, auto-scaling),
//! plus the evaluation machinery to judge explanation quality.
//!
//! ## Explanation methods
//!
//! | Method | Module | Scope | Cost |
//! |---|---|---|---|
//! | Exact Shapley | [`shapley::exact`] | local | `O(2^d · |B|)` model calls |
//! | Sampling Shapley | [`shapley::sampling`] | local | `O(P · d)` model calls |
//! | KernelSHAP | [`shapley::kernel`] | local | `O(K · |B|)` model calls |
//! | TreeSHAP | [`shapley::tree`] | local | `O(T · L · D²)` — no model calls |
//! | LIME | [`lime`] | local | `O(N)` model calls |
//! | Permutation importance | [`permutation`] | global | `O(d · R · n)` model calls |
//! | PDP / ICE | [`pdp`] | global | `O(G · n)` model calls |
//! | Surrogate tree | [`surrogate`] | global | one tree fit |
//! | Counterfactuals | [`counterfactual`] | local | search, `O(restarts · sweeps · d)` calls |
//! | Grouped (Owen) Shapley | [`grouped`] | local | `O(2^G · |B|)` calls, G = #groups |
//! | Shapley interactions | [`interactions`] | local | `O(2^d · |B|)` calls |
//! | SAGE | [`sage`] | global | `O(P · R · d · |B|)` calls |
//!
//! The local attribution methods are additionally unified behind the
//! object-safe [`explainer::Explainer`] trait: fusable methods (the
//! Shapley family and per-instance permutation) split into a *plan* half
//! that stacks composite rows into a shared [`background::FusedBlock`]
//! and a *finish* half that reduces the evaluated block bit-identically
//! to the direct path, which is what lets a serving layer batch many
//! requests — across methods — into single model evaluations.
//!
//! ## Evaluation
//!
//! [`eval::fidelity`] (deletion/insertion AUC), [`eval::rank`] (cross-method
//! agreement), [`mod@eval::stability`] (local Lipschitz), and [`eval::axioms`]
//! (efficiency / symmetry / dummy / linearity batteries).
//!
//! ## Quick example
//!
//! ```
//! use nfv_data::prelude::*;
//! use nfv_ml::prelude::*;
//! use nfv_xai::prelude::*;
//!
//! // An SLA-violation-style synthetic task with known causal drivers.
//! let synth = clever_hans_nfv(600, 0.0, 7).unwrap();
//! let model = Gbdt::fit(&synth.data, &GbdtParams { n_rounds: 30, ..Default::default() }, 0).unwrap();
//! let x = synth.data.row(0).to_vec();
//! let attr = gbdt_shap(&model, &x, &synth.data.names).unwrap();
//! // Additivity (efficiency) holds exactly for TreeSHAP:
//! assert!(attr.efficiency_gap().abs() < 1e-8);
//! println!("{}", render_report(&attr, PredictionKind::SlaViolationRisk, 3).text);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod batch;
pub mod counterfactual;
pub mod eval;
pub mod explainer;
pub mod explanation;
pub mod grouped;
pub mod interactions;
pub mod lime;
pub mod methods;
pub mod pdp;
pub mod permutation;
pub mod report;
pub mod sage;
pub mod shapley;
pub mod surrogate;

use std::fmt;

/// Errors from explanation computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XaiError {
    /// Invalid inputs (shape mismatch, empty data, bad ordering).
    Input(String),
    /// Budget/limit problem (too many features for exact, zero samples).
    Budget(String),
    /// Numerical failure in a solver.
    Numeric(String),
}

impl fmt::Display for XaiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XaiError::Input(m) => write!(f, "input error: {m}"),
            XaiError::Budget(m) => write!(f, "budget error: {m}"),
            XaiError::Numeric(m) => write!(f, "numeric error: {m}"),
        }
    }
}

impl std::error::Error for XaiError {}

/// One-stop imports.
pub mod prelude {
    pub use crate::background::{
        dedup_rows_saved, Background, CoalitionPlan, CoalitionWorkspace, FusedBlock,
        ParCoalitionConfig,
    };
    pub use crate::batch::{explain_batch, explain_batch_seeded, explain_batch_seeded_ws};
    pub use crate::counterfactual::{
        counterfactual, Counterfactual, CounterfactualConfig, CrossingDirection,
    };
    pub use crate::eval::{
        agreement, attribution_mae, check_axioms, deletion_curve, fidelity_summary,
        insertion_curve, mean_agreement, roar, stability, Agreement, AxiomReport, FidelityCurve,
        FidelitySummary, RoarCurve, Stability, StabilityConfig,
    };
    pub use crate::explainer::{
        ExactShapleyExplainer, ExplainContext, ExplainPlan, Explainer, GroupedShapleyExplainer,
        KernelShapExplainer, LimeExplainer, PermutationExplainer, SamplingShapleyExplainer,
    };
    pub use crate::explanation::{mean_absolute_attribution, Attribution};
    pub use crate::grouped::{
        grouped_shapley, grouped_shapley_finish, grouped_shapley_plan, FeatureGroups,
        GroupedShapPlan, MAX_GROUPS,
    };
    pub use crate::interactions::{
        interaction_values, InteractionMatrix, MAX_INTERACTION_FEATURES,
    };
    pub use crate::lime::{lime, LimeConfig, LimeExplanation};
    pub use crate::methods::{
        method_id, InteractionsExplainer, MethodConfig, MethodDescriptor, MethodRegistry,
        ModelCaps, TreeModel, TreeShapExplainer,
    };
    pub use crate::pdp::{partial_dependence, PartialDependence};
    pub use crate::permutation::{
        instance_permutation, instance_permutation_finish, instance_permutation_plan,
        instance_permutation_with, permutation_importance, PermutationConfig,
        PermutationImportance, PermutationPlan,
    };
    pub use crate::report::{humanize_feature, render_report, OperatorReport, PredictionKind};
    pub use crate::sage::{sage, sage_finish, sage_plan, SageConfig, SageImportance, SagePlan};
    pub use crate::shapley::{
        exact_shapley, exact_shapley_finish, exact_shapley_plan, forest_shap, gbdt_shap,
        kernel_shap, kernel_shap_finish, kernel_shap_plan, kernel_shap_with, sampling_shapley,
        sampling_shapley_finish, sampling_shapley_plan, tree_shap, ExactShapPlan, KernelShapConfig,
        KernelShapPlan, SamplingConfig, SamplingPlan, MAX_EXACT_FEATURES,
    };
    pub use crate::surrogate::{global_surrogate, render_rules, Surrogate};
    pub use crate::XaiError;
}
