//! LIME for tabular data (Ribeiro et al., 2016): a locally-weighted ridge
//! surrogate fitted on Gaussian perturbations of the explained instance.
//!
//! Attribution values are reported as *effects* — `coefficient × (x_j −
//! background mean_j)` — so LIME explanations live on the same additive
//! scale as the SHAP family and can enter the same fidelity/agreement
//! comparisons. The raw local coefficients are also returned.

use crate::background::Background;
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_data::stats;
use nfv_ml::linalg::{weighted_ridge, Matrix};
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// LIME configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimeConfig {
    /// Number of perturbed samples.
    pub n_samples: usize,
    /// Kernel width as a multiple of `√d` in standardized space (0.75 is
    /// the LIME library default).
    pub kernel_width_factor: f64,
    /// Ridge regularization of the local surrogate.
    pub ridge: f64,
    /// Perturbation scale in units of each feature's background std.
    pub perturbation_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LimeConfig {
    fn default() -> Self {
        Self {
            n_samples: 1_000,
            kernel_width_factor: 0.75,
            ridge: 1e-3,
            perturbation_scale: 1.0,
            seed: 0,
        }
    }
}

/// A LIME explanation: the shared [`Attribution`] (effects) plus the raw
/// local surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct LimeExplanation {
    /// Effects-form attribution (comparable to SHAP values).
    pub attribution: Attribution,
    /// Local linear coefficients in original feature units.
    pub coefficients: Vec<f64>,
    /// Surrogate intercept.
    pub intercept: f64,
    /// Weighted R² of the surrogate on its own perturbation sample — the
    /// local fidelity LIME reports.
    pub local_r2: f64,
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Explains `model` at `x` with LIME.
pub fn lime(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
    cfg: &LimeConfig,
) -> Result<LimeExplanation, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if background.n_features() != d || names.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}, names {}",
            background.n_features(),
            names.len()
        )));
    }
    if cfg.n_samples < d + 2 {
        return Err(XaiError::Budget(format!(
            "LIME needs more samples ({}) than features + 2 ({})",
            cfg.n_samples,
            d + 2
        )));
    }

    // Per-feature stds from the background (perturbation + distance scale).
    let stds: Vec<f64> = (0..d)
        .map(|j| {
            let col: Vec<f64> = background.rows().iter().map(|r| r[j]).collect();
            let s = stats::std_dev(&col);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let kernel_width = cfg.kernel_width_factor * (d as f64).sqrt();
    let n = cfg.n_samples;
    // Design matrix with bias column; first sample is x itself.
    let mut xmat = Vec::with_capacity(n * (d + 1));
    let mut yvec = Vec::with_capacity(n);
    let mut wvec = Vec::with_capacity(n);
    let mut sample = vec![0.0; d];
    for i in 0..n {
        let mut dist2 = 0.0;
        for j in 0..d {
            let delta = if i == 0 {
                0.0
            } else {
                gaussian(&mut rng) * cfg.perturbation_scale * stds[j]
            };
            sample[j] = x[j] + delta;
            let std_delta = delta / stds[j];
            dist2 += std_delta * std_delta;
        }
        let w = (-dist2 / (kernel_width * kernel_width)).exp();
        xmat.push(1.0);
        xmat.extend_from_slice(&sample);
        yvec.push(model.predict(&sample));
        wvec.push(w);
    }
    let xm = Matrix::from_vec(n, d + 1, xmat).map_err(|e| XaiError::Numeric(e.to_string()))?;
    let beta = weighted_ridge(&xm, &yvec, &wvec, cfg.ridge)
        .map_err(|e| XaiError::Numeric(e.to_string()))?;
    let intercept = beta[0];
    let coefficients = beta[1..].to_vec();

    // Weighted R² of the surrogate on the perturbation sample.
    let preds: Vec<f64> = (0..n)
        .map(|i| {
            let row = xm.row(i);
            row.iter().zip(&beta).map(|(a, b)| a * b).sum()
        })
        .collect();
    let wsum: f64 = wvec.iter().sum();
    let wmean = yvec.iter().zip(&wvec).map(|(y, w)| y * w).sum::<f64>() / wsum;
    let ss_tot: f64 = yvec
        .iter()
        .zip(&wvec)
        .map(|(y, w)| w * (y - wmean).powi(2))
        .sum();
    let ss_res: f64 = yvec
        .iter()
        .zip(&preds)
        .zip(&wvec)
        .map(|((y, p), w)| w * (y - p).powi(2))
        .sum();
    let local_r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        0.0
    };

    // Effects form, anchored on the background mean.
    let values: Vec<f64> = coefficients
        .iter()
        .zip(x)
        .zip(&background.means)
        .map(|((c, xi), mu)| c * (xi - mu))
        .collect();
    let attribution = Attribution {
        names: names.to_vec(),
        values,
        base_value: background.expected_output(model),
        prediction: model.predict(x),
        method: "lime".into(),
    };
    Ok(LimeExplanation {
        attribution,
        coefficients,
        intercept,
        local_r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn recovers_a_linear_model_exactly() {
        let s = linear_gaussian(400, 3, 1, 0.0, 61).unwrap();
        let bg = Background::from_dataset(&s.data, 50, 0).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(4, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let x = [0.5, -1.0, 0.3, 2.0];
        let e = lime(&model, &x, &bg, &names(4), &LimeConfig::default()).unwrap();
        for (c, truth) in e.coefficients.iter().zip(&s.coefficients) {
            assert!((c - truth).abs() < 0.05, "coef {c} vs {truth}");
        }
        assert!(e.local_r2 > 0.999, "r2={}", e.local_r2);
    }

    #[test]
    fn local_gradient_of_a_nonlinear_model() {
        // f(x) = x², locally ≈ 2a·x around a. LIME's slope at a=2 should be
        // near 4 with a modest perturbation scale.
        let bg = Background::from_rows((0..20).map(|i| vec![i as f64 / 5.0]).collect()).unwrap();
        let model = FnModel::new(1, |x: &[f64]| x[0] * x[0]);
        let e = lime(
            &model,
            &[2.0],
            &bg,
            &names(1),
            &LimeConfig {
                perturbation_scale: 0.2,
                n_samples: 2_000,
                ..LimeConfig::default()
            },
        )
        .unwrap();
        assert!(
            (e.coefficients[0] - 4.0).abs() < 0.4,
            "slope {}",
            e.coefficients[0]
        );
    }

    #[test]
    fn irrelevant_feature_gets_negligible_weight() {
        let bg = Background::from_rows(
            (0..30)
                .map(|i| vec![i as f64 / 10.0, (30 - i) as f64 / 10.0])
                .collect(),
        )
        .unwrap();
        let model = FnModel::new(2, |x: &[f64]| 5.0 * x[0]);
        let e = lime(&model, &[1.0, 1.0], &bg, &names(2), &LimeConfig::default()).unwrap();
        assert!(e.coefficients[1].abs() < 0.05 * e.coefficients[0].abs());
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let bg = Background::from_rows((0..10).map(|i| vec![i as f64, 1.0]).collect()).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0].sin() * x[1]);
        let cfg = LimeConfig {
            n_samples: 200,
            ..LimeConfig::default()
        };
        let a = lime(&model, &[1.0, 2.0], &bg, &names(2), &cfg).unwrap();
        let b = lime(&model, &[1.0, 2.0], &bg, &names(2), &cfg).unwrap();
        assert_eq!(a, b);
        let c = lime(
            &model,
            &[1.0, 2.0],
            &bg,
            &names(2),
            &LimeConfig { seed: 9, ..cfg },
        )
        .unwrap();
        assert_ne!(a.coefficients, c.coefficients);
    }

    #[test]
    fn guards_reject_bad_inputs() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        assert!(lime(&model, &[], &bg, &[], &LimeConfig::default()).is_err());
        assert!(lime(
            &model,
            &[1.0, 2.0],
            &bg,
            &names(2),
            &LimeConfig {
                n_samples: 3,
                ..LimeConfig::default()
            }
        )
        .is_err());
        assert!(lime(&model, &[1.0], &bg, &names(1), &LimeConfig::default()).is_err());
    }

    #[test]
    fn constant_feature_background_does_not_divide_by_zero() {
        let bg = Background::from_rows(vec![vec![1.0, 5.0], vec![2.0, 5.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0] + x[1]);
        let e = lime(&model, &[1.5, 5.0], &bg, &names(2), &LimeConfig::default()).unwrap();
        assert!(e.coefficients.iter().all(|c| c.is_finite()));
    }
}
