//! The Shapley-value family: exact enumeration, permutation sampling,
//! KernelSHAP, and TreeSHAP.

pub mod exact;
pub mod kernel;
pub mod sampling;
pub mod tree;

pub use exact::{exact_shapley, MAX_EXACT_FEATURES};
pub use kernel::{kernel_shap, kernel_shap_with, KernelShapConfig};
pub use sampling::{sampling_shapley, SamplingConfig};
pub use tree::{forest_shap, gbdt_shap, tree_shap};
