//! The Shapley-value family: exact enumeration, permutation sampling,
//! KernelSHAP, and TreeSHAP.

pub mod exact;
pub mod kernel;
pub mod sampling;
pub mod tree;

pub use exact::MAX_EXACT_FEATURES;
pub use exact::{exact_shapley, exact_shapley_finish, exact_shapley_plan, ExactShapPlan};
pub use kernel::{kernel_shap, kernel_shap_plan, kernel_shap_with, KernelShapConfig};
pub use kernel::{kernel_shap_finish, KernelShapPlan};
pub use sampling::{sampling_shapley, sampling_shapley_finish, sampling_shapley_plan};
pub use sampling::{SamplingConfig, SamplingPlan};
pub use tree::{forest_shap, gbdt_shap, tree_shap};
