//! TreeSHAP: exact Shapley values for tree ensembles in polynomial time
//! (Lundberg, Erion & Lee, 2018 — the path-dependent variant).
//!
//! The value function is the tree's own conditional expectation: for
//! features outside the coalition, the walk splits across both children
//! weighted by training covers. `tree_shap` computes the exact Shapley
//! values of that game in `O(L·D²)` per tree; the test suite checks it
//! against a brute-force `2^d` evaluation of the same game.

use crate::explanation::Attribution;
use crate::XaiError;
use nfv_ml::forest::RandomForest;
use nfv_ml::gbdt::Gbdt;
use nfv_ml::tree::DecisionTree;

/// One element of the unique feature path maintained by the recursion.
#[derive(Debug, Clone, Copy)]
struct PathElem {
    /// Feature that split here (−1 for the dummy root element).
    d: isize,
    /// Fraction of paths flowing through when the feature is *excluded*.
    z: f64,
    /// 1 when the feature is *included* and x follows this path, else 0.
    o: f64,
    /// Permutation weight accumulated so far.
    w: f64,
}

fn extend(m: &mut Vec<PathElem>, pz: f64, po: f64, pi: isize) {
    let l = m.len();
    m.push(PathElem {
        d: pi,
        z: pz,
        o: po,
        w: if l == 0 { 1.0 } else { 0.0 },
    });
    for i in (0..l).rev() {
        m[i + 1].w += po * m[i].w * (i as f64 + 1.0) / (l as f64 + 1.0);
        m[i].w = pz * m[i].w * (l - i) as f64 / (l as f64 + 1.0);
    }
}

fn unwind(m: &mut Vec<PathElem>, i: usize) {
    let l = m.len() - 1;
    let o = m[i].o;
    let z = m[i].z;
    let mut n = m[l].w;
    for j in (0..l).rev() {
        if o != 0.0 {
            let tmp = m[j].w;
            m[j].w = n * (l as f64 + 1.0) / ((j as f64 + 1.0) * o);
            n = tmp - m[j].w * z * (l - j) as f64 / (l as f64 + 1.0);
        } else {
            m[j].w = m[j].w * (l as f64 + 1.0) / (z * (l - j) as f64);
        }
    }
    for j in i..l {
        m[j].d = m[j + 1].d;
        m[j].z = m[j + 1].z;
        m[j].o = m[j + 1].o;
    }
    m.pop();
}

fn unwound_path_sum(m: &[PathElem], i: usize) -> f64 {
    let l = m.len() - 1;
    let o = m[i].o;
    let z = m[i].z;
    let mut n = m[l].w;
    let mut total = 0.0;
    for j in (0..l).rev() {
        if o != 0.0 {
            let tmp = n * (l as f64 + 1.0) / ((j as f64 + 1.0) * o);
            total += tmp;
            n = m[j].w - tmp * z * (l - j) as f64 / (l as f64 + 1.0);
        } else {
            total += (m[j].w / z) * (l as f64 + 1.0) / (l - j) as f64;
        }
    }
    total
}

#[allow(clippy::too_many_arguments)] // mirrors the published TreeSHAP signature
fn recurse(
    tree: &DecisionTree,
    node: usize,
    mut m: Vec<PathElem>,
    pz: f64,
    po: f64,
    pi: isize,
    x: &[f64],
    phi: &mut [f64],
) {
    extend(&mut m, pz, po, pi);
    let n = &tree.nodes[node];
    if n.is_leaf {
        for i in 1..m.len() {
            let w = unwound_path_sum(&m, i);
            let el = m[i];
            debug_assert!(el.d >= 0);
            phi[el.d as usize] += w * (el.o - el.z) * n.value;
        }
        return;
    }
    let f = n.feature;
    let goes_left = x.get(f).copied().unwrap_or(0.0) <= n.threshold;
    let (hot, cold) = if goes_left {
        (n.left as usize, n.right as usize)
    } else {
        (n.right as usize, n.left as usize)
    };
    let hot_zero = tree.nodes[hot].cover / n.cover;
    let cold_zero = tree.nodes[cold].cover / n.cover;
    let mut iz = 1.0;
    let mut io = 1.0;
    // Skip the dummy element at index 0 when searching for a prior split
    // on this feature.
    if let Some(k) = m
        .iter()
        .enumerate()
        .skip(1)
        .find(|(_, e)| e.d == f as isize)
    {
        let k = k.0;
        iz = m[k].z;
        io = m[k].o;
        unwind(&mut m, k);
    }
    recurse(tree, hot, m.clone(), hot_zero * iz, io, f as isize, x, phi);
    recurse(tree, cold, m, cold_zero * iz, 0.0, f as isize, x, phi);
}

/// The tree's path-dependent expected value (the base value of its
/// attributions): leaf values weighted by training covers.
pub fn tree_expected_value(tree: &DecisionTree) -> f64 {
    fn walk(tree: &DecisionTree, i: usize) -> f64 {
        let n = &tree.nodes[i];
        if n.is_leaf {
            n.value
        } else {
            let l = &tree.nodes[n.left as usize];
            let r = &tree.nodes[n.right as usize];
            (l.cover * walk(tree, n.left as usize) + r.cover * walk(tree, n.right as usize))
                / n.cover
        }
    }
    if tree.nodes.is_empty() {
        0.0
    } else {
        walk(tree, 0)
    }
}

/// The tree's conditional expectation given coalition `S` (features where
/// `in_coalition` is true take x's path; others split by covers). This is
/// the value function TreeSHAP attributes — exported for the brute-force
/// verification used in tests and the convergence experiments.
pub fn path_dependent_value(tree: &DecisionTree, x: &[f64], in_coalition: &[bool]) -> f64 {
    fn walk(tree: &DecisionTree, i: usize, x: &[f64], s: &[bool]) -> f64 {
        let n = &tree.nodes[i];
        if n.is_leaf {
            return n.value;
        }
        if s.get(n.feature).copied().unwrap_or(false) {
            let next = if x.get(n.feature).copied().unwrap_or(0.0) <= n.threshold {
                n.left
            } else {
                n.right
            };
            walk(tree, next as usize, x, s)
        } else {
            let l = &tree.nodes[n.left as usize];
            let r = &tree.nodes[n.right as usize];
            (l.cover * walk(tree, n.left as usize, x, s)
                + r.cover * walk(tree, n.right as usize, x, s))
                / n.cover
        }
    }
    walk(tree, 0, x, in_coalition)
}

fn check(d_tree: usize, x: &[f64], names: &[String]) -> Result<(), XaiError> {
    if x.is_empty() {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if d_tree != x.len() || names.len() != x.len() {
        return Err(XaiError::Input(format!(
            "shape mismatch: model has {d_tree} features, x {}, names {}",
            x.len(),
            names.len()
        )));
    }
    Ok(())
}

/// TreeSHAP for a single decision tree.
pub fn tree_shap(
    tree: &DecisionTree,
    x: &[f64],
    names: &[String],
) -> Result<Attribution, XaiError> {
    check(tree.n_features, x, names)?;
    let mut phi = vec![0.0; x.len()];
    recurse(tree, 0, Vec::new(), 1.0, 1.0, -1, x, &mut phi);
    let base_value = tree_expected_value(tree);
    Ok(Attribution {
        names: names.to_vec(),
        values: phi,
        base_value,
        prediction: tree.output(x),
        method: "tree-shap".into(),
    })
}

/// TreeSHAP for a random forest: the average of per-tree attributions
/// (Shapley values are linear in the model).
pub fn forest_shap(
    forest: &RandomForest,
    x: &[f64],
    names: &[String],
) -> Result<Attribution, XaiError> {
    check(forest.n_features, x, names)?;
    let mut phi = vec![0.0; x.len()];
    let mut base = 0.0;
    for t in &forest.trees {
        recurse(t, 0, Vec::new(), 1.0, 1.0, -1, x, &mut phi);
        base += tree_expected_value(t);
    }
    let k = forest.trees.len() as f64;
    phi.iter_mut().for_each(|p| *p /= k);
    Ok(Attribution {
        names: names.to_vec(),
        values: phi,
        base_value: base / k,
        prediction: forest.output(x),
        method: "tree-shap".into(),
    })
}

/// TreeSHAP for a GBDT: attributions in *margin* space (log-odds for
/// classification — the standard convention, since Shapley linearity holds
/// before the sigmoid).
pub fn gbdt_shap(gbdt: &Gbdt, x: &[f64], names: &[String]) -> Result<Attribution, XaiError> {
    check(gbdt.n_features, x, names)?;
    let mut phi = vec![0.0; x.len()];
    let mut base = gbdt.base_score;
    for t in &gbdt.trees {
        let mut tree_phi = vec![0.0; x.len()];
        recurse(t, 0, Vec::new(), 1.0, 1.0, -1, x, &mut tree_phi);
        for (p, tp) in phi.iter_mut().zip(&tree_phi) {
            *p += gbdt.learning_rate * tp;
        }
        base += gbdt.learning_rate * tree_expected_value(t);
    }
    Ok(Attribution {
        names: names.to_vec(),
        values: phi,
        base_value: base,
        prediction: gbdt.margin(x),
        method: "tree-shap".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::forest::ForestParams;
    use nfv_ml::gbdt::GbdtParams;
    use nfv_ml::tree::TreeParams;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    /// Brute-force Shapley of the path-dependent game — the oracle.
    fn brute_force(tree: &DecisionTree, x: &[f64]) -> Vec<f64> {
        let d = x.len();
        let n_masks = 1usize << d;
        let mut v = vec![0.0; n_masks];
        let mut s = vec![false; d];
        for (mask, value) in v.iter_mut().enumerate() {
            for (j, b) in s.iter_mut().enumerate() {
                *b = (mask >> j) & 1 == 1;
            }
            *value = path_dependent_value(tree, x, &s);
        }
        let mut fact = vec![1.0f64; d + 1];
        for i in 1..=d {
            fact[i] = fact[i - 1] * i as f64;
        }
        let mut phi = vec![0.0; d];
        for mask in 0..n_masks {
            let size = (mask as u64).count_ones() as usize;
            if size == d {
                continue;
            }
            let w = fact[size] * fact[d - size - 1] / fact[d];
            for (i, p) in phi.iter_mut().enumerate() {
                if (mask >> i) & 1 == 0 {
                    *p += w * (v[mask | (1 << i)] - v[mask]);
                }
            }
        }
        phi
    }

    #[test]
    fn matches_brute_force_on_friedman_tree() {
        let s = friedman1(400, 6, 0.2, 51).unwrap();
        let tree = DecisionTree::fit(
            &s.data,
            &TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
            0,
        )
        .unwrap();
        for row in [0, 17, 99, 250] {
            let x = s.data.row(row).to_vec();
            let fast = tree_shap(&tree, &x, &names(6)).unwrap();
            let slow = brute_force(&tree, &x);
            for (a, b) in fast.values.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "fast {a} vs brute {b} at row {row}");
            }
        }
    }

    #[test]
    fn matches_brute_force_with_repeated_feature_splits() {
        // Deep tree over few features forces repeated splits on the same
        // feature along a path — the case the unwind logic exists for.
        let s = friedman1(600, 5, 0.1, 52).unwrap();
        let tree = DecisionTree::fit(
            &s.data,
            &TreeParams {
                max_depth: 9,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
            },
            0,
        )
        .unwrap();
        assert!(tree.depth() > 5, "need a deep tree, got {}", tree.depth());
        for row in [3, 42, 333] {
            let x = s.data.row(row).to_vec();
            let fast = tree_shap(&tree, &x, &names(5)).unwrap();
            let slow = brute_force(&tree, &x);
            for (a, b) in fast.values.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-8, "fast {a} vs brute {b} at row {row}");
            }
        }
    }

    #[test]
    fn efficiency_holds_exactly() {
        let s = friedman1(500, 8, 0.3, 53).unwrap();
        let tree = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        for row in 0..30 {
            let x = s.data.row(row).to_vec();
            let a = tree_shap(&tree, &x, &names(8)).unwrap();
            assert!(
                a.efficiency_gap().abs() < 1e-9,
                "row {row}: gap {}",
                a.efficiency_gap()
            );
        }
    }

    #[test]
    fn dummy_feature_gets_zero() {
        // Feature 7 is noise in friedman1 and rarely split on; build a stump
        // that provably never uses it.
        let s = friedman1(300, 8, 0.2, 54).unwrap();
        let tree = DecisionTree::fit(
            &s.data,
            &TreeParams {
                max_depth: 2,
                ..TreeParams::default()
            },
            0,
        )
        .unwrap();
        let used: std::collections::HashSet<usize> = tree
            .nodes
            .iter()
            .filter(|n| !n.is_leaf)
            .map(|n| n.feature)
            .collect();
        let x = s.data.row(0).to_vec();
        let a = tree_shap(&tree, &x, &names(8)).unwrap();
        for j in 0..8 {
            if !used.contains(&j) {
                assert_eq!(a.values[j], 0.0, "unused feature {j} must get 0");
            }
        }
    }

    #[test]
    fn forest_shap_is_mean_of_tree_shaps() {
        let s = friedman1(400, 6, 0.3, 55).unwrap();
        let forest = RandomForest::fit(
            &s.data,
            &ForestParams {
                n_trees: 7,
                ..ForestParams::default()
            },
            1,
            1,
        )
        .unwrap();
        let x = s.data.row(12).to_vec();
        let whole = forest_shap(&forest, &x, &names(6)).unwrap();
        let mut acc = vec![0.0; 6];
        for t in &forest.trees {
            let a = tree_shap(t, &x, &names(6)).unwrap();
            for (s, v) in acc.iter_mut().zip(&a.values) {
                *s += v / forest.trees.len() as f64;
            }
        }
        for (a, b) in whole.values.iter().zip(&acc) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(whole.efficiency_gap().abs() < 1e-9);
    }

    #[test]
    fn gbdt_shap_explains_the_margin() {
        let s = friedman1(600, 6, 0.3, 56).unwrap();
        let g = Gbdt::fit(
            &s.data,
            &GbdtParams {
                n_rounds: 40,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        let x = s.data.row(5).to_vec();
        let a = gbdt_shap(&g, &x, &names(6)).unwrap();
        assert!((a.prediction - g.margin(&x)).abs() < 1e-12);
        assert!(a.efficiency_gap().abs() < 1e-8, "{}", a.efficiency_gap());
    }

    #[test]
    fn classification_gbdt_attributions_are_log_odds() {
        let s = interaction_xor(1_000, 1, 57).unwrap();
        let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
        let x = s.data.row(3).to_vec();
        let a = gbdt_shap(&g, &x, &names(3)).unwrap();
        // Margin-space efficiency.
        assert!(a.efficiency_gap().abs() < 1e-8);
        // The noise feature earns far less credit than the interacting pair.
        assert!(a.values[2].abs() < a.values[0].abs().max(a.values[1].abs()));
    }

    #[test]
    fn expected_value_matches_cover_weighting() {
        let data = Dataset::new(
            vec!["x".into()],
            vec![0.0, 1.0, 2.0, 3.0],
            vec![0.0, 0.0, 10.0, 10.0],
            Task::Regression,
        )
        .unwrap();
        let tree = DecisionTree::fit(
            &data,
            &TreeParams {
                max_depth: 1,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
            },
            0,
        )
        .unwrap();
        assert!((tree_expected_value(&tree) - 5.0).abs() < 1e-12);
        // Coalition values: empty = 5, {0} follows x.
        assert_eq!(path_dependent_value(&tree, &[0.0], &[false]), 5.0);
        assert_eq!(path_dependent_value(&tree, &[0.0], &[true]), 0.0);
        assert_eq!(path_dependent_value(&tree, &[3.0], &[true]), 10.0);
    }

    #[test]
    fn guards_reject_bad_shapes() {
        let s = friedman1(100, 5, 0.1, 58).unwrap();
        let tree = DecisionTree::fit(&s.data, &TreeParams::default(), 0).unwrap();
        assert!(tree_shap(&tree, &[], &[]).is_err());
        assert!(tree_shap(&tree, &[1.0; 4], &names(4)).is_err());
        assert!(tree_shap(&tree, &[1.0; 5], &names(4)).is_err());
    }
}
