//! KernelSHAP (Lundberg & Lee, 2017): Shapley values via a weighted linear
//! regression over sampled coalitions, with the efficiency constraint
//! enforced by variable elimination.
//!
//! Coalition sizes are consumed from the outside in (sizes 1 and d−1 carry
//! the most kernel mass); any size that fits completely in the remaining
//! budget is enumerated exactly, the rest are sampled. With a budget
//! ≥ 2^d − 2 the method therefore reproduces exact Shapley values of the
//! interventional value function.

use crate::background::{Background, CoalitionPlan, CoalitionWorkspace, FusedBlock};
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_ml::linalg::{weighted_ridge, Matrix};
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for KernelSHAP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelShapConfig {
    /// Coalition evaluation budget (model calls = budget × background size).
    /// The shap library default is `2d + 2048`; ours is `2d + 512`.
    ///
    /// This is a **hard cap**: the selected coalition count never exceeds
    /// it. Sizes that fit entirely in the remaining budget are enumerated
    /// exactly; the leftover budget is split across the remaining sizes by
    /// largest-remainder apportionment of their kernel mass, so the shares
    /// reconcile to the budget instead of each rounding up independently.
    pub n_coalitions: usize,
    /// Ridge regularization of the weighted regression (0 reproduces plain
    /// WLS; small positive values stabilize tiny budgets).
    pub ridge: f64,
    /// RNG seed for coalition sampling.
    pub seed: u64,
}

impl KernelShapConfig {
    /// Default budget for `d` features.
    pub fn for_features(d: usize) -> Self {
        Self {
            n_coalitions: 2 * d + 512,
            ridge: 0.0,
            seed: 0,
        }
    }
}

/// Binomial coefficient as f64 (saturating; d stays small).
fn binom(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Selects the coalitions (membership, kernel weight) for `d` features
/// under `cfg`. The returned count never exceeds `cfg.n_coalitions`: fully
/// enumerable sizes are consumed from the outside in, and the leftover
/// budget is apportioned over the sampled sizes by largest remainder of
/// their exact kernel-mass shares (a share can round to zero; it can never
/// round the total above the budget).
fn select_coalitions(d: usize, cfg: &KernelShapConfig) -> Vec<(Vec<bool>, f64)> {
    // Kernel mass of one subset of size s: (d−1) / (C(d,s)·s·(d−s));
    // total mass of size s: (d−1) / (s·(d−s)).
    let mut coalitions: Vec<(Vec<bool>, f64)> = Vec::new(); // (membership, weight)
    let mut budget = cfg.n_coalitions;
    // Sizes ordered by descending mass: 1, d−1, 2, d−2, …
    let mut sizes: Vec<usize> = Vec::new();
    let mut lo = 1usize;
    let mut hi = d - 1;
    while lo <= hi {
        sizes.push(lo);
        if hi != lo {
            sizes.push(hi);
        }
        lo += 1;
        hi -= 1;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sampled_sizes: Vec<usize> = Vec::new();
    for &s in &sizes {
        let count = binom(d, s);
        if count <= budget as f64 {
            // Full enumeration of this size.
            let w = (d as f64 - 1.0) / (count * s as f64 * (d - s) as f64);
            enumerate_size(d, s, &mut |members: &Vec<bool>| {
                coalitions.push((members.clone(), w));
            });
            budget -= count as usize;
        } else {
            sampled_sizes.push(s);
        }
    }
    if !sampled_sizes.is_empty() && budget > 0 {
        // Distribute the remaining budget across the un-enumerated sizes
        // proportionally to their kernel mass, reconciled by largest
        // remainder so Σ shares == budget exactly; within a size subsets
        // are uniform, so each sample carries (size mass / samples of
        // size).
        let masses: Vec<f64> = sampled_sizes
            .iter()
            .map(|&s| (d as f64 - 1.0) / (s as f64 * (d - s) as f64))
            .collect();
        let total_mass: f64 = masses.iter().sum();
        let ideals: Vec<f64> = masses
            .iter()
            .map(|m| budget as f64 * m / total_mass)
            .collect();
        let mut shares: Vec<usize> = ideals.iter().map(|v| v.floor() as usize).collect();
        let mut leftover = budget - shares.iter().sum::<usize>().min(budget);
        // Hand the leftover units to the largest fractional parts (ties
        // broken by size order, i.e. by descending mass).
        let mut order: Vec<usize> = (0..sampled_sizes.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = ideals[a] - ideals[a].floor();
            let fb = ideals[b] - ideals[b].floor();
            fb.total_cmp(&fa).then(a.cmp(&b))
        });
        for i in order {
            if leftover == 0 {
                break;
            }
            shares[i] += 1;
            leftover -= 1;
        }
        let mut idx_pool: Vec<usize> = (0..d).collect();
        for ((&s, &mass), &share) in sampled_sizes.iter().zip(&masses).zip(&shares) {
            if share == 0 {
                continue;
            }
            let w = mass / share as f64;
            for _ in 0..share {
                idx_pool.shuffle(&mut rng);
                let mut members = vec![false; d];
                for &j in idx_pool.iter().take(s) {
                    members[j] = true;
                }
                coalitions.push((members, w));
            }
        }
    }
    coalitions
}

/// Computes KernelSHAP attributions of `model` at `x` (allocates a fresh
/// evaluation workspace; batch callers should hold one per thread and use
/// [`kernel_shap_with`]).
pub fn kernel_shap(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
    cfg: &KernelShapConfig,
) -> Result<Attribution, XaiError> {
    kernel_shap_with(model, x, background, names, cfg, &mut Default::default())
}

/// [`kernel_shap`] with a caller-provided [`CoalitionWorkspace`], so the
/// composite-row block is reused across many explanations on one thread.
pub fn kernel_shap_with(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
    cfg: &KernelShapConfig,
    ws: &mut CoalitionWorkspace,
) -> Result<Attribution, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if background.n_features() != d || names.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}, names {}",
            background.n_features(),
            names.len()
        )));
    }
    let base = background.expected_output(model);
    let fx = model.predict(x);

    // One feature: efficiency pins it down completely.
    if d == 1 {
        return Ok(Attribution {
            names: names.to_vec(),
            values: vec![fx - base],
            base_value: base,
            prediction: fx,
            method: "kernel-shap".into(),
        });
    }
    if cfg.n_coalitions == 0 {
        return Err(XaiError::Budget("n_coalitions must be positive".into()));
    }

    let coalitions = select_coalitions(d, cfg);
    if coalitions.is_empty() {
        return Err(XaiError::Budget(format!(
            "budget {} produced no coalitions for d={d}",
            cfg.n_coalitions
        )));
    }

    // ---- Coalition evaluation (the hot path, batched) -------------------
    let mut values = Vec::with_capacity(coalitions.len());
    background.coalition_values_into(
        model,
        x,
        coalitions.len(),
        |i, members| members.copy_from_slice(&coalitions[i].0),
        ws,
        &mut values,
    );

    solve_weighted(&coalitions, &values, base, fx, cfg.ridge, names)
}

/// The weighted regression with the efficiency constraint, shared by
/// [`kernel_shap_with`] and [`kernel_shap_finish`] so the fused and
/// unfused paths solve with byte-for-byte the same arithmetic.
///
/// Eliminate φ_{d−1}: with Δ = fx − base,
///   y − base − z_{d−1}·Δ = Σ_{i<d−1} φ_i (z_i − z_{d−1}).
fn solve_weighted(
    coalitions: &[(Vec<bool>, f64)],
    values: &[f64],
    base: f64,
    fx: f64,
    ridge: f64,
    names: &[String],
) -> Result<Attribution, XaiError> {
    let d = names.len();
    let n = coalitions.len();
    let mut xmat = Vec::with_capacity(n * (d - 1));
    let mut yvec = Vec::with_capacity(n);
    let mut wvec = Vec::with_capacity(n);
    let delta = fx - base;
    for ((members, w), &v) in coalitions.iter().zip(values) {
        let z_last = if members[d - 1] { 1.0 } else { 0.0 };
        for &m in &members[..d - 1] {
            let z_j = if m { 1.0 } else { 0.0 };
            xmat.push(z_j - z_last);
        }
        yvec.push(v - base - z_last * delta);
        wvec.push(*w);
    }
    let xm = Matrix::from_vec(n, d - 1, xmat).map_err(|e| XaiError::Numeric(e.to_string()))?;
    let beta =
        weighted_ridge(&xm, &yvec, &wvec, ridge).map_err(|e| XaiError::Numeric(e.to_string()))?;
    let mut phi = beta;
    let last = delta - phi.iter().sum::<f64>();
    phi.push(last);

    Ok(Attribution {
        names: names.to_vec(),
        values: phi,
        base_value: base,
        prediction: fx,
        method: "kernel-shap".into(),
    })
}

/// The plan half of KernelSHAP for cross-request fusion: selects the
/// coalitions and materializes their composite rows into the shared
/// `block` without evaluating the model on them. Several requests' plans
/// stack into one block; after a single [`FusedBlock::evaluate`],
/// [`kernel_shap_finish`] completes each request with the exact
/// arithmetic of [`kernel_shap_with`] — results are bit-identical.
#[derive(Debug, Clone)]
pub struct KernelShapPlan {
    coalitions: Vec<(Vec<bool>, f64)>,
    plan: CoalitionPlan,
    base: f64,
    fx: f64,
    d: usize,
    ridge: f64,
}

impl KernelShapPlan {
    /// Composite rows this plan occupies in its block.
    pub fn n_rows(&self) -> usize {
        self.plan.n_rows()
    }

    /// Coalitions selected for this request.
    pub fn n_coalitions(&self) -> usize {
        self.coalitions.len()
    }
}

/// Builds a [`KernelShapPlan`] for `x`, appending its composite rows to
/// `block`. `base_hint`, when given, must be bit-equal to
/// `background.expected_output(model)` (e.g. cached at model registration);
/// it skips the per-request background sweep without changing any result
/// bit. The model is still consulted for `f(x)` — the single row the plan
/// cannot defer.
///
/// Guards, the `d == 1` short circuit, and error cases mirror
/// [`kernel_shap_with`] exactly (a `d == 1` plan occupies zero rows and
/// resolves fully at finish time).
pub fn kernel_shap_plan(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    cfg: &KernelShapConfig,
    base_hint: Option<f64>,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) -> Result<KernelShapPlan, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}",
            background.n_features()
        )));
    }
    let base = base_hint.unwrap_or_else(|| background.expected_output(model));
    let fx = model.predict(x);

    // One feature: efficiency pins it down completely; nothing to stack.
    if d == 1 {
        return Ok(KernelShapPlan {
            coalitions: Vec::new(),
            plan: background.plan_coalitions(x, 0, |_, _| {}, ws, block),
            base,
            fx,
            d,
            ridge: cfg.ridge,
        });
    }
    if cfg.n_coalitions == 0 {
        return Err(XaiError::Budget("n_coalitions must be positive".into()));
    }
    let coalitions = select_coalitions(d, cfg);
    if coalitions.is_empty() {
        return Err(XaiError::Budget(format!(
            "budget {} produced no coalitions for d={d}",
            cfg.n_coalitions
        )));
    }
    let plan = background.plan_coalitions(
        x,
        coalitions.len(),
        |i, members| members.copy_from_slice(&coalitions[i].0),
        ws,
        block,
    );
    Ok(KernelShapPlan {
        coalitions,
        plan,
        base,
        fx,
        d,
        ridge: cfg.ridge,
    })
}

/// Completes a [`KernelShapPlan`] against its evaluated block: reduces the
/// plan's prediction rows to coalition values and runs the same weighted
/// regression as [`kernel_shap_with`]. Bit-identical to the unfused path.
pub fn kernel_shap_finish(
    plan: &KernelShapPlan,
    block: &FusedBlock,
    names: &[String],
) -> Result<Attribution, XaiError> {
    if names.len() != plan.d {
        return Err(XaiError::Input(format!(
            "shape mismatch: plan has {} features, names {}",
            plan.d,
            names.len()
        )));
    }
    if plan.d == 1 {
        return Ok(Attribution {
            names: names.to_vec(),
            values: vec![plan.fx - plan.base],
            base_value: plan.base,
            prediction: plan.fx,
            method: "kernel-shap".into(),
        });
    }
    let mut values = Vec::with_capacity(plan.coalitions.len());
    plan.plan.values_into(block, &mut values);
    solve_weighted(
        &plan.coalitions,
        &values,
        plan.base,
        plan.fx,
        plan.ridge,
        names,
    )
}

/// Calls `f` with every size-`s` subset of `0..d` as a membership vector.
fn enumerate_size(d: usize, s: usize, f: &mut impl FnMut(&Vec<bool>)) {
    let mut members = vec![false; d];
    let mut comb: Vec<usize> = (0..s).collect();
    loop {
        members.iter_mut().for_each(|m| *m = false);
        for &c in &comb {
            members[c] = true;
        }
        f(&members);
        // Next combination in lexicographic order.
        let mut i = s;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if comb[i] != i + d - s {
                break;
            }
            if i == 0 {
                return;
            }
        }
        comb[i] += 1;
        for j in i + 1..s {
            comb[j] = comb[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::exact::exact_shapley;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn full_budget_reproduces_exact_shapley() {
        let s = friedman1(200, 6, 0.1, 7).unwrap();
        let bg = Background::from_dataset(&s.data, 12, 1).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let x = s.data.row(3).to_vec();
        let exact = exact_shapley(&t, &x, &bg, &names(6)).unwrap();
        let kernel = kernel_shap(
            &t,
            &x,
            &bg,
            &names(6),
            &KernelShapConfig {
                n_coalitions: 1 << 6, // covers all 62 proper coalitions
                ridge: 0.0,
                seed: 0,
            },
        )
        .unwrap();
        for (k, e) in kernel.values.iter().zip(&exact.values) {
            assert!((k - e).abs() < 1e-6, "kernel {k} vs exact {e}");
        }
        assert!(kernel.efficiency_gap().abs() < 1e-9);
    }

    #[test]
    fn small_budget_is_close_and_still_efficient() {
        let s = friedman1(200, 10, 0.1, 8).unwrap();
        let bg = Background::from_dataset(&s.data, 10, 2).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let x = s.data.row(9).to_vec();
        let exact = exact_shapley(&t, &x, &bg, &names(10)).unwrap();
        let kernel = kernel_shap(
            &t,
            &x,
            &bg,
            &names(10),
            &KernelShapConfig {
                n_coalitions: 200,
                ridge: 1e-6,
                seed: 3,
            },
        )
        .unwrap();
        assert!(kernel.efficiency_gap().abs() < 1e-9, "constraint is exact");
        let scale = exact
            .values
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mae: f64 = kernel
            .values
            .iter()
            .zip(&exact.values)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 10.0;
        assert!(mae / scale < 0.15, "relative MAE {}", mae / scale);
    }

    #[test]
    fn single_feature_short_circuit() {
        let bg = Background::from_rows(vec![vec![0.0], vec![2.0]]).unwrap();
        let model = FnModel::new(1, |x: &[f64]| 3.0 * x[0]);
        let a = kernel_shap(
            &model,
            &[4.0],
            &bg,
            &names(1),
            &KernelShapConfig::for_features(1),
        )
        .unwrap();
        assert!((a.values[0] - (12.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_model_matches_closed_form_at_tiny_budget() {
        let s = linear_gaussian(300, 4, 0, 0.0, 9).unwrap();
        let bg = Background::from_dataset(&s.data, 30, 0).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(4, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let x = [0.7, -1.3, 0.2, 2.0];
        let a = kernel_shap(
            &model,
            &x,
            &bg,
            &names(4),
            &KernelShapConfig {
                n_coalitions: 20,
                ridge: 0.0,
                seed: 1,
            },
        )
        .unwrap();
        for (i, &xi) in x.iter().enumerate().take(4) {
            let expect = s.coefficients[i] * (xi - bg.means[i]);
            assert!(
                (a.values[i] - expect).abs() < 1e-6,
                "phi[{i}]={} expect {expect} (linear models are exact at any budget)",
                a.values[i]
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = friedman1(150, 8, 0.2, 10).unwrap();
        let bg = Background::from_dataset(&s.data, 8, 1).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let x = s.data.row(1).to_vec();
        let cfg = KernelShapConfig {
            n_coalitions: 64,
            ridge: 1e-6,
            seed: 42,
        };
        let a = kernel_shap(&t, &x, &bg, &names(8), &cfg).unwrap();
        let b = kernel_shap(&t, &x, &bg, &names(8), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn guards_reject_bad_inputs() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        assert!(kernel_shap(&model, &[], &bg, &[], &KernelShapConfig::for_features(2)).is_err());
        assert!(kernel_shap(
            &model,
            &[1.0, 2.0],
            &bg,
            &names(2),
            &KernelShapConfig {
                n_coalitions: 0,
                ridge: 0.0,
                seed: 0
            }
        )
        .is_err());
        assert!(kernel_shap(
            &model,
            &[1.0, 2.0, 3.0],
            &bg,
            &names(3),
            &KernelShapConfig::for_features(3)
        )
        .is_err());
    }

    #[test]
    fn budget_is_a_hard_cap_across_dimensions() {
        // Regression: the old sampled-size shares used `.round().max(1.0)`
        // independently per size, so the total could exceed n_coalitions.
        for d in 5..=20usize {
            for budget in [d, 2 * d, 37, 64, 2 * d + 7, 200] {
                let cfg = KernelShapConfig {
                    n_coalitions: budget,
                    ridge: 0.0,
                    seed: d as u64,
                };
                let coalitions = select_coalitions(d, &cfg);
                assert!(
                    coalitions.len() <= budget,
                    "d={d} budget={budget}: selected {}",
                    coalitions.len()
                );
                assert!(!coalitions.is_empty(), "d={d} budget={budget}");
            }
        }
    }

    #[test]
    fn sampled_budget_is_spent_exactly_when_sampling() {
        // When at least one size is sampled, largest-remainder reconciling
        // spends the whole leftover budget (no systematic undershoot).
        let d = 12;
        let cfg = KernelShapConfig {
            n_coalitions: 100,
            ridge: 0.0,
            seed: 3,
        };
        // Sizes 1 and 11 enumerate (12 each); 24 spent, 76 sampled.
        let coalitions = select_coalitions(d, &cfg);
        assert_eq!(coalitions.len(), 100);
    }

    #[test]
    fn workspace_variant_matches_allocating_path() {
        let s = friedman1(120, 7, 0.2, 21).unwrap();
        let bg = Background::from_dataset(&s.data, 9, 2).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let cfg = KernelShapConfig {
            n_coalitions: 48,
            ridge: 1e-8,
            seed: 5,
        };
        let mut ws = crate::background::CoalitionWorkspace::default();
        for row in [0usize, 3, 11] {
            let x = s.data.row(row).to_vec();
            let plain = kernel_shap(&t, &x, &bg, &names(7), &cfg).unwrap();
            let with_ws = kernel_shap_with(&t, &x, &bg, &names(7), &cfg, &mut ws).unwrap();
            assert_eq!(plain, with_ws, "workspace reuse must not change values");
        }
    }

    #[test]
    fn seeded_explanations_invariant_to_coalition_thread_count() {
        // Parallel coalition blocks must not perturb a single seeded
        // explanation bit-for-bit, whatever the fan-out width.
        let s = friedman1(150, 10, 0.25, 29).unwrap();
        let bg = Background::from_dataset(&s.data, 24, 4).unwrap();
        let f = nfv_ml::forest::RandomForest::fit(
            &s.data,
            &nfv_ml::forest::ForestParams {
                n_trees: 10,
                ..Default::default()
            },
            6,
            1,
        )
        .unwrap();
        let cfg = KernelShapConfig {
            n_coalitions: 300,
            ridge: 0.0,
            seed: 99,
        };
        let x = s.data.row(5).to_vec();
        let run = |threads: usize| {
            let mut ws = crate::background::CoalitionWorkspace::default();
            ws.set_parallelism(crate::background::ParCoalitionConfig {
                threads,
                min_coalitions: 32,
            });
            kernel_shap_with(&f, &x, &bg, &names(10), &cfg, &mut ws).unwrap()
        };
        let serial = run(1);
        for threads in [2usize, 4, 7] {
            let par = run(threads);
            assert_eq!(serial.prediction.to_bits(), par.prediction.to_bits());
            assert_eq!(serial.base_value.to_bits(), par.base_value.to_bits());
            for (a, b) in serial.values.iter().zip(&par.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn planned_kernel_shap_is_bit_identical_to_direct() {
        use crate::background::FusedBlock;
        let s = friedman1(150, 9, 0.2, 13).unwrap();
        let bg = Background::from_dataset(&s.data, 10, 3).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let base_hint = bg.expected_output(&t);
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        // Three requests (different inputs, seeds, and budgets) fused into
        // one block must each match their direct computation bit-for-bit.
        let reqs: Vec<(Vec<f64>, KernelShapConfig)> =
            [(0usize, 48usize, 5u64), (4, 64, 9), (7, 32, 2)]
                .iter()
                .map(|&(row, n, seed)| {
                    (
                        s.data.row(row).to_vec(),
                        KernelShapConfig {
                            n_coalitions: n,
                            ridge: 1e-8,
                            seed,
                        },
                    )
                })
                .collect();
        let direct: Vec<Attribution> = reqs
            .iter()
            .map(|(x, cfg)| kernel_shap_with(&t, x, &bg, &names(9), cfg, &mut ws).unwrap())
            .collect();
        let plans: Vec<KernelShapPlan> = reqs
            .iter()
            .map(|(x, cfg)| {
                kernel_shap_plan(&t, x, &bg, cfg, Some(base_hint), &mut ws, &mut block).unwrap()
            })
            .collect();
        block.evaluate(&t);
        for (p, dir) in plans.iter().zip(&direct) {
            let fused = kernel_shap_finish(p, &block, &names(9)).unwrap();
            assert_eq!(fused.base_value.to_bits(), dir.base_value.to_bits());
            assert_eq!(fused.prediction.to_bits(), dir.prediction.to_bits());
            for (a, b) in fused.values.iter().zip(&dir.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "fusion changed a result bit");
            }
        }
    }

    #[test]
    fn planned_single_feature_and_errors_mirror_direct() {
        use crate::background::FusedBlock;
        let bg = Background::from_rows(vec![vec![0.0], vec![2.0]]).unwrap();
        let model = FnModel::new(1, |x: &[f64]| 3.0 * x[0]);
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let p = kernel_shap_plan(
            &model,
            &[4.0],
            &bg,
            &KernelShapConfig::for_features(1),
            None,
            &mut ws,
            &mut block,
        )
        .unwrap();
        assert_eq!(p.n_rows(), 0, "d=1 stacks nothing");
        block.evaluate(&model);
        let a = kernel_shap_finish(&p, &block, &names(1)).unwrap();
        assert!((a.values[0] - (12.0 - 3.0)).abs() < 1e-12);
        // Zero budget errors at plan time, like the direct path.
        let bg2 = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let m2 = FnModel::new(2, |x: &[f64]| x[0]);
        assert!(kernel_shap_plan(
            &m2,
            &[1.0, 2.0],
            &bg2,
            &KernelShapConfig {
                n_coalitions: 0,
                ridge: 0.0,
                seed: 0
            },
            None,
            &mut ws,
            &mut block,
        )
        .is_err());
    }

    #[test]
    fn enumerate_size_yields_binomial_count() {
        let mut n = 0;
        enumerate_size(6, 3, &mut |m: &Vec<bool>| {
            assert_eq!(m.iter().filter(|&&b| b).count(), 3);
            n += 1;
        });
        assert_eq!(n, 20);
        let mut n1 = 0;
        enumerate_size(5, 1, &mut |_| n1 += 1);
        assert_eq!(n1, 5);
        let mut n4 = 0;
        enumerate_size(5, 4, &mut |_| n4 += 1);
        assert_eq!(n4, 5);
    }
}
