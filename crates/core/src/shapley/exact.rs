//! Exact Shapley values by full coalition enumeration.
//!
//! Cost: `2^d` coalition values, each averaging over the background set —
//! the gold standard that the sampling methods (and Table 3) are scored
//! against, feasible up to `d ≤ MAX_EXACT_FEATURES`.

use crate::background::{Background, CoalitionPlan, CoalitionWorkspace, FusedBlock};
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_ml::model::Regressor;

/// Hard feature-count cap for exact enumeration (2^20 coalition values).
pub const MAX_EXACT_FEATURES: usize = 20;

/// Folds the full table of coalition values `v` (indexed by membership
/// mask) into Shapley values with the factorial weights. Shared by the
/// direct and planned paths so both reduce with identical arithmetic.
pub(crate) fn phi_from_mask_values(v: &[f64], d: usize) -> Vec<f64> {
    // Shapley weights w(s) = s!(d−s−1)!/d! indexed by |S| (coalition size
    // before adding the player).
    let mut fact = vec![1.0f64; d + 1];
    for i in 1..=d {
        fact[i] = fact[i - 1] * i as f64;
    }
    let weight = |s: usize| fact[s] * fact[d - s - 1] / fact[d];

    let mut phi = vec![0.0; d];
    for (mask, &v_s) in v.iter().enumerate() {
        let s = mask.count_ones() as usize;
        if s == d {
            continue;
        }
        let w = weight(s);
        for (i, p) in phi.iter_mut().enumerate() {
            if (mask >> i) & 1 == 0 {
                *p += w * (v[mask | (1 << i)] - v_s);
            }
        }
    }
    phi
}

/// Computes exact Shapley values of `model` at `x` against `background`.
///
/// `names` labels the features of the resulting [`Attribution`].
pub fn exact_shapley(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
) -> Result<Attribution, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if d > MAX_EXACT_FEATURES {
        return Err(XaiError::Budget(format!(
            "exact Shapley limited to {MAX_EXACT_FEATURES} features, got {d}"
        )));
    }
    if background.n_features() != d || names.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}, names {}",
            background.n_features(),
            names.len()
        )));
    }

    // v(S) for every coalition mask, evaluated in blocks so each model
    // call covers many composites (coalition index == mask).
    let n_masks = 1usize << d;
    let mut v = Vec::with_capacity(n_masks);
    let mut ws = CoalitionWorkspace::default();
    background.coalition_values_into(
        model,
        x,
        n_masks,
        |mask, members| {
            for (j, m) in members.iter_mut().enumerate() {
                *m = (mask >> j) & 1 == 1;
            }
        },
        &mut ws,
        &mut v,
    );

    Ok(Attribution {
        names: names.to_vec(),
        values: phi_from_mask_values(&v, d),
        base_value: v[0],
        prediction: v[n_masks - 1],
        method: "exact-shapley".into(),
    })
}

/// The plan half of exact Shapley for cross-request fusion: materializes
/// all `2^d` coalition composites into the shared block without
/// evaluating. The model is not consulted at all — base value and
/// prediction fall out of the coalition table at finish time.
#[derive(Debug, Clone, Copy)]
pub struct ExactShapPlan {
    plan: CoalitionPlan,
    d: usize,
}

impl ExactShapPlan {
    /// Composite rows this plan occupies in its block.
    pub fn n_rows(&self) -> usize {
        self.plan.n_rows()
    }
}

/// Builds an [`ExactShapPlan`] for `x`, appending its composite rows to
/// `block`. Guards mirror [`exact_shapley`]. Note the row cost:
/// `2^d × background.len()` rows — callers fusing many requests should
/// budget accordingly.
pub fn exact_shapley_plan(
    x: &[f64],
    background: &Background,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) -> Result<ExactShapPlan, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if d > MAX_EXACT_FEATURES {
        return Err(XaiError::Budget(format!(
            "exact Shapley limited to {MAX_EXACT_FEATURES} features, got {d}"
        )));
    }
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}",
            background.n_features()
        )));
    }
    let plan = background.plan_coalitions(
        x,
        1usize << d,
        |mask, members| {
            for (j, m) in members.iter_mut().enumerate() {
                *m = (mask >> j) & 1 == 1;
            }
        },
        ws,
        block,
    );
    Ok(ExactShapPlan { plan, d })
}

/// Completes an [`ExactShapPlan`] against its evaluated block with the
/// exact reduction of [`exact_shapley`] — results are bit-identical.
pub fn exact_shapley_finish(
    plan: &ExactShapPlan,
    block: &FusedBlock,
    names: &[String],
) -> Result<Attribution, XaiError> {
    if names.len() != plan.d {
        return Err(XaiError::Input(format!(
            "shape mismatch: plan has {} features, names {}",
            plan.d,
            names.len()
        )));
    }
    let mut v = Vec::with_capacity(1usize << plan.d);
    plan.plan.values_into(block, &mut v);
    Ok(Attribution {
        names: names.to_vec(),
        values: phi_from_mask_values(&v, plan.d),
        base_value: v[0],
        prediction: v[v.len() - 1],
        method: "exact-shapley".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn linear_model_matches_closed_form() {
        // f(x) = 3x0 − 2x1 + x2; independent background → φ_i = w_i(x_i − μ_i).
        let s = linear_gaussian(400, 3, 0, 0.0, 1).unwrap();
        let bg = Background::from_dataset(&s.data, 100, 0).unwrap();
        let model = FnModel::new(3, |x: &[f64]| 3.0 * x[0] - 2.0 * x[1] + x[2]);
        let x = [1.0, -0.5, 2.0];
        let attr = exact_shapley(&model, &x, &bg, &names(3)).unwrap();
        for i in 0..3 {
            let w = [3.0, -2.0, 1.0][i];
            let expect = w * (x[i] - bg.means[i]);
            assert!(
                (attr.values[i] - expect).abs() < 1e-9,
                "phi[{i}]={} expect {expect}",
                attr.values[i]
            );
        }
        assert!(attr.efficiency_gap().abs() < 1e-9);
    }

    #[test]
    fn symmetry_axiom_holds() {
        // f symmetric in x0, x1; identical inputs ⇒ identical attributions.
        let bg = Background::from_rows(vec![vec![0.0, 0.0, 5.0], vec![1.0, 1.0, 7.0]]).unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] * x[1] + x[2]);
        let attr = exact_shapley(&model, &[2.0, 2.0, 1.0], &bg, &names(3)).unwrap();
        assert!(
            (attr.values[0] - attr.values[1]).abs() < 1e-12,
            "{:?}",
            attr.values
        );
    }

    #[test]
    fn dummy_axiom_holds() {
        // Feature 2 never enters f ⇒ φ₂ = 0.
        let bg = Background::from_rows(vec![vec![0.0, 1.0, 9.0], vec![2.0, 3.0, -4.0]]).unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0].powi(2) + x[1]);
        let attr = exact_shapley(&model, &[3.0, 1.0, 100.0], &bg, &names(3)).unwrap();
        assert!(attr.values[2].abs() < 1e-12);
    }

    #[test]
    fn interaction_credit_is_split_evenly() {
        // f = x0·x1 at x=(1,1) with all-zero background: v({0})=v({1})=0,
        // v({0,1})=1 → φ0 = φ1 = 0.5.
        let bg = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0] * x[1]);
        let attr = exact_shapley(&model, &[1.0, 1.0], &bg, &names(2)).unwrap();
        assert!((attr.values[0] - 0.5).abs() < 1e-12);
        assert!((attr.values[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_on_a_nonlinear_model() {
        let s = friedman1(300, 6, 0.1, 2).unwrap();
        let bg = Background::from_dataset(&s.data, 25, 1).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let x = s.data.row(5).to_vec();
        let attr = exact_shapley(&t, &x, &bg, &names(6)).unwrap();
        assert!(
            attr.efficiency_gap().abs() < 1e-9,
            "{}",
            attr.efficiency_gap()
        );
        assert!((attr.prediction - nfv_ml::model::Regressor::predict(&t, &x)).abs() < 1e-9);
    }

    #[test]
    fn guards_reject_bad_inputs() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        assert!(exact_shapley(&model, &[], &bg, &[]).is_err());
        assert!(
            exact_shapley(&model, &[1.0], &bg, &names(1)).is_err(),
            "bg mismatch"
        );
        assert!(
            exact_shapley(&model, &[1.0, 2.0], &bg, &names(3)).is_err(),
            "names mismatch"
        );
        let big = vec![0.0; MAX_EXACT_FEATURES + 1];
        let bg_big = Background::from_rows(vec![big.clone()]).unwrap();
        let model_big = FnModel::new(big.len(), |x: &[f64]| x[0]);
        assert!(exact_shapley(&model_big, &big, &bg_big, &names(big.len())).is_err());
    }
}
