//! Monte-Carlo Shapley by permutation sampling (Castro et al., 2009),
//! with optional antithetic variates (each sampled permutation is also
//! walked in reverse, which cancels a large part of the positional
//! variance at no extra model-evaluation cost per unit of information).

use crate::background::{Background, FusedBlock};
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for permutation-sampling Shapley.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Number of permutations to draw (each costs `d + 1` model
    /// evaluations; with antithetics, `2(d + 1)` but counts double).
    pub n_permutations: usize,
    /// Pair each permutation with its reverse.
    pub antithetic: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            n_permutations: 200,
            antithetic: true,
            seed: 0,
        }
    }
}

/// Estimates Shapley values of `model` at `x` by permutation sampling.
///
/// For each permutation π and a background row b, features are switched
/// from b's values to x's in π order; the output delta when feature `i`
/// switches is an unbiased draw of φ_i.
pub fn sampling_shapley(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
    cfg: &SamplingConfig,
) -> Result<Attribution, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if background.n_features() != d || names.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}, names {}",
            background.n_features(),
            names.len()
        )));
    }
    if cfg.n_permutations == 0 {
        return Err(XaiError::Budget("n_permutations must be positive".into()));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut phi = vec![0.0; d];
    let mut n_samples = 0usize;
    let mut perm: Vec<usize> = (0..d).collect();
    let mut composite = vec![0.0; d];
    let mut walk_rows: Vec<f64> = Vec::with_capacity((d + 1) * d);

    // One walk = d + 1 composites (background row, then one feature of x
    // revealed per step). Materialize them all and issue a single
    // `predict_batch` call; the step deltas are consecutive differences.
    // Bit-identical to the scalar walk: each composite row is the same, and
    // `predict_batch` preserves per-row `predict` arithmetic.
    let mut walk = |order: &[usize], b: &[f64], phi: &mut [f64]| {
        walk_rows.clear();
        composite.copy_from_slice(b);
        walk_rows.extend_from_slice(&composite);
        for &j in order {
            composite[j] = x[j];
            walk_rows.extend_from_slice(&composite);
        }
        let refs: Vec<&[f64]> = walk_rows.chunks(d).collect();
        let preds = model.predict_batch(&refs);
        for (k, &j) in order.iter().enumerate() {
            phi[j] += preds[k + 1] - preds[k];
        }
    };

    for _ in 0..cfg.n_permutations {
        perm.shuffle(&mut rng);
        let b_idx = rng.gen_range(0..background.len());
        let b = background.row(b_idx).to_vec();
        walk(&perm, &b, &mut phi);
        n_samples += 1;
        if cfg.antithetic {
            let rev: Vec<usize> = perm.iter().rev().copied().collect();
            walk(&rev, &b, &mut phi);
            n_samples += 1;
        }
    }
    for p in &mut phi {
        *p /= n_samples as f64;
    }

    let base_value = background.expected_output(model);
    Ok(Attribution {
        names: names.to_vec(),
        values: phi,
        base_value,
        prediction: model.predict(x),
        method: if cfg.antithetic {
            "sampling-shapley-antithetic".into()
        } else {
            "sampling-shapley".into()
        },
    })
}

/// The plan half of sampling Shapley for cross-request fusion: draws the
/// same permutations and background rows as [`sampling_shapley`] (the RNG
/// stream is identical) and stacks every walk's composite rows into the
/// shared block. [`sampling_shapley_finish`] then folds the step deltas
/// out of the evaluated block with the exact arithmetic of the direct
/// path — results are bit-identical.
#[derive(Debug, Clone)]
pub struct SamplingPlan {
    first_row: usize,
    /// Feature-reveal order of each walk (antithetic walks included).
    orders: Vec<Vec<usize>>,
    d: usize,
    base: f64,
    fx: f64,
    antithetic: bool,
}

impl SamplingPlan {
    /// Composite rows this plan occupies in its block.
    pub fn n_rows(&self) -> usize {
        self.orders.len() * (self.d + 1)
    }
}

/// Builds a [`SamplingPlan`] for `x`, appending its walk rows to `block`.
/// `base_hint`, when given, must be bit-equal to
/// `background.expected_output(model)`. Guards mirror
/// [`sampling_shapley`].
pub fn sampling_shapley_plan(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    cfg: &SamplingConfig,
    base_hint: Option<f64>,
    block: &mut FusedBlock,
) -> Result<SamplingPlan, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input(
            "cannot explain a zero-feature input".into(),
        ));
    }
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x has {d}, background {}",
            background.n_features()
        )));
    }
    if cfg.n_permutations == 0 {
        return Err(XaiError::Budget("n_permutations must be positive".into()));
    }
    let first_row = block.n_rows();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut perm: Vec<usize> = (0..d).collect();
    let mut composite = vec![0.0; d];
    let mut orders: Vec<Vec<usize>> =
        Vec::with_capacity(cfg.n_permutations * if cfg.antithetic { 2 } else { 1 });
    let mut plan_walk = |order: &[usize], b: &[f64], block: &mut FusedBlock| {
        composite.copy_from_slice(b);
        block.push_row(&composite);
        for &j in order {
            composite[j] = x[j];
            block.push_row(&composite);
        }
    };
    for _ in 0..cfg.n_permutations {
        perm.shuffle(&mut rng);
        let b_idx = rng.gen_range(0..background.len());
        let b = background.row(b_idx).to_vec();
        plan_walk(&perm, &b, block);
        orders.push(perm.clone());
        if cfg.antithetic {
            let rev: Vec<usize> = perm.iter().rev().copied().collect();
            plan_walk(&rev, &b, block);
            orders.push(rev);
        }
    }
    Ok(SamplingPlan {
        first_row,
        orders,
        d,
        base: base_hint.unwrap_or_else(|| background.expected_output(model)),
        fx: model.predict(x),
        antithetic: cfg.antithetic,
    })
}

/// Completes a [`SamplingPlan`] against its evaluated block: per-walk step
/// deltas are accumulated in the same walk and step order as
/// [`sampling_shapley`], so the result is bit-identical to the direct
/// path.
pub fn sampling_shapley_finish(
    plan: &SamplingPlan,
    block: &FusedBlock,
    names: &[String],
) -> Result<Attribution, XaiError> {
    if names.len() != plan.d {
        return Err(XaiError::Input(format!(
            "shape mismatch: plan has {} features, names {}",
            plan.d,
            names.len()
        )));
    }
    let end = plan.first_row + plan.n_rows();
    assert!(
        end <= block.preds().len(),
        "fused block not evaluated: plan needs rows {}..{end} but only {} predictions exist",
        plan.first_row,
        block.preds().len()
    );
    let mut phi = vec![0.0; plan.d];
    let mut row = plan.first_row;
    for order in &plan.orders {
        let preds = &block.preds()[row..row + order.len() + 1];
        for (k, &j) in order.iter().enumerate() {
            phi[j] += preds[k + 1] - preds[k];
        }
        row += order.len() + 1;
    }
    for p in &mut phi {
        *p /= plan.orders.len() as f64;
    }
    Ok(Attribution {
        names: names.to_vec(),
        values: phi,
        base_value: plan.base,
        prediction: plan.fx,
        method: if plan.antithetic {
            "sampling-shapley-antithetic".into()
        } else {
            "sampling-shapley".into()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::exact::exact_shapley;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn converges_to_exact_on_a_nonlinear_model() {
        let s = friedman1(300, 6, 0.1, 3).unwrap();
        let bg = Background::from_dataset(&s.data, 20, 1).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let x = s.data.row(7).to_vec();
        let exact = exact_shapley(&t, &x, &bg, &names(6)).unwrap();
        let approx = sampling_shapley(
            &t,
            &x,
            &bg,
            &names(6),
            &SamplingConfig {
                n_permutations: 3_000,
                antithetic: true,
                seed: 1,
            },
        )
        .unwrap();
        let scale = exact
            .values
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        for (a, e) in approx.values.iter().zip(&exact.values) {
            assert!(
                (a - e).abs() / scale < 0.08,
                "approx {a} vs exact {e} (scale {scale})"
            );
        }
    }

    #[test]
    fn error_shrinks_with_more_permutations() {
        let s = friedman1(300, 6, 0.1, 4).unwrap();
        let bg = Background::from_dataset(&s.data, 15, 2).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let x = s.data.row(11).to_vec();
        let exact = exact_shapley(&t, &x, &bg, &names(6)).unwrap();
        let err_at = |n: usize| {
            let a = sampling_shapley(
                &t,
                &x,
                &bg,
                &names(6),
                &SamplingConfig {
                    n_permutations: n,
                    antithetic: false,
                    seed: 5,
                },
            )
            .unwrap();
            a.values
                .iter()
                .zip(&exact.values)
                .map(|(p, q)| (p - q).abs())
                .sum::<f64>()
                / 6.0
        };
        let coarse = err_at(8);
        let fine = err_at(2_000);
        assert!(
            fine < coarse * 0.5,
            "MAE should shrink: 8 perms {coarse}, 2000 perms {fine}"
        );
    }

    #[test]
    fn antithetic_reduces_positional_variance() {
        // Antithetics cancel *positional* variance, which only exists for
        // non-linear models (for linear f the walk order is irrelevant).
        // Compare at equal permutation counts on an interaction-heavy model;
        // the paired reverse walk is the free extra the estimator buys.
        let bg = Background::from_rows(
            (0..8)
                .map(|i| vec![i as f64 / 4.0, (8 - i) as f64 / 4.0, 0.3 * i as f64])
                .collect(),
        )
        .unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] * x[1] * x[2] + x[0] * x[0]);
        let x = [1.5, 2.5, 0.7];
        let spread = |antithetic: bool| {
            let mut first_phis = Vec::new();
            // 150 replications (not 40): the variance-of-variance at 40
            // seeds is large enough that a legitimate RNG-stream change
            // (e.g. the vendored xoshiro StdRng) can flip the comparison
            // by luck. At 150 seeds the ~2x positional-variance reduction
            // antithetics buy on this interaction-heavy model dominates
            // sampling noise for any healthy uniform stream.
            for seed in 0..150 {
                let a = sampling_shapley(
                    &model,
                    &x,
                    &bg,
                    &names(3),
                    &SamplingConfig {
                        n_permutations: 12,
                        antithetic,
                        seed,
                    },
                )
                .unwrap();
                first_phis.push(a.values[0]);
            }
            let m = first_phis.iter().sum::<f64>() / first_phis.len() as f64;
            first_phis.iter().map(|v| (v - m).powi(2)).sum::<f64>() / first_phis.len() as f64
        };
        let var_plain = spread(false);
        let var_anti = spread(true);
        assert!(
            var_anti < var_plain,
            "antithetic {var_anti} should beat plain {var_plain} at equal permutations"
        );
    }

    #[test]
    fn efficiency_holds_in_expectation() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0] * x[1] + 2.0 * x[0]);
        let a = sampling_shapley(
            &model,
            &[2.0, 3.0],
            &bg,
            &names(2),
            &SamplingConfig {
                n_permutations: 4_000,
                antithetic: true,
                seed: 2,
            },
        )
        .unwrap();
        // Permutation sampling is exactly efficient per-permutation up to
        // the background-row draw; with many draws the gap is tiny.
        assert!(a.efficiency_gap().abs() < 0.1, "{}", a.efficiency_gap());
    }

    #[test]
    fn guards_reject_bad_inputs() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        assert!(sampling_shapley(&model, &[], &bg, &[], &SamplingConfig::default()).is_err());
        assert!(sampling_shapley(
            &model,
            &[1.0, 2.0],
            &bg,
            &names(2),
            &SamplingConfig {
                n_permutations: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(
            sampling_shapley(&model, &[1.0], &bg, &names(1), &SamplingConfig::default()).is_err()
        );
    }

    #[test]
    fn planned_sampling_is_bit_identical_to_direct() {
        let s = friedman1(120, 5, 0.2, 17).unwrap();
        let bg = Background::from_dataset(&s.data, 8, 6).unwrap();
        let t = nfv_ml::tree::DecisionTree::fit(&s.data, &Default::default(), 0).unwrap();
        let base_hint = bg.expected_output(&t);
        let mut block = FusedBlock::default();
        // Two fused requests with different antithetic settings and seeds.
        let reqs = [
            (
                s.data.row(2).to_vec(),
                SamplingConfig {
                    n_permutations: 9,
                    antithetic: true,
                    seed: 4,
                },
            ),
            (
                s.data.row(8).to_vec(),
                SamplingConfig {
                    n_permutations: 13,
                    antithetic: false,
                    seed: 21,
                },
            ),
        ];
        let direct: Vec<Attribution> = reqs
            .iter()
            .map(|(x, cfg)| sampling_shapley(&t, x, &bg, &names(5), cfg).unwrap())
            .collect();
        let plans: Vec<SamplingPlan> = reqs
            .iter()
            .map(|(x, cfg)| {
                sampling_shapley_plan(&t, x, &bg, cfg, Some(base_hint), &mut block).unwrap()
            })
            .collect();
        assert_eq!(plans[0].n_rows(), 9 * 2 * 6, "9 antithetic pairs × (d+1)");
        block.evaluate(&t);
        for (p, dir) in plans.iter().zip(&direct) {
            let fused = sampling_shapley_finish(p, &block, &names(5)).unwrap();
            assert_eq!(fused.method, dir.method);
            assert_eq!(fused.base_value.to_bits(), dir.base_value.to_bits());
            assert_eq!(fused.prediction.to_bits(), dir.prediction.to_bits());
            for (a, b) in fused.values.iter().zip(&dir.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "fusion changed a result bit");
            }
        }
    }

    #[test]
    fn seeded_runs_reproduce() {
        let bg = Background::from_rows(vec![vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0].sin() + x[1]);
        let cfg = SamplingConfig {
            n_permutations: 50,
            antithetic: true,
            seed: 11,
        };
        let a = sampling_shapley(&model, &[1.0, 2.0], &bg, &names(2), &cfg).unwrap();
        let b = sampling_shapley(&model, &[1.0, 2.0], &bg, &names(2), &cfg).unwrap();
        assert_eq!(a, b);
    }
}
