//! The attribution type every explainer produces.

use serde::{Deserialize, Serialize};

/// A local feature-attribution explanation for one prediction.
///
/// Additive-attribution semantics (the SHAP family and LIME-as-effects both
/// satisfy it, the latter approximately): `base_value + Σ values ≈
/// prediction`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Feature names, aligned with `values`.
    pub names: Vec<String>,
    /// Signed per-feature contributions φ.
    pub values: Vec<f64>,
    /// Expected model output over the background (`E[f(X)]`).
    pub base_value: f64,
    /// Model output at the explained instance.
    pub prediction: f64,
    /// Which method produced this (for reports and evaluation bookkeeping).
    pub method: String,
}

impl Attribution {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the attribution covers no features.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Indices sorted by |φ| descending.
    pub fn order_by_magnitude(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&i, &j| {
            self.values[j]
                .abs()
                .partial_cmp(&self.values[i].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    /// The `k` most influential features as `(name, φ)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(&str, f64)> {
        self.order_by_magnitude()
            .into_iter()
            .take(k)
            .map(|i| (self.names[i].as_str(), self.values[i]))
            .collect()
    }

    /// Efficiency-axiom residual: `prediction − base_value − Σφ`.
    /// Exactly-efficient methods (exact Shapley, TreeSHAP, KernelSHAP with
    /// the constraint) keep this at numerical noise.
    pub fn efficiency_gap(&self) -> f64 {
        self.prediction - self.base_value - self.values.iter().sum::<f64>()
    }

    /// Absolute values (the usual global-importance aggregation input).
    pub fn magnitudes(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.abs()).collect()
    }
}

/// Aggregates local attributions into a global importance vector
/// (mean |φ| per feature). All attributions must share the feature count;
/// mismatching ones are skipped.
pub fn mean_absolute_attribution(attrs: &[Attribution]) -> Vec<f64> {
    let Some(first) = attrs.first() else {
        return Vec::new();
    };
    let d = first.len();
    let mut acc = vec![0.0; d];
    let mut n = 0usize;
    for a in attrs {
        if a.len() != d {
            continue;
        }
        for (s, v) in acc.iter_mut().zip(&a.values) {
            *s += v.abs();
        }
        n += 1;
    }
    if n > 0 {
        for s in &mut acc {
            *s /= n as f64;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(values: Vec<f64>) -> Attribution {
        Attribution {
            names: (0..values.len()).map(|i| format!("f{i}")).collect(),
            prediction: 1.0 + values.iter().sum::<f64>(),
            values,
            base_value: 1.0,
            method: "test".into(),
        }
    }

    #[test]
    fn ordering_and_top_k() {
        let a = attr(vec![0.1, -0.9, 0.5]);
        assert_eq!(a.order_by_magnitude(), vec![1, 2, 0]);
        let top = a.top_k(2);
        assert_eq!(top[0], ("f1", -0.9));
        assert_eq!(top[1], ("f2", 0.5));
        assert_eq!(a.top_k(99).len(), 3);
    }

    #[test]
    fn efficiency_gap_zero_when_constructed_consistent() {
        let a = attr(vec![0.2, 0.3]);
        assert!(a.efficiency_gap().abs() < 1e-12);
        let mut broken = a.clone();
        broken.prediction += 1.0;
        assert!((broken.efficiency_gap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_aggregation_averages_magnitudes() {
        let attrs = vec![attr(vec![1.0, -1.0]), attr(vec![3.0, 0.0])];
        let g = mean_absolute_attribution(&attrs);
        assert_eq!(g, vec![2.0, 0.5]);
        assert!(mean_absolute_attribution(&[]).is_empty());
    }

    #[test]
    fn mismatched_lengths_are_skipped() {
        let attrs = vec![attr(vec![1.0, 1.0]), attr(vec![9.0])];
        let g = mean_absolute_attribution(&attrs);
        assert_eq!(g, vec![1.0, 1.0]);
    }
}
