//! Global surrogate distillation: fit a shallow, readable decision tree to
//! the *model's own predictions* and report how faithfully it mimics them.
//! The surrogate-fidelity number is what tells an operator whether the
//! simple story is trustworthy.

use crate::XaiError;
use nfv_data::dataset::{Dataset, Task};
use nfv_ml::metrics;
use nfv_ml::model::Regressor;
use nfv_ml::tree::{DecisionTree, TreeParams};

/// A distilled global surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct Surrogate {
    /// The shallow tree mimicking the model.
    pub tree: DecisionTree,
    /// R² of the surrogate against the *model's* outputs on the distillation
    /// data (not against ground truth) — the fidelity of the simple story.
    pub fidelity_r2: f64,
}

/// Distills `model` into a depth-`max_depth` tree over the rows of `data`.
pub fn global_surrogate(
    model: &dyn Regressor,
    data: &Dataset,
    max_depth: usize,
) -> Result<Surrogate, XaiError> {
    if max_depth == 0 {
        return Err(XaiError::Input("surrogate depth must be positive".into()));
    }
    // Replace the targets with the model's predictions.
    let preds: Vec<f64> = data.rows().map(|r| model.predict(r)).collect();
    let distill = Dataset::new(
        data.names.clone(),
        data.x_flat().to_vec(),
        preds.clone(),
        Task::Regression,
    )
    .map_err(|e| XaiError::Input(e.to_string()))?;
    let tree = DecisionTree::fit(
        &distill,
        &TreeParams {
            max_depth,
            ..TreeParams::default()
        },
        0,
    )
    .map_err(|e| XaiError::Numeric(e.to_string()))?;
    let tree_preds: Vec<f64> = data.rows().map(|r| tree.output(r)).collect();
    let fidelity_r2 =
        metrics::r2(&preds, &tree_preds).map_err(|e| XaiError::Numeric(e.to_string()))?;
    Ok(Surrogate { tree, fidelity_r2 })
}

/// Renders the surrogate tree as an indented rule list — the operator-
/// facing artifact.
pub fn render_rules(surrogate: &Surrogate, names: &[String]) -> String {
    fn walk(tree: &DecisionTree, i: usize, names: &[String], indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let n = &tree.nodes[i];
        if n.is_leaf {
            out.push_str(&format!("{pad}→ predict {:.4} (n={})\n", n.value, n.cover));
            return;
        }
        let name = names
            .get(n.feature)
            .map(String::as_str)
            .unwrap_or("feature");
        out.push_str(&format!("{pad}if {name} <= {:.4}:\n", n.threshold));
        walk(tree, n.left as usize, names, indent + 1, out);
        out.push_str(&format!("{pad}else:  # {name} > {:.4}\n", n.threshold));
        walk(tree, n.right as usize, names, indent + 1, out);
    }
    let mut out = String::new();
    if !surrogate.tree.nodes.is_empty() {
        walk(&surrogate.tree, 0, names, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;
    use nfv_ml::prelude::*;

    #[test]
    fn surrogate_of_a_tree_friendly_model_is_faithful() {
        let s = friedman1(800, 6, 0.0, 91).unwrap();
        let model = FnModel::new(6, |x: &[f64]| if x[3] > 0.5 { 10.0 } else { 0.0 });
        let sur = global_surrogate(&model, &s.data, 3).unwrap();
        assert!(sur.fidelity_r2 > 0.99, "fidelity {}", sur.fidelity_r2);
    }

    #[test]
    fn deeper_surrogates_are_more_faithful() {
        let s = friedman1(800, 6, 0.3, 92).unwrap();
        let g = Gbdt::fit(&s.data, &GbdtParams::default(), 0).unwrap();
        let shallow = global_surrogate(&g, &s.data, 2).unwrap();
        let deep = global_surrogate(&g, &s.data, 6).unwrap();
        assert!(
            deep.fidelity_r2 > shallow.fidelity_r2,
            "deep {} vs shallow {}",
            deep.fidelity_r2,
            shallow.fidelity_r2
        );
    }

    #[test]
    fn rules_render_names_and_structure() {
        let s = friedman1(300, 5, 0.0, 93).unwrap();
        let model = FnModel::new(5, |x: &[f64]| if x[0] > 0.5 { 1.0 } else { 0.0 });
        let sur = global_surrogate(&model, &s.data, 2).unwrap();
        let names: Vec<String> = vec![
            "load".into(),
            "b".into(),
            "c".into(),
            "d".into(),
            "e".into(),
        ];
        let text = render_rules(&sur, &names);
        assert!(text.contains("if load <="), "{text}");
        assert!(text.contains("→ predict"), "{text}");
        assert!(text.contains("else"), "{text}");
    }

    #[test]
    fn guards() {
        let s = friedman1(50, 5, 0.0, 94).unwrap();
        let model = FnModel::new(5, |x: &[f64]| x[0]);
        assert!(global_surrogate(&model, &s.data, 0).is_err());
    }
}
