//! Objective evaluation of explanation quality: perturbation fidelity,
//! cross-method agreement, stability, and axiomatic checks.

pub mod axioms;
pub mod fidelity;
pub mod rank;
pub mod roar;
pub mod stability;

pub use axioms::{check_axioms, AxiomReport};
pub use fidelity::{
    deletion_curve, fidelity_summary, insertion_curve, FidelityCurve, FidelitySummary,
};
pub use rank::{agreement, attribution_mae, mean_agreement, Agreement};
pub use roar::{roar, RoarCurve};
pub use stability::{stability, Stability, StabilityConfig};
