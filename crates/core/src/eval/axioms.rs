//! Axiomatic checks: empirical verification that an explanation method
//! satisfies (or how badly it violates) the Shapley axioms on a given
//! model/instance — efficiency, symmetry, dummy, and linearity.

use crate::background::Background;
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_ml::model::{FnModel, Regressor};

/// An explainer under axiomatic test: maps (model, x, background) to an
/// attribution. The battery supplies the background so it can symmetrize it
/// for the exchangeability probe.
pub type ExplainerFn<'a> =
    dyn Fn(&dyn Regressor, &[f64], &Background) -> Result<Attribution, XaiError> + 'a;

/// Result of the axiom battery. Each field is a violation magnitude
/// (0 = axiom satisfied up to numerics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxiomReport {
    /// |prediction − base − Σφ| on the probe model.
    pub efficiency_gap: f64,
    /// |φ_i − φ_j| for two exchangeable features given equal inputs.
    pub symmetry_gap: f64,
    /// |φ_dummy| for a feature the probe model ignores.
    pub dummy_gap: f64,
    /// ‖φ(f+g) − φ(f) − φ(g)‖∞ on two probe models.
    pub linearity_gap: f64,
}

impl AxiomReport {
    /// True when every gap is below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.efficiency_gap < tol
            && self.symmetry_gap < tol
            && self.dummy_gap < tol
            && self.linearity_gap < tol
    }
}

/// Runs the axiom battery on `explain` with canonical 4-feature probe
/// models evaluated at a fixed instance against `background` (which must
/// have 4 features). For the symmetry probe the background is symmetrized
/// in features 0/1 (each row plus its swapped copy) so the two features are
/// genuinely exchangeable.
pub fn check_axioms(
    explain: &ExplainerFn<'_>,
    background: &Background,
) -> Result<AxiomReport, XaiError> {
    if background.n_features() != 4 {
        return Err(XaiError::Input(
            "axiom battery expects a 4-feature background".into(),
        ));
    }
    let x = [1.5, 1.5, -0.5, 2.0];

    // f: symmetric in (0, 1), ignores 3 (dummy).
    let f = FnModel::new(4, |x: &[f64]| x[0] * x[1] + x[2]);
    let attr_f = explain(&f, &x, background)?;
    let efficiency_gap = attr_f.efficiency_gap().abs();
    let dummy_gap = attr_f.values[3].abs();

    // Symmetry needs an exchangeable background: add swapped copies.
    let mut sym_rows: Vec<Vec<f64>> = background.rows().to_vec();
    for r in background.rows() {
        sym_rows.push(vec![r[1], r[0], r[2], r[3]]);
    }
    let sym_bg = Background::from_rows(sym_rows)?;
    let attr_sym = explain(&f, &x, &sym_bg)?;
    let symmetry_gap = (attr_sym.values[0] - attr_sym.values[1]).abs();

    // Linearity: φ(f+g) = φ(f) + φ(g).
    let g = FnModel::new(4, |x: &[f64]| 2.0 * x[3] - x[0]);
    let attr_g = explain(&g, &x, background)?;
    let fg = FnModel::new(4, |x: &[f64]| (x[0] * x[1] + x[2]) + (2.0 * x[3] - x[0]));
    let attr_fg = explain(&fg, &x, background)?;
    if attr_f.len() != 4 || attr_g.len() != 4 || attr_fg.len() != 4 {
        return Err(XaiError::Numeric(
            "explainer returned wrong dimension".into(),
        ));
    }
    let linearity_gap = (0..4)
        .map(|i| (attr_fg.values[i] - attr_f.values[i] - attr_g.values[i]).abs())
        .fold(0.0f64, f64::max);

    Ok(AxiomReport {
        efficiency_gap,
        symmetry_gap,
        dummy_gap,
        linearity_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lime::{lime, LimeConfig};
    use crate::shapley::exact::exact_shapley;
    use crate::shapley::kernel::{kernel_shap, KernelShapConfig};
    use crate::shapley::sampling::{sampling_shapley, SamplingConfig};

    fn bg() -> Background {
        Background::from_rows(vec![
            vec![0.0, 1.0, 0.5, -1.0],
            vec![1.0, 0.0, -0.5, 1.0],
            vec![0.5, 0.5, 0.0, 0.0],
            vec![-1.0, 2.0, 1.0, 0.5],
        ])
        .unwrap()
    }

    fn names() -> Vec<String> {
        (0..4).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn exact_shapley_passes_all_axioms() {
        let b = bg();
        let r = check_axioms(&|m, x, bgr| exact_shapley(m, x, bgr, &names()), &b).unwrap();
        assert!(r.passes(1e-9), "{r:?}");
    }

    #[test]
    fn kernel_shap_at_full_budget_passes() {
        let b = bg();
        let r = check_axioms(
            &|m, x, bgr| {
                kernel_shap(
                    m,
                    x,
                    bgr,
                    &names(),
                    &KernelShapConfig {
                        n_coalitions: 16,
                        ridge: 0.0,
                        seed: 0,
                    },
                )
            },
            &b,
        )
        .unwrap();
        assert!(r.efficiency_gap < 1e-9, "{r:?}");
        assert!(r.dummy_gap < 1e-6, "{r:?}");
        assert!(r.linearity_gap < 1e-6, "{r:?}");
    }

    #[test]
    fn sampling_shapley_is_approximately_axiomatic() {
        let b = bg();
        let r = check_axioms(
            &|m, x, bgr| {
                sampling_shapley(
                    m,
                    x,
                    bgr,
                    &names(),
                    &SamplingConfig {
                        n_permutations: 2_000,
                        antithetic: true,
                        seed: 1,
                    },
                )
            },
            &b,
        )
        .unwrap();
        assert!(r.efficiency_gap < 0.05, "{r:?}");
        assert!(r.dummy_gap < 0.05, "{r:?}");
        assert!(r.linearity_gap < 0.1, "{r:?}");
    }

    #[test]
    fn lime_violates_efficiency_but_not_dummy() {
        // The local surrogate has no efficiency constraint — the battery
        // quantifies that honestly, while the dummy feature still gets ~0.
        let b = bg();
        let r = check_axioms(
            &|m, x, bgr| lime(m, x, bgr, &names(), &LimeConfig::default()).map(|e| e.attribution),
            &b,
        )
        .unwrap();
        assert!(r.dummy_gap < 0.05, "{r:?}");
        // Interaction model at x0·x1 with curvature: LIME's linearization
        // generally misses efficiency; do not assert a tight bound, just
        // that the report is finite and the gap measurable.
        assert!(r.efficiency_gap.is_finite());
    }

    #[test]
    fn wrong_background_width_is_rejected() {
        let b = Background::from_rows(vec![vec![0.0, 1.0]]).unwrap();
        assert!(check_axioms(&|m, x, bgr| exact_shapley(m, x, bgr, &[]), &b).is_err());
    }
}
