//! Explanation stability: how much does the attribution move when the
//! input barely does — the (empirical) local-Lipschitz criterion of
//! Alvarez-Melis & Jaakkola (2018).

use crate::XaiError;
use rand::rngs::StdRng;

/// The explanation closure probed by [`stability`]: input row → attribution
/// values.
pub type ExplainFn<'a> = dyn FnMut(&[f64]) -> Result<Vec<f64>, XaiError> + 'a;
use rand::Rng;
use rand::SeedableRng;

/// Stability probe configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityConfig {
    /// Number of perturbed neighbours.
    pub n_probes: usize,
    /// Perturbation radius per feature (uniform in ±radius·scale_j).
    pub radius: f64,
    /// Per-feature perturbation scales (typically the background standard
    /// deviations, so `radius` means "fractions of a std"). Empty = all 1.
    pub scales: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        Self {
            n_probes: 20,
            radius: 0.05,
            scales: Vec::new(),
            seed: 0,
        }
    }
}

/// Result of a stability probe.
#[derive(Debug, Clone, PartialEq)]
pub struct Stability {
    /// Max over probes of ‖φ(x') − φ(x)‖ / ‖x' − x‖ — the empirical local
    /// Lipschitz constant. Lower = more stable.
    pub lipschitz: f64,
    /// Mean over probes of the same ratio.
    pub mean_ratio: f64,
}

fn l2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Probes the stability of `explain` around `x`. `explain` maps an input
/// row to its attribution values (any method; errors propagate).
pub fn stability(
    x: &[f64],
    explain: &mut ExplainFn<'_>,
    cfg: &StabilityConfig,
) -> Result<Stability, XaiError> {
    if x.is_empty() {
        return Err(XaiError::Input("empty instance".into()));
    }
    if cfg.n_probes == 0 || cfg.radius <= 0.0 {
        return Err(XaiError::Input(
            "n_probes and radius must be positive".into(),
        ));
    }
    if !cfg.scales.is_empty() && cfg.scales.len() != x.len() {
        return Err(XaiError::Input(format!(
            "scales has {} entries for {} features",
            cfg.scales.len(),
            x.len()
        )));
    }
    let phi0 = explain(x)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut max_ratio = 0.0f64;
    let mut sum_ratio = 0.0;
    let mut probe = x.to_vec();
    for _ in 0..cfg.n_probes {
        for (j, (p, &xi)) in probe.iter_mut().zip(x).enumerate() {
            let scale = cfg.scales.get(j).copied().unwrap_or(1.0);
            *p = xi + rng.gen_range(-cfg.radius..cfg.radius) * scale;
        }
        let phi = explain(&probe)?;
        if phi.len() != phi0.len() {
            return Err(XaiError::Numeric(
                "explanation dimension changed between probes".into(),
            ));
        }
        let dx = l2(&probe, x).max(1e-12);
        let dphi = l2(&phi, &phi0);
        let ratio = dphi / dx;
        max_ratio = max_ratio.max(ratio);
        sum_ratio += ratio;
    }
    Ok(Stability {
        lipschitz: max_ratio,
        mean_ratio: sum_ratio / cfg.n_probes as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_attribution_has_bounded_lipschitz() {
        // φ(x) = w ⊙ x — Lipschitz constant is bounded by max|w| per axis,
        // and ‖φ(x')−φ(x)‖ ≤ max|w|·‖x'−x‖.
        let w = [3.0, -1.0, 0.5];
        let mut explain = |x: &[f64]| -> Result<Vec<f64>, XaiError> {
            Ok(x.iter().zip(&w).map(|(a, b)| a * b).collect())
        };
        let s = stability(&[1.0, 2.0, 3.0], &mut explain, &StabilityConfig::default()).unwrap();
        assert!(s.lipschitz <= 3.0 + 1e-9, "{}", s.lipschitz);
        assert!(s.mean_ratio <= s.lipschitz);
        assert!(s.mean_ratio > 0.0);
    }

    #[test]
    fn constant_explanation_is_perfectly_stable() {
        let mut explain = |_: &[f64]| Ok(vec![1.0, 2.0]);
        let s = stability(&[0.0, 0.0], &mut explain, &StabilityConfig::default()).unwrap();
        assert_eq!(s.lipschitz, 0.0);
        assert_eq!(s.mean_ratio, 0.0);
    }

    #[test]
    fn discontinuous_explanation_is_flagged_unstable() {
        // A hard jump at x0 = 0 creates huge ratios when probes cross it.
        let mut explain = |x: &[f64]| Ok(vec![if x[0] > 0.0 { 100.0 } else { -100.0 }]);
        let s = stability(
            &[0.0],
            &mut explain,
            &StabilityConfig {
                n_probes: 50,
                radius: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(s.lipschitz > 1_000.0, "{}", s.lipschitz);
    }

    #[test]
    fn errors_propagate_and_guards_hold() {
        let mut boom = |_: &[f64]| Err(XaiError::Numeric("boom".into()));
        assert!(stability(&[1.0], &mut boom, &StabilityConfig::default()).is_err());
        let mut ok = |_: &[f64]| Ok(vec![0.0]);
        assert!(stability(&[], &mut ok, &StabilityConfig::default()).is_err());
        assert!(stability(
            &[1.0],
            &mut ok,
            &StabilityConfig {
                n_probes: 0,
                ..Default::default()
            }
        )
        .is_err());
        // Dimension change detection.
        let mut flip = {
            let mut first = true;
            move |_: &[f64]| {
                if first {
                    first = false;
                    Ok(vec![1.0])
                } else {
                    Ok(vec![1.0, 2.0])
                }
            }
        };
        assert!(stability(&[1.0], &mut flip, &StabilityConfig::default()).is_err());
    }
}
