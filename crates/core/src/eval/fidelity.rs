//! Perturbation-based explanation fidelity: deletion and insertion curves.
//!
//! Deletion: replace features with their background means in decreasing
//! attribution order and watch the prediction collapse — a good explanation
//! collapses it fast (low AUC). Insertion: start from the all-mean input
//! and restore features in the same order — a good explanation recovers the
//! prediction fast (high AUC). Both AUCs are normalized to [0, 1] in the
//! fraction-of-features axis.

use crate::background::Background;
use crate::XaiError;
use nfv_ml::model::Regressor;

/// One fidelity curve: model outputs after mutating 0..=d features.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityCurve {
    /// `outputs[k]` = model output with `k` features mutated.
    pub outputs: Vec<f64>,
    /// Trapezoidal area under the curve over the unit interval.
    pub auc: f64,
}

fn auc_of(outputs: &[f64]) -> f64 {
    let n = outputs.len();
    if n < 2 {
        return outputs.first().copied().unwrap_or(0.0);
    }
    let step = 1.0 / (n - 1) as f64;
    outputs.windows(2).map(|w| 0.5 * (w[0] + w[1]) * step).sum()
}

fn curve(
    model: &dyn Regressor,
    x: &[f64],
    order: &[usize],
    background: &Background,
    insertion: bool,
) -> FidelityCurve {
    let d = x.len();
    let mut probe: Vec<f64> = if insertion {
        background.means.clone()
    } else {
        x.to_vec()
    };
    let mut outputs = Vec::with_capacity(d + 1);
    outputs.push(model.predict(&probe));
    for &j in order.iter().take(d) {
        probe[j] = if insertion { x[j] } else { background.means[j] };
        outputs.push(model.predict(&probe));
    }
    let auc = auc_of(&outputs);
    FidelityCurve { outputs, auc }
}

/// Deletion curve: mutate features of `x` to the background mean in the
/// given order (most-important-first for a real explanation).
pub fn deletion_curve(
    model: &dyn Regressor,
    x: &[f64],
    order: &[usize],
    background: &Background,
) -> Result<FidelityCurve, XaiError> {
    validate(x, order, background)?;
    Ok(curve(model, x, order, background, false))
}

/// Insertion curve: restore features of `x` from the background mean in
/// the given order.
pub fn insertion_curve(
    model: &dyn Regressor,
    x: &[f64],
    order: &[usize],
    background: &Background,
) -> Result<FidelityCurve, XaiError> {
    validate(x, order, background)?;
    Ok(curve(model, x, order, background, true))
}

fn validate(x: &[f64], order: &[usize], background: &Background) -> Result<(), XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input("empty instance".into()));
    }
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "background has {} features, x has {d}",
            background.n_features()
        )));
    }
    if order.len() != d {
        return Err(XaiError::Input(format!(
            "order has {} entries for {d} features",
            order.len()
        )));
    }
    let mut seen = vec![false; d];
    for &j in order {
        if j >= d || seen[j] {
            return Err(XaiError::Input(format!(
                "order is not a permutation (bad/duplicate index {j})"
            )));
        }
        seen[j] = true;
    }
    Ok(())
}

/// Deletion-minus-random score over a set of instances: mean AUC gap
/// between deleting in random order and deleting in the explanation's
/// order. Positive = the explanation orders features better than chance
/// (for predictions above the base value).
#[derive(Debug, Clone, PartialEq)]
pub struct FidelitySummary {
    /// Mean deletion AUC with the explanation's ordering.
    pub deletion_auc: f64,
    /// Mean insertion AUC with the explanation's ordering.
    pub insertion_auc: f64,
}

/// Averages deletion and insertion AUCs of `orderings[i]` applied to
/// `instances[i]`.
pub fn fidelity_summary(
    model: &dyn Regressor,
    instances: &[Vec<f64>],
    orderings: &[Vec<usize>],
    background: &Background,
) -> Result<FidelitySummary, XaiError> {
    if instances.is_empty() || instances.len() != orderings.len() {
        return Err(XaiError::Input(format!(
            "{} instances vs {} orderings",
            instances.len(),
            orderings.len()
        )));
    }
    let mut del = 0.0;
    let mut ins = 0.0;
    for (x, ord) in instances.iter().zip(orderings) {
        del += deletion_curve(model, x, ord, background)?.auc;
        ins += insertion_curve(model, x, ord, background)?.auc;
    }
    let n = instances.len() as f64;
    Ok(FidelitySummary {
        deletion_auc: del / n,
        insertion_auc: ins / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_ml::model::FnModel;

    fn bg() -> Background {
        // Means are zero.
        Background::from_rows(vec![vec![1.0, 1.0, 1.0], vec![-1.0, -1.0, -1.0]]).unwrap()
    }

    #[test]
    fn deleting_the_dominant_feature_first_collapses_fastest() {
        let model = FnModel::new(3, |x: &[f64]| 10.0 * x[0] + x[1] + 0.1 * x[2]);
        let x = [1.0, 1.0, 1.0];
        let good = deletion_curve(&model, &x, &[0, 1, 2], &bg()).unwrap();
        let bad = deletion_curve(&model, &x, &[2, 1, 0], &bg()).unwrap();
        assert!(
            good.auc < bad.auc,
            "informed deletion {} should undercut naive {}",
            good.auc,
            bad.auc
        );
        // Endpoints: starts at f(x), ends at f(means) = 0.
        assert!((good.outputs[0] - 11.1).abs() < 1e-12);
        assert!(good.outputs[3].abs() < 1e-12);
    }

    #[test]
    fn insertion_mirrors_deletion() {
        let model = FnModel::new(3, |x: &[f64]| 10.0 * x[0] + x[1] + 0.1 * x[2]);
        let x = [1.0, 1.0, 1.0];
        let good = insertion_curve(&model, &x, &[0, 1, 2], &bg()).unwrap();
        let bad = insertion_curve(&model, &x, &[2, 1, 0], &bg()).unwrap();
        assert!(
            good.auc > bad.auc,
            "informed insertion {} should dominate naive {}",
            good.auc,
            bad.auc
        );
        assert!(good.outputs[0].abs() < 1e-12);
        assert!((good.outputs[3] - 11.1).abs() < 1e-12);
    }

    #[test]
    fn auc_of_constant_curve_is_the_constant() {
        assert!((auc_of(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((auc_of(&[0.0, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(auc_of(&[7.0]), 7.0);
    }

    #[test]
    fn summary_averages_instances() {
        let model = FnModel::new(3, |x: &[f64]| x[0] + x[1] + x[2]);
        let instances = vec![vec![1.0, 1.0, 1.0], vec![2.0, 0.0, 0.0]];
        let orderings = vec![vec![0, 1, 2], vec![0, 1, 2]];
        let s = fidelity_summary(&model, &instances, &orderings, &bg()).unwrap();
        assert!(s.deletion_auc.is_finite() && s.insertion_auc.is_finite());
        assert!(fidelity_summary(&model, &instances, &orderings[..1], &bg()).is_err());
    }

    #[test]
    fn order_must_be_a_permutation() {
        let model = FnModel::new(3, |x: &[f64]| x[0]);
        let x = [1.0, 2.0, 3.0];
        assert!(deletion_curve(&model, &x, &[0, 0, 1], &bg()).is_err());
        assert!(deletion_curve(&model, &x, &[0, 1, 9], &bg()).is_err());
        assert!(deletion_curve(&model, &x, &[0, 1], &bg()).is_err());
        assert!(deletion_curve(&model, &[], &[], &bg()).is_err());
    }
}
