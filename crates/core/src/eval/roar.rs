//! ROAR — RemOve And Retrain (Hooker et al., 2019): the strictest test of
//! a global importance ranking. Deleting features and re-*evaluating* a
//! fixed model (deletion curves) can be fooled by off-manifold inputs;
//! ROAR instead *retrains* from scratch with the top-ranked features
//! destroyed. If accuracy collapses, the ranking truly pointed at the
//! information the task needs.

use crate::XaiError;
use nfv_data::dataset::Dataset;
use nfv_data::stats;

/// Result of a ROAR sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RoarCurve {
    /// Fractions of features removed, as given.
    pub fractions: Vec<f64>,
    /// Score of the retrained model at each fraction (index 0 is always
    /// the 0%-removed baseline).
    pub scores: Vec<f64>,
    /// Number of features removed at each fraction.
    pub removed: Vec<usize>,
}

impl RoarCurve {
    /// Area under the score-vs-fraction curve (trapezoid). For a ranking
    /// that finds the important features, this is LOW — the score collapses
    /// early.
    pub fn auc(&self) -> f64 {
        if self.fractions.len() < 2 {
            return self.scores.first().copied().unwrap_or(0.0);
        }
        let mut area = 0.0;
        for w in self.fractions.windows(2).zip(self.scores.windows(2)) {
            let (f, s) = w;
            area += 0.5 * (s[0] + s[1]) * (f[1] - f[0]);
        }
        let span = self.fractions.last().expect("len ≥ 2") - self.fractions[0];
        if span > 0.0 {
            area / span
        } else {
            self.scores[0]
        }
    }
}

/// Replaces the given feature columns by their dataset mean — destroying
/// their information while keeping the shape (so any model trains
/// unchanged).
fn destroy_features(data: &Dataset, features: &[usize]) -> Result<Dataset, XaiError> {
    let d = data.n_features();
    let mut means = vec![None; d];
    for &j in features {
        if j >= d {
            return Err(XaiError::Input(format!("feature {j} out of {d}")));
        }
        means[j] = Some(stats::mean(&data.column(j)));
    }
    let mut x = Vec::with_capacity(data.n_rows() * d);
    for row in data.rows() {
        for (j, &v) in row.iter().enumerate() {
            x.push(means[j].unwrap_or(v));
        }
    }
    Dataset::new(data.names.clone(), x, data.y.clone(), data.task)
        .map_err(|e| XaiError::Input(e.to_string()))
}

/// Runs ROAR: for each fraction, destroys that share of the top-ranked
/// features in both splits, calls `fit_score(train, test)` on the result,
/// and records the score.
///
/// `ranking` lists feature indices most-important-first (e.g. from
/// mean-|SHAP| or permutation importance); `fractions` must be
/// non-decreasing in [0, 1]. `fit_score` owns the model choice and the
/// metric (higher = better).
pub fn roar(
    train: &Dataset,
    test: &Dataset,
    ranking: &[usize],
    fractions: &[f64],
    fit_score: &dyn Fn(&Dataset, &Dataset) -> Result<f64, XaiError>,
) -> Result<RoarCurve, XaiError> {
    let d = train.n_features();
    if test.n_features() != d {
        return Err(XaiError::Input(format!(
            "train has {d} features, test {}",
            test.n_features()
        )));
    }
    if ranking.len() != d {
        return Err(XaiError::Input(format!(
            "ranking has {} entries for {d} features",
            ranking.len()
        )));
    }
    let mut seen = vec![false; d];
    for &j in ranking {
        if j >= d || seen[j] {
            return Err(XaiError::Input(format!(
                "ranking is not a permutation (bad/duplicate {j})"
            )));
        }
        seen[j] = true;
    }
    if fractions.is_empty()
        || fractions.windows(2).any(|w| w[1] < w[0])
        || fractions.iter().any(|f| !(0.0..=1.0).contains(f))
    {
        return Err(XaiError::Input(
            "fractions must be non-decreasing within [0, 1]".into(),
        ));
    }
    let mut scores = Vec::with_capacity(fractions.len());
    let mut removed = Vec::with_capacity(fractions.len());
    for &frac in fractions {
        let k = ((d as f64) * frac).round() as usize;
        let kill = &ranking[..k.min(d)];
        let tr = destroy_features(train, kill)?;
        let te = destroy_features(test, kill)?;
        scores.push(fit_score(&tr, &te)?);
        removed.push(kill.len());
    }
    Ok(RoarCurve {
        fractions: fractions.to_vec(),
        scores,
        removed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::prelude::*;

    fn fit_r2(train: &Dataset, test: &Dataset) -> Result<f64, XaiError> {
        let m = LinearRegression::fit(train, 1e-6).map_err(|e| XaiError::Numeric(e.to_string()))?;
        let preds: Vec<f64> = test.rows().map(|r| m.predict(r)).collect();
        metrics::r2(&test.y, &preds).map_err(|e| XaiError::Numeric(e.to_string()))
    }

    #[test]
    fn true_ranking_collapses_faster_than_reversed() {
        let s = linear_gaussian(1_200, 4, 4, 0.1, 91).unwrap();
        let (train, test) = s.data.split(0.3, 1).unwrap();
        // Ground-truth ranking: by |coefficient| descending, noise last.
        let mut truth: Vec<usize> = (0..8).collect();
        truth.sort_by(|&a, &b| s.coefficients[b].abs().total_cmp(&s.coefficients[a].abs()));
        let reversed: Vec<usize> = truth.iter().rev().copied().collect();
        let fr = [0.0, 0.25, 0.5, 0.75, 1.0];
        let good = roar(&train, &test, &truth, &fr, &fit_r2).unwrap();
        let bad = roar(&train, &test, &reversed, &fr, &fit_r2).unwrap();
        assert!(
            good.auc() < bad.auc() - 0.1,
            "true ranking AUC {} must undercut reversed {}",
            good.auc(),
            bad.auc()
        );
        // Both start at the same intact baseline.
        assert!((good.scores[0] - bad.scores[0]).abs() < 1e-9);
        // Everything removed → R² ≈ 0 for both.
        assert!(good.scores.last().unwrap().abs() < 0.05);
    }

    #[test]
    fn removing_noise_features_barely_hurts() {
        let s = linear_gaussian(1_000, 3, 5, 0.1, 92).unwrap();
        let (train, test) = s.data.split(0.3, 2).unwrap();
        // Rank the 5 noise features "most important" — destroying them
        // should leave the score intact at 5/8 removal.
        let ranking: Vec<usize> = (3..8).chain(0..3).collect();
        let curve = roar(&train, &test, &ranking, &[0.0, 5.0 / 8.0], &fit_r2).unwrap();
        assert!(
            curve.scores[1] > curve.scores[0] - 0.02,
            "noise removal cost too much: {:?}",
            curve.scores
        );
        assert_eq!(curve.removed, vec![0, 5]);
    }

    #[test]
    fn guards() {
        let s = linear_gaussian(100, 2, 1, 0.1, 93).unwrap();
        let (train, test) = s.data.split(0.3, 3).unwrap();
        let ranking = [0usize, 1, 2];
        assert!(
            roar(&train, &test, &ranking[..2], &[0.0], &fit_r2).is_err(),
            "short ranking"
        );
        assert!(
            roar(&train, &test, &[0, 0, 1], &[0.0], &fit_r2).is_err(),
            "duplicate"
        );
        assert!(
            roar(&train, &test, &ranking, &[], &fit_r2).is_err(),
            "no fractions"
        );
        assert!(
            roar(&train, &test, &ranking, &[0.5, 0.2], &fit_r2).is_err(),
            "decreasing"
        );
        assert!(
            roar(&train, &test, &ranking, &[1.5], &fit_r2).is_err(),
            "out of range"
        );
    }

    #[test]
    fn auc_degenerate_cases() {
        let c = RoarCurve {
            fractions: vec![0.0],
            scores: vec![0.7],
            removed: vec![0],
        };
        assert_eq!(c.auc(), 0.7);
        let flat = RoarCurve {
            fractions: vec![0.0, 1.0],
            scores: vec![0.5, 0.5],
            removed: vec![0, 2],
        };
        assert!((flat.auc() - 0.5).abs() < 1e-12);
    }
}
