//! Agreement between explanation methods: rank correlations and top-k
//! overlap of attribution vectors, aggregated over instances.

use crate::explanation::Attribution;
use crate::XaiError;
use nfv_data::stats;

/// Pairwise agreement between two attribution vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agreement {
    /// Spearman ρ of the signed values.
    pub spearman_signed: f64,
    /// Spearman ρ of the magnitudes (the usual "same ranking?" question).
    pub spearman_magnitude: f64,
    /// Kendall τ-b of the magnitudes.
    pub kendall_magnitude: f64,
    /// Top-3 overlap of the magnitudes.
    pub top3_overlap: f64,
}

/// Computes agreement between two attributions of the same instance.
pub fn agreement(a: &Attribution, b: &Attribution) -> Result<Agreement, XaiError> {
    if a.len() != b.len() || a.is_empty() {
        return Err(XaiError::Input(format!(
            "attribution lengths {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let ma = a.magnitudes();
    let mb = b.magnitudes();
    Ok(Agreement {
        spearman_signed: stats::spearman(&a.values, &b.values),
        spearman_magnitude: stats::spearman(&ma, &mb),
        kendall_magnitude: stats::kendall_tau(&ma, &mb),
        top3_overlap: stats::top_k_agreement(&ma, &mb, 3),
    })
}

/// Mean agreement across aligned instance lists from two methods.
pub fn mean_agreement(a: &[Attribution], b: &[Attribution]) -> Result<Agreement, XaiError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(XaiError::Input(format!(
            "attribution lists {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let mut acc = Agreement {
        spearman_signed: 0.0,
        spearman_magnitude: 0.0,
        kendall_magnitude: 0.0,
        top3_overlap: 0.0,
    };
    for (x, y) in a.iter().zip(b) {
        let g = agreement(x, y)?;
        acc.spearman_signed += g.spearman_signed;
        acc.spearman_magnitude += g.spearman_magnitude;
        acc.kendall_magnitude += g.kendall_magnitude;
        acc.top3_overlap += g.top3_overlap;
    }
    let n = a.len() as f64;
    acc.spearman_signed /= n;
    acc.spearman_magnitude /= n;
    acc.kendall_magnitude /= n;
    acc.top3_overlap /= n;
    Ok(acc)
}

/// Mean absolute error between attribution values (same scale assumed —
/// how Table 3 scores sampling methods against exact Shapley).
pub fn attribution_mae(a: &Attribution, b: &Attribution) -> Result<f64, XaiError> {
    if a.len() != b.len() || a.is_empty() {
        return Err(XaiError::Input(format!(
            "attribution lengths {} vs {}",
            a.len(),
            b.len()
        )));
    }
    Ok(a.values
        .iter()
        .zip(&b.values)
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / a.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(values: Vec<f64>) -> Attribution {
        Attribution {
            names: (0..values.len()).map(|i| format!("f{i}")).collect(),
            prediction: values.iter().sum::<f64>(),
            values,
            base_value: 0.0,
            method: "t".into(),
        }
    }

    #[test]
    fn identical_attributions_agree_perfectly() {
        let a = attr(vec![0.5, -0.2, 0.9, 0.0]);
        let g = agreement(&a, &a).unwrap();
        assert!((g.spearman_signed - 1.0).abs() < 1e-12);
        assert!((g.spearman_magnitude - 1.0).abs() < 1e-12);
        assert!((g.kendall_magnitude - 1.0).abs() < 1e-12);
        assert!((g.top3_overlap - 1.0).abs() < 1e-12);
        assert_eq!(attribution_mae(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn sign_flips_show_in_signed_but_not_magnitude() {
        let a = attr(vec![0.5, -0.2, 0.9]);
        let b = attr(vec![-0.5, 0.2, -0.9]);
        let g = agreement(&a, &b).unwrap();
        assert!(g.spearman_signed < 0.0);
        assert!((g.spearman_magnitude - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_agreement_averages() {
        let a = vec![attr(vec![1.0, 0.0]), attr(vec![0.0, 1.0])];
        let b = vec![attr(vec![1.0, 0.0]), attr(vec![1.0, 0.0])];
        let g = mean_agreement(&a, &b).unwrap();
        assert!((g.spearman_signed - 0.0).abs() < 1e-12, "(1 + −1)/2");
        assert!(mean_agreement(&a, &b[..1]).is_err());
        assert!(mean_agreement(&[], &[]).is_err());
    }

    #[test]
    fn mae_measures_scale() {
        let a = attr(vec![1.0, 2.0]);
        let b = attr(vec![1.5, 1.5]);
        assert!((attribution_mae(&a, &b).unwrap() - 0.5).abs() < 1e-12);
        assert!(attribution_mae(&a, &attr(vec![1.0])).is_err());
    }
}
