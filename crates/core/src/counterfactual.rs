//! Counterfactual explanations (Wachter et al., 2017): the smallest change
//! to an input that flips the model's decision — for an operator, the
//! *headroom* question: "how much more load until this chain violates?",
//! or inversely "what is the cheapest intervention that clears the alert?".
//!
//! The search is a deterministic multi-start projected coordinate descent:
//! no gradients are required (the models are trees more often than not),
//! feature boxes come from the background data, and a mask restricts the
//! search to *actionable* features (an operator cannot change the payload
//! size distribution, but can change CPU shares).

use crate::background::Background;
use crate::XaiError;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which direction the model output must cross `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossingDirection {
    /// Find x' with `f(x') <= threshold` (e.g., clear an alert).
    Below,
    /// Find x' with `f(x') >= threshold` (e.g., find the violation knee).
    Above,
}

/// Counterfactual search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterfactualConfig {
    /// Output threshold to cross.
    pub threshold: f64,
    /// Crossing direction.
    pub direction: CrossingDirection,
    /// `actionable[j]` = the search may move feature `j`. Empty = all
    /// features are actionable.
    pub actionable: Vec<bool>,
    /// Random restarts.
    pub n_restarts: usize,
    /// Coordinate-descent sweeps per restart.
    pub max_sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CounterfactualConfig {
    fn default() -> Self {
        Self {
            threshold: 0.5,
            direction: CrossingDirection::Below,
            actionable: Vec::new(),
            n_restarts: 4,
            max_sweeps: 30,
            seed: 0,
        }
    }
}

/// A found counterfactual.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterfactual {
    /// The counterfactual input.
    pub x_cf: Vec<f64>,
    /// Model output at `x_cf` (satisfies the crossing).
    pub prediction: f64,
    /// Per-feature deltas `x_cf − x`, in original units.
    pub deltas: Vec<f64>,
    /// L1 distance in background-std units (the sparsity-friendly cost the
    /// search minimized).
    pub cost: f64,
    /// Number of features actually changed (|delta| > 1e-9 · std).
    pub n_changed: usize,
}

fn satisfies(pred: f64, cfg: &CounterfactualConfig) -> bool {
    match cfg.direction {
        CrossingDirection::Below => pred <= cfg.threshold,
        CrossingDirection::Above => pred >= cfg.threshold,
    }
}

/// Searches for the minimal-cost counterfactual of `model` at `x`.
///
/// Returns `Ok(None)` when no restart finds a crossing inside the
/// background's feature boxes — itself useful information ("no actionable
/// change clears this alert").
pub fn counterfactual(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    cfg: &CounterfactualConfig,
) -> Result<Option<Counterfactual>, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input("empty instance".into()));
    }
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "background has {} features, x has {d}",
            background.n_features()
        )));
    }
    if !cfg.actionable.is_empty() && cfg.actionable.len() != d {
        return Err(XaiError::Input(format!(
            "actionable mask has {} entries for {d} features",
            cfg.actionable.len()
        )));
    }
    if cfg.n_restarts == 0 || cfg.max_sweeps == 0 {
        return Err(XaiError::Budget(
            "n_restarts and max_sweeps must be positive".into(),
        ));
    }
    let actionable = |j: usize| cfg.actionable.is_empty() || cfg.actionable[j];

    // Feature boxes and scales from the background.
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for r in background.rows() {
        for j in 0..d {
            lo[j] = lo[j].min(r[j]);
            hi[j] = hi[j].max(r[j]);
        }
    }
    let std: Vec<f64> = (0..d)
        .map(|j| {
            let col: Vec<f64> = background.rows().iter().map(|r| r[j]).collect();
            let s = nfv_data::stats::std_dev(&col);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        })
        .collect();
    let cost_of = |cand: &[f64]| -> f64 {
        cand.iter()
            .zip(x)
            .zip(&std)
            .map(|((c, xi), s)| (c - xi).abs() / s)
            .sum()
    };

    // Already satisfied: the zero-change counterfactual.
    let f0 = model.predict(x);
    if satisfies(f0, cfg) {
        return Ok(Some(Counterfactual {
            x_cf: x.to_vec(),
            prediction: f0,
            deltas: vec![0.0; d],
            cost: 0.0,
            n_changed: 0,
        }));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best: Option<Counterfactual> = None;
    for restart in 0..cfg.n_restarts {
        // Restart 0 starts at x (best for smooth models); later restarts
        // sample the actionable coordinates uniformly in the box, which is
        // what escapes the flat plateaus of tree models.
        let mut cand = x.to_vec();
        if restart > 0 {
            for j in 0..d {
                if actionable(j) && hi[j] > lo[j] {
                    cand[j] = rng.gen_range(lo[j]..hi[j]);
                }
            }
        }
        // Phase 1: greedily push single coordinates toward the crossing.
        let mut found = false;
        'sweeps: for sweep in 0..cfg.max_sweeps {
            let step = 0.5f64.powi((sweep / d.max(1)) as i32); // shrinking steps
            let mut improved = false;
            for j in 0..d {
                if !actionable(j) {
                    continue;
                }
                let cur = model.predict(&cand);
                if satisfies(cur, cfg) {
                    found = true;
                    break 'sweeps;
                }
                // Try both directions; keep the move that gets closer to the
                // threshold per unit of cost.
                let mut best_move: Option<(f64, f64)> = None; // (value, gap)
                for dir in [-1.0, 1.0] {
                    let v = (cand[j] + dir * step * std[j]).clamp(lo[j], hi[j]);
                    if v == cand[j] {
                        continue;
                    }
                    let old = cand[j];
                    cand[j] = v;
                    let p = model.predict(&cand);
                    cand[j] = old;
                    let gap = match cfg.direction {
                        CrossingDirection::Below => p - cfg.threshold,
                        CrossingDirection::Above => cfg.threshold - p,
                    };
                    if best_move.is_none() || gap < best_move.expect("set").1 {
                        best_move = Some((v, gap));
                    }
                }
                if let Some((v, gap)) = best_move {
                    let cur_gap = match cfg.direction {
                        CrossingDirection::Below => cur - cfg.threshold,
                        CrossingDirection::Above => cfg.threshold - cur,
                    };
                    if gap < cur_gap {
                        cand[j] = v;
                        improved = true;
                    }
                }
            }
            if satisfies(model.predict(&cand), cfg) {
                found = true;
                break;
            }
            if !improved {
                break; // stuck on a plateau; next restart
            }
        }
        if !found && !satisfies(model.predict(&cand), cfg) {
            continue;
        }
        // Phase 2: shrink back toward x feature-by-feature while the
        // crossing still holds (sparsifies and minimizes cost). Full revert
        // first (sparsity), then a bisection for the largest safe revert.
        for _ in 0..3 {
            for j in 0..d {
                if cand[j] == x[j] {
                    continue;
                }
                let moved = cand[j];
                cand[j] = x[j];
                if satisfies(model.predict(&cand), cfg) {
                    continue; // full revert held
                }
                // Bisect the revert fraction in (0, 1): find the largest
                // step toward x that keeps the crossing.
                let mut safe = 0.0f64;
                let mut unsafe_ = 1.0f64;
                for _ in 0..10 {
                    let mid = 0.5 * (safe + unsafe_);
                    cand[j] = moved + mid * (x[j] - moved);
                    if satisfies(model.predict(&cand), cfg) {
                        safe = mid;
                    } else {
                        unsafe_ = mid;
                    }
                }
                cand[j] = moved + safe * (x[j] - moved);
            }
        }
        let pred = model.predict(&cand);
        let cost = cost_of(&cand);
        let deltas: Vec<f64> = cand.iter().zip(x).map(|(c, xi)| c - xi).collect();
        let n_changed = deltas
            .iter()
            .zip(&std)
            .filter(|(dl, s)| dl.abs() > 1e-9 * **s)
            .count();
        let cf = Counterfactual {
            x_cf: cand,
            prediction: pred,
            deltas,
            cost,
            n_changed,
        };
        if best.as_ref().is_none_or(|b| cf.cost < b.cost) {
            best = Some(cf);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_ml::model::FnModel;

    fn bg() -> Background {
        Background::from_rows(
            (0..21)
                .map(|i| vec![i as f64 / 2.0, 10.0 - i as f64 / 2.0])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn finds_the_linear_boundary_with_minimal_change() {
        // f = x0; want f ≤ 2 starting at x0 = 6 → must move x0 to ~2, x1 free.
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        let cf = counterfactual(
            &model,
            &[6.0, 5.0],
            &bg(),
            &CounterfactualConfig {
                threshold: 2.0,
                direction: CrossingDirection::Below,
                ..Default::default()
            },
        )
        .unwrap()
        .expect("feasible");
        assert!(cf.prediction <= 2.0 + 1e-9);
        assert!(cf.x_cf[0] <= 2.0 + 1e-6, "{:?}", cf.x_cf);
        assert!((cf.x_cf[1] - 5.0).abs() < 1e-9, "x1 untouched");
        assert_eq!(cf.n_changed, 1);
    }

    #[test]
    fn respects_the_actionability_mask() {
        // f = x0 + x1; only x1 may move.
        let model = FnModel::new(2, |x: &[f64]| x[0] + x[1]);
        let cf = counterfactual(
            &model,
            &[6.0, 6.0],
            &bg(),
            &CounterfactualConfig {
                threshold: 8.0,
                direction: CrossingDirection::Below,
                actionable: vec![false, true],
                ..Default::default()
            },
        )
        .unwrap()
        .expect("feasible");
        assert!((cf.x_cf[0] - 6.0).abs() < 1e-12, "frozen feature moved");
        assert!(cf.x_cf[1] <= 2.0 + 1e-6);
    }

    #[test]
    fn already_satisfied_returns_zero_change() {
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        let cf = counterfactual(
            &model,
            &[1.0, 1.0],
            &bg(),
            &CounterfactualConfig {
                threshold: 2.0,
                direction: CrossingDirection::Below,
                ..Default::default()
            },
        )
        .unwrap()
        .expect("trivially feasible");
        assert_eq!(cf.cost, 0.0);
        assert_eq!(cf.n_changed, 0);
    }

    #[test]
    fn infeasible_within_the_box_returns_none() {
        // f ≥ 100 is unreachable inside the background box [0, 10]².
        let model = FnModel::new(2, |x: &[f64]| x[0] + x[1]);
        let cf = counterfactual(
            &model,
            &[1.0, 1.0],
            &bg(),
            &CounterfactualConfig {
                threshold: 100.0,
                direction: CrossingDirection::Above,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cf.is_none());
    }

    #[test]
    fn works_on_tree_plateaus_via_restarts() {
        // A step model: f = 1 iff x0 > 7 — flat everywhere else, so the
        // descent needs the jittered restarts to find the cliff.
        let model = FnModel::new(2, |x: &[f64]| if x[0] > 7.0 { 1.0 } else { 0.0 });
        let cf = counterfactual(
            &model,
            &[1.0, 5.0],
            &bg(),
            &CounterfactualConfig {
                threshold: 0.5,
                direction: CrossingDirection::Above,
                n_restarts: 12,
                ..Default::default()
            },
        )
        .unwrap()
        .expect("reachable: box extends to 10");
        assert!(cf.x_cf[0] > 7.0);
        assert!(cf.prediction >= 0.5);
    }

    #[test]
    fn guards() {
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        assert!(counterfactual(&model, &[], &bg(), &Default::default()).is_err());
        assert!(counterfactual(
            &model,
            &[1.0, 1.0],
            &bg(),
            &CounterfactualConfig {
                actionable: vec![true],
                ..Default::default()
            }
        )
        .is_err());
        assert!(counterfactual(
            &model,
            &[1.0, 1.0],
            &bg(),
            &CounterfactualConfig {
                n_restarts: 0,
                ..Default::default()
            }
        )
        .is_err());
        let wrong_bg = Background::from_rows(vec![vec![0.0]]).unwrap();
        assert!(counterfactual(&model, &[1.0, 1.0], &wrong_bg, &Default::default()).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let model = FnModel::new(2, |x: &[f64]| x[0] * x[1]);
        let cfg = CounterfactualConfig {
            threshold: 40.0,
            direction: CrossingDirection::Above,
            seed: 3,
            ..Default::default()
        };
        let a = counterfactual(&model, &[2.0, 2.0], &bg(), &cfg).unwrap();
        let b = counterfactual(&model, &[2.0, 2.0], &bg(), &cfg).unwrap();
        assert_eq!(a, b);
    }
}
