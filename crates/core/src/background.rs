//! Background (reference) data: how "feature absent" is realized.
//!
//! Shapley-style methods need a value function `v(S) = E[f(x_S, X_{\bar S})]`;
//! we estimate the expectation by substituting features outside the
//! coalition with values from a background dataset (the *interventional* /
//! marginal convention used by KernelSHAP and interventional TreeSHAP).

use crate::XaiError;
use nfv_data::dataset::Dataset;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A background sample set plus cached summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Background {
    rows: Vec<Vec<f64>>,
    /// Per-feature means of the background rows.
    pub means: Vec<f64>,
}

/// Tuning for fanning coalition blocks across scoped worker threads in
/// [`Background::coalition_values_into`].
///
/// Determinism: the block size is a pure function of the coalition budget
/// and background size — never of `threads` — and every coalition's value
/// is computed entirely within one block with the same arithmetic as the
/// serial path. Changing `threads` therefore changes *which OS thread*
/// evaluates a block, not any result bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParCoalitionConfig {
    /// Scoped worker threads to fan blocks across (1 = stay serial).
    pub threads: usize,
    /// Coalition budgets below this stay serial: small budgets fit one or
    /// two blocks and the spawn overhead would dominate.
    pub min_coalitions: usize,
}

impl Default for ParCoalitionConfig {
    fn default() -> Self {
        ParCoalitionConfig {
            threads: 1,
            min_coalitions: 256,
        }
    }
}

/// Reusable scratch buffers for [`Background::coalition_values_into`].
///
/// Every explainer bottoms out in coalition evaluation; the workspace lets
/// the (coalition × background-row) composite block, the prediction
/// buffer, and the membership scratch be materialized once and reused
/// across calls — a steady-state call allocates nothing. One workspace per
/// thread — it is cheap to create (`Default`) and grows to the largest
/// block it has seen.
#[derive(Debug, Default, Clone)]
pub struct CoalitionWorkspace {
    /// Flat `rows × d` composite block handed to `predict_block`.
    composites: Vec<f64>,
    /// Membership scratch the caller's closure fills per coalition.
    members: Vec<bool>,
    /// Per-block model outputs (parallel to composite rows).
    preds: Vec<f64>,
    /// Member feature indices of the coalition being materialized.
    member_idx: Vec<usize>,
    /// Materialized membership matrix (`n_coalitions × d`) for the
    /// parallel path.
    all_members: Vec<bool>,
    /// Adjacent-dedup buffers for the serial evaluation arm.
    dedup: DedupScratch,
    /// Parallel fan-out tuning.
    par: ParCoalitionConfig,
}

impl CoalitionWorkspace {
    /// A workspace whose coalition evaluations fan out across `threads`
    /// scoped workers once the budget reaches the default threshold.
    pub fn parallel(threads: usize) -> CoalitionWorkspace {
        CoalitionWorkspace {
            par: ParCoalitionConfig {
                threads: threads.max(1),
                ..ParCoalitionConfig::default()
            },
            ..CoalitionWorkspace::default()
        }
    }

    /// Overrides the parallel fan-out tuning.
    pub fn set_parallelism(&mut self, cfg: ParCoalitionConfig) {
        self.par = cfg;
    }

    /// The current parallel fan-out tuning.
    pub fn parallelism(&self) -> ParCoalitionConfig {
        self.par
    }
}

/// Cap on composite rows materialized per `predict_batch` call: bounds the
/// workspace at `MAX_BLOCK_ROWS × d` f64s (~640 KiB at d = 20) while
/// keeping blocks large enough for the blocked model evaluators to win.
const MAX_BLOCK_ROWS: usize = 4096;

/// Collects the indices of `true` entries of `members` into `member_idx`.
fn collect_member_idx(members: &[bool], member_idx: &mut Vec<usize>) {
    member_idx.clear();
    for (j, &m) in members.iter().enumerate() {
        if m {
            member_idx.push(j);
        }
    }
}

/// Appends one coalition's composite rows (one per background row) to
/// `out`: the background row copied wholesale, then the coalition's member
/// features scattered over it. Single materialization routine shared by
/// the serial, parallel, and planned (fused) evaluation paths — they
/// cannot drift apart.
fn append_composite_rows(
    bg_rows: &[Vec<f64>],
    x: &[f64],
    member_idx: &[usize],
    out: &mut Vec<f64>,
) {
    for b in bg_rows {
        let start = out.len();
        out.extend_from_slice(b);
        for &j in member_idx {
            out[start + j] = x[j];
        }
    }
}

/// A shared arena of composite rows that several [`CoalitionPlan`]s append
/// into, so one [`Regressor::predict_block`] call can evaluate the
/// coalition work of many explanation requests at once (cross-request
/// fusion). Rows from different plans are simply stacked; each plan
/// remembers its own row range and scatters its values back out with
/// [`CoalitionPlan::values_into`].
///
/// Lifecycle: `clear` → any number of [`Background::plan_coalitions`]
/// appends (all with the same feature count) → `evaluate` → per-plan
/// `values_into`. The buffers persist across cycles, so a steady-state
/// fusion loop allocates nothing.
///
/// `evaluate` collapses runs of **adjacent bit-identical rows** before
/// prediction and scatters the results back (on by default; see
/// [`FusedBlock::set_dedup`]). Composite-row streams repeat rows far more
/// often than arbitrary data would: a full coalition materializes `x`
/// once per background row, a permutation walk re-pushes an unchanged
/// composite whenever the revealed feature already matches the
/// background (`x[j] == b[j]`, common for quantized / categorical
/// telemetry), and degenerate backgrounds repeat whole walks. Because
/// `predict_block` is row-pure, evaluating one representative per run is
/// bit-identical to evaluating every copy.
#[derive(Debug, Clone)]
pub struct FusedBlock {
    /// Flat `n_rows × d` composite rows from every plan appended so far.
    rows: Vec<f64>,
    /// Model outputs parallel to `rows` (filled by [`FusedBlock::evaluate`]).
    preds: Vec<f64>,
    /// Feature count shared by all stacked rows (0 while empty).
    d: usize,
    /// Collapse adjacent duplicate rows in `evaluate` (default true).
    dedup: bool,
    /// Reusable dedup buffers (representatives, their preds, row map).
    scratch: DedupScratch,
    /// Rows the last `evaluate` skipped as adjacent duplicates.
    last_dedup_saved: usize,
    /// Total rows skipped across the block's lifetime (survives `clear`,
    /// so long-lived worker blocks report cumulative savings).
    dedup_saved_total: u64,
}

impl Default for FusedBlock {
    fn default() -> Self {
        FusedBlock {
            rows: Vec::new(),
            preds: Vec::new(),
            d: 0,
            dedup: true,
            scratch: DedupScratch::default(),
            last_dedup_saved: 0,
            dedup_saved_total: 0,
        }
    }
}

/// Process-wide count of composite rows skipped by adjacent-row dedup
/// (all paths: fused blocks and direct coalition evaluation).
static DEDUP_ROWS_SAVED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total composite rows every dedup pass in this process has skipped.
/// Monotonic; useful for observability and for asserting that dedup
/// actually engaged on a workload.
pub fn dedup_rows_saved() -> u64 {
    DEDUP_ROWS_SAVED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Reusable buffers for one adjacent-dedup evaluation (see
/// [`dedup_predict_block`]).
#[derive(Debug, Default, Clone)]
struct DedupScratch {
    /// One representative row per adjacent run (flat, `× d`).
    uniq_rows: Vec<f64>,
    /// Predictions parallel to `uniq_rows`.
    uniq_preds: Vec<f64>,
    /// For every input row, the index of its run in `uniq_rows`.
    row_map: Vec<u32>,
}

/// Evaluates `rows` (flat, `preds.len() × d`) with one `predict_block`
/// call after collapsing runs of **adjacent bit-identical rows**,
/// scattering each run's prediction back to every copy. Returns the
/// number of rows skipped.
///
/// Bit-identical to a plain `predict_block` over all rows: models are
/// row-pure (each output depends only on its own row), and rows compare
/// by raw f64 bits — `-0.0 != 0.0`, NaN payloads respected — so a run is
/// collapsed only when its rows are indistinguishable to any model. The
/// detection pass is a straight-line bitwise compare over contiguous
/// memory (no unsafe in this crate; the compiler auto-vectorizes it),
/// costing `O(n × d)` against the `O(n × trees × depth)` evaluation it
/// can elide. When nothing repeats, the rows are evaluated in place and
/// no copy is made.
fn dedup_predict_block(
    model: &dyn Regressor,
    rows: &[f64],
    d: usize,
    preds: &mut [f64],
    scratch: &mut DedupScratch,
) -> usize {
    let n = preds.len();
    debug_assert_eq!(rows.len(), n * d);
    if n < 2 {
        if n == 1 {
            model.predict_block(rows, d, preds);
        }
        return 0;
    }
    // Pass 1: map every row to its run representative.
    scratch.row_map.clear();
    scratch.row_map.reserve(n);
    scratch.row_map.push(0);
    let mut uniq = 1u32;
    for r in 1..n {
        let (prev, cur) = (&rows[(r - 1) * d..r * d], &rows[r * d..(r + 1) * d]);
        let same = prev
            .iter()
            .zip(cur)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            uniq += 1;
        }
        scratch.row_map.push(uniq - 1);
    }
    let saved = n - uniq as usize;
    if saved == 0 {
        model.predict_block(rows, d, preds);
        return 0;
    }
    // Pass 2: compact one representative per run, evaluate, scatter.
    scratch.uniq_rows.clear();
    scratch.uniq_rows.reserve(uniq as usize * d);
    let mut next = 0u32;
    for (r, &m) in scratch.row_map.iter().enumerate() {
        if m == next {
            scratch
                .uniq_rows
                .extend_from_slice(&rows[r * d..(r + 1) * d]);
            next += 1;
        }
    }
    scratch.uniq_preds.clear();
    scratch.uniq_preds.resize(uniq as usize, 0.0);
    model.predict_block(&scratch.uniq_rows, d, &mut scratch.uniq_preds);
    for (p, &m) in preds.iter_mut().zip(&scratch.row_map) {
        *p = scratch.uniq_preds[m as usize];
    }
    DEDUP_ROWS_SAVED.fetch_add(saved as u64, std::sync::atomic::Ordering::Relaxed);
    saved
}

impl FusedBlock {
    /// Resets the arena for a new fusion group (buffers are kept).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.preds.clear();
        self.d = 0;
    }

    /// Composite rows stacked so far.
    pub fn n_rows(&self) -> usize {
        self.rows.len().checked_div(self.d).unwrap_or(0)
    }

    /// True when no plan has appended rows since the last `clear`.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature count of the stacked rows (0 while empty).
    pub fn d(&self) -> usize {
        self.d
    }

    /// The flat composite-row arena (`n_rows × d`).
    pub fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Appends one composite row directly, returning its row index. Used
    /// by planners whose rows are not coalition composites (e.g.
    /// permutation walks in sampling Shapley).
    ///
    /// # Panics
    /// If the block already holds rows of a different feature count.
    pub fn push_row(&mut self, row: &[f64]) -> usize {
        if self.d == 0 {
            self.d = row.len();
        }
        assert_eq!(
            self.d,
            row.len(),
            "fused block holds {}-feature rows; cannot stack {}-feature rows",
            self.d,
            row.len()
        );
        let idx = self.n_rows();
        self.rows.extend_from_slice(row);
        idx
    }

    /// Enables or disables the adjacent-duplicate collapse in
    /// [`FusedBlock::evaluate`] (on by default). The off switch exists
    /// for A/B measurement and for proving bit-identity in tests; both
    /// settings produce the same bits.
    pub fn set_dedup(&mut self, on: bool) {
        self.dedup = on;
    }

    /// Rows the most recent `evaluate` skipped as adjacent duplicates.
    pub fn last_dedup_saved(&self) -> usize {
        self.last_dedup_saved
    }

    /// Total rows skipped across this block's lifetime (survives
    /// `clear`).
    pub fn dedup_saved_total(&self) -> u64 {
        self.dedup_saved_total
    }

    /// Evaluates every stacked row with **one** `predict_block` call,
    /// first collapsing runs of adjacent bit-identical rows (see the
    /// type docs; disable with [`FusedBlock::set_dedup`]).
    ///
    /// Determinism: `predict_block` is row-pure for every model (each
    /// output depends only on its own row, with the same arithmetic as
    /// scalar `predict`), so fusing rows from many requests into one call
    /// — or evaluating one representative per duplicate run and copying
    /// its bits to the others — changes *which call* evaluates a row,
    /// never its bits. Duplicate detection compares raw f64 bits, so
    /// `-0.0 != 0.0` and NaN payloads are respected; a run is collapsed
    /// only when the rows are indistinguishable to any row-pure model.
    pub fn evaluate(&mut self, model: &dyn Regressor) {
        let n = self.n_rows();
        self.last_dedup_saved = 0;
        self.preds.clear();
        self.preds.resize(n, 0.0);
        if n == 0 {
            return;
        }
        if !self.dedup {
            model.predict_block(&self.rows, self.d, &mut self.preds);
            return;
        }
        let saved = dedup_predict_block(
            model,
            &self.rows,
            self.d,
            &mut self.preds,
            &mut self.scratch,
        );
        self.last_dedup_saved = saved;
        self.dedup_saved_total += saved as u64;
    }

    /// Model outputs for the stacked rows (valid after `evaluate`).
    pub fn preds(&self) -> &[f64] {
        &self.preds
    }
}

/// The plan half of the coalition plan/execute split: composite rows for
/// one request's coalitions have been materialized into a [`FusedBlock`],
/// but not yet evaluated. Produced by [`Background::plan_coalitions`];
/// after [`FusedBlock::evaluate`], [`CoalitionPlan::values_into`] reduces
/// this plan's slice of the shared prediction buffer to per-coalition
/// values with the exact arithmetic of [`Background::coalition_values_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalitionPlan {
    /// First row of this plan within the shared block.
    first_row: usize,
    /// Coalitions planned.
    n_coalitions: usize,
    /// Background rows per coalition.
    n_bg: usize,
}

impl CoalitionPlan {
    /// First composite row of this plan within its block.
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Coalitions covered by this plan.
    pub fn n_coalitions(&self) -> usize {
        self.n_coalitions
    }

    /// Composite rows this plan occupies in the block.
    pub fn n_rows(&self) -> usize {
        self.n_coalitions * self.n_bg
    }

    /// Scatters this plan's coalition values out of the evaluated block:
    /// per-coalition means over background rows, accumulated in the same
    /// order (and therefore bit-identical to) the unfused path. Values are
    /// appended to `out` in coalition order.
    ///
    /// # Panics
    /// If `block` has not been evaluated since this plan was appended.
    pub fn values_into(&self, block: &FusedBlock, out: &mut Vec<f64>) {
        out.clear();
        if self.n_coalitions == 0 {
            return;
        }
        let end = self.first_row + self.n_rows();
        assert!(
            end <= block.preds.len(),
            "fused block not evaluated: plan needs rows {}..{end} but only {} predictions exist",
            self.first_row,
            block.preds.len()
        );
        out.reserve(self.n_coalitions);
        for per_coalition in block.preds[self.first_row..end].chunks(self.n_bg) {
            let mut sum = 0.0;
            for &p in per_coalition {
                sum += p;
            }
            out.push(sum / self.n_bg as f64);
        }
    }
}

impl Background {
    /// Builds from explicit rows (all must share one length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Background, XaiError> {
        let Some(first) = rows.first() else {
            return Err(XaiError::Input("background needs at least one row".into()));
        };
        let d = first.len();
        if d == 0 {
            return Err(XaiError::Input("background rows are empty".into()));
        }
        if rows.iter().any(|r| r.len() != d) {
            return Err(XaiError::Input("background rows have mixed lengths".into()));
        }
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            return Err(XaiError::Input(
                "background contains non-finite values".into(),
            ));
        }
        let mut means = vec![0.0; d];
        for r in &rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= rows.len() as f64;
        }
        Ok(Background { rows, means })
    }

    /// Builds by sampling at most `max_rows` rows of `data` (deterministic
    /// subsample; KernelSHAP cost scales linearly in this).
    pub fn from_dataset(
        data: &Dataset,
        max_rows: usize,
        seed: u64,
    ) -> Result<Background, XaiError> {
        if max_rows == 0 {
            return Err(XaiError::Input("max_rows must be positive".into()));
        }
        let n = data.n_rows();
        let rows: Vec<Vec<f64>> = if n <= max_rows {
            data.rows().map(|r| r.to_vec()).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..max_rows)
                .map(|_| data.row(rng.gen_range(0..n)).to_vec())
                .collect()
        };
        Background::from_rows(rows)
    }

    /// Number of background rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature count.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Borrow of row `i` (wraps around — callers can index with any seed).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i % self.rows.len()]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// `E[f(X)]` over the background — the base value of every attribution.
    /// Routed through `predict_batch` (same accumulation order as the
    /// scalar loop, so the value is unchanged).
    pub fn expected_output(&self, model: &dyn Regressor) -> f64 {
        let refs: Vec<&[f64]> = self.rows.iter().map(Vec::as_slice).collect();
        model.predict_batch(&refs).iter().sum::<f64>() / self.rows.len() as f64
    }

    /// Estimates `v(S) = E[f(x_S, B_{\bar S})]`: for every background row,
    /// substitute the coalition features from `x` and average the model
    /// output. `in_coalition[j]` marks membership of feature `j`.
    ///
    /// This is the scalar reference path; hot loops should prefer
    /// [`Background::coalition_values`] /
    /// [`Background::coalition_values_into`], which are bit-identical but
    /// evaluate whole coalition blocks per model call.
    pub fn coalition_value(&self, model: &dyn Regressor, x: &[f64], in_coalition: &[bool]) -> f64 {
        let mut composite = vec![0.0; x.len()];
        let mut sum = 0.0;
        for b in &self.rows {
            for j in 0..x.len() {
                composite[j] = if in_coalition[j] { x[j] } else { b[j] };
            }
            sum += model.predict(&composite);
        }
        sum / self.rows.len() as f64
    }

    /// Bulk coalition evaluation: computes `v(S)` for `n_coalitions`
    /// coalitions, materializing all (coalition × background-row)
    /// composites into the workspace and issuing **one
    /// [`Regressor::predict_block`] call per block** instead of one scalar
    /// `predict` per composite row. Composite rows are built by copying
    /// the background row wholesale and scattering only the coalition's
    /// member features over it — no per-element branch.
    ///
    /// `membership(i, members)` must fill the membership buffer for
    /// coalition `i`; it is invoked exactly once per coalition, in
    /// ascending order, against a buffer that starts all-`false` and
    /// persists between invocations (so incremental fills — flip one
    /// feature per call — are supported).
    ///
    /// When the workspace's [`ParCoalitionConfig`] enables more than one
    /// thread and the budget reaches `min_coalitions`, blocks fan out
    /// across scoped workers. The block size never depends on the thread
    /// count and every coalition's mean is computed entirely within its
    /// block, so results are **bit-identical across thread counts** (and
    /// to the serial path).
    ///
    /// Values are appended to `out` in coalition order and are
    /// bit-identical to looping [`Background::coalition_value`]: the
    /// per-coalition mean accumulates over background rows in the same
    /// order, and every model's `predict_block` preserves scalar `predict`
    /// arithmetic.
    pub fn coalition_values_into(
        &self,
        model: &dyn Regressor,
        x: &[f64],
        n_coalitions: usize,
        mut membership: impl FnMut(usize, &mut [bool]),
        ws: &mut CoalitionWorkspace,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if n_coalitions == 0 {
            return;
        }
        let d = x.len();
        let n_bg = self.rows.len();
        ws.members.clear();
        ws.members.resize(d, false);
        let block = (MAX_BLOCK_ROWS / n_bg).clamp(1, n_coalitions);
        let threads = ws.par.threads.max(1).min(n_coalitions.div_ceil(block));
        if threads > 1 && n_coalitions >= ws.par.min_coalitions {
            self.coalition_values_parallel(
                model,
                x,
                n_coalitions,
                &mut membership,
                ws,
                out,
                block,
                threads,
            );
            return;
        }
        out.reserve(n_coalitions);
        let mut next = 0usize;
        while next < n_coalitions {
            let take = block.min(n_coalitions - next);
            ws.composites.clear();
            ws.composites.reserve(take * n_bg * d);
            for c in 0..take {
                membership(next + c, &mut ws.members);
                collect_member_idx(&ws.members, &mut ws.member_idx);
                append_composite_rows(&self.rows, x, &ws.member_idx, &mut ws.composites);
            }
            ws.preds.resize(take * n_bg, 0.0);
            dedup_predict_block(
                model,
                &ws.composites,
                d,
                &mut ws.preds[..take * n_bg],
                &mut ws.dedup,
            );
            for per_coalition in ws.preds[..take * n_bg].chunks(n_bg) {
                let mut sum = 0.0;
                for &p in per_coalition {
                    sum += p;
                }
                out.push(sum / n_bg as f64);
            }
            next += take;
        }
    }

    /// The fan-out arm of [`Background::coalition_values_into`]: memberships
    /// are materialized sequentially (preserving the closure's incremental
    /// contract), then disjoint output blocks are assigned round-robin to
    /// worker slots — block `k` to slot `k % threads` — each evaluating
    /// with its own scratch. Identical per-block arithmetic to the serial
    /// path makes the result independent of `threads`.
    #[allow(clippy::too_many_arguments)]
    fn coalition_values_parallel(
        &self,
        model: &dyn Regressor,
        x: &[f64],
        n_coalitions: usize,
        membership: &mut impl FnMut(usize, &mut [bool]),
        ws: &mut CoalitionWorkspace,
        out: &mut Vec<f64>,
        block: usize,
        threads: usize,
    ) {
        let d = x.len();
        let n_bg = self.rows.len();
        ws.all_members.clear();
        ws.all_members.reserve(n_coalitions * d);
        for i in 0..n_coalitions {
            membership(i, &mut ws.members);
            ws.all_members.extend_from_slice(&ws.members);
        }
        out.resize(n_coalitions, 0.0);
        let all_members = &ws.all_members;
        let rows = &self.rows;
        let mut per_slot: Vec<Vec<(usize, &mut [f64])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (k, chunk) in out.chunks_mut(block).enumerate() {
            per_slot[k % threads].push((k, chunk));
        }
        crossbeam::scope(|s| {
            for slot in per_slot {
                s.spawn(move |_| {
                    let mut composites: Vec<f64> = Vec::new();
                    let mut preds: Vec<f64> = Vec::new();
                    let mut member_idx: Vec<usize> = Vec::new();
                    let mut dedup = DedupScratch::default();
                    for (k, chunk) in slot {
                        let first = k * block;
                        let take = chunk.len();
                        composites.clear();
                        composites.reserve(take * n_bg * d);
                        for c in 0..take {
                            let members = &all_members[(first + c) * d..(first + c + 1) * d];
                            collect_member_idx(members, &mut member_idx);
                            append_composite_rows(rows, x, &member_idx, &mut composites);
                        }
                        preds.resize(take * n_bg, 0.0);
                        dedup_predict_block(
                            model,
                            &composites,
                            d,
                            &mut preds[..take * n_bg],
                            &mut dedup,
                        );
                        for (o, per_coalition) in
                            chunk.iter_mut().zip(preds[..take * n_bg].chunks(n_bg))
                        {
                            let mut sum = 0.0;
                            for &p in per_coalition {
                                sum += p;
                            }
                            *o = sum / n_bg as f64;
                        }
                    }
                });
            }
        })
        .expect("coalition block worker panicked");
    }

    /// The plan half of [`Background::coalition_values_into`]: materializes
    /// the composite rows for `n_coalitions` coalitions into the shared
    /// `block` **without evaluating them**, and returns a
    /// [`CoalitionPlan`] remembering the row range. Several requests'
    /// plans can stack into one block; a single
    /// [`FusedBlock::evaluate`] then feeds every plan's
    /// [`CoalitionPlan::values_into`].
    ///
    /// The membership closure contract is identical to
    /// [`Background::coalition_values_into`] (called once per coalition in
    /// ascending order against a persistent all-`false` buffer), and the
    /// rows are built by the same materialization routine, so
    /// `plan + evaluate + values_into` is bit-identical to the direct
    /// call.
    ///
    /// # Panics
    /// If `block` already holds rows of a different feature count.
    pub fn plan_coalitions(
        &self,
        x: &[f64],
        n_coalitions: usize,
        mut membership: impl FnMut(usize, &mut [bool]),
        ws: &mut CoalitionWorkspace,
        block: &mut FusedBlock,
    ) -> CoalitionPlan {
        let d = x.len();
        let n_bg = self.rows.len();
        if block.d == 0 {
            block.d = d;
        }
        assert_eq!(
            block.d, d,
            "fused block holds {}-feature rows; cannot stack {d}-feature rows",
            block.d
        );
        let first_row = block.n_rows();
        ws.members.clear();
        ws.members.resize(d, false);
        block.rows.reserve(n_coalitions * n_bg * d);
        for c in 0..n_coalitions {
            membership(c, &mut ws.members);
            collect_member_idx(&ws.members, &mut ws.member_idx);
            append_composite_rows(&self.rows, x, &ws.member_idx, &mut block.rows);
        }
        CoalitionPlan {
            first_row,
            n_coalitions,
            n_bg,
        }
    }

    /// Convenience wrapper over [`Background::coalition_values_into`] for
    /// callers that already hold explicit membership vectors.
    pub fn coalition_values(
        &self,
        model: &dyn Regressor,
        x: &[f64],
        coalitions: &[Vec<bool>],
        ws: &mut CoalitionWorkspace,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(coalitions.len());
        self.coalition_values_into(
            model,
            x,
            coalitions.len(),
            |i, members| members.copy_from_slice(&coalitions[i]),
            ws,
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::dataset::Task;
    use nfv_ml::model::FnModel;

    fn bg() -> Background {
        Background::from_rows(vec![vec![0.0, 10.0], vec![2.0, 20.0], vec![4.0, 30.0]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Background::from_rows(vec![]).is_err());
        assert!(Background::from_rows(vec![vec![]]).is_err());
        assert!(Background::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Background::from_rows(vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn means_are_columnwise() {
        let b = bg();
        assert_eq!(b.means, vec![2.0, 20.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.n_features(), 2);
        assert_eq!(b.row(4), &[2.0, 20.0], "wraps");
    }

    #[test]
    fn from_dataset_subsamples_deterministically() {
        let data = Dataset::new(
            vec!["a".into()],
            (0..100).map(|i| i as f64).collect(),
            vec![0.0; 100],
            Task::Regression,
        )
        .unwrap();
        let b1 = Background::from_dataset(&data, 10, 3).unwrap();
        let b2 = Background::from_dataset(&data, 10, 3).unwrap();
        assert_eq!(b1, b2);
        assert_eq!(b1.len(), 10);
        let all = Background::from_dataset(&data, 500, 3).unwrap();
        assert_eq!(all.len(), 100);
        assert!(Background::from_dataset(&data, 0, 3).is_err());
    }

    #[test]
    fn bulk_coalition_values_match_scalar_bitwise() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0].sin() * x[1] + x[0]);
        let x = [3.0, -2.0];
        let coalitions = vec![
            vec![false, false],
            vec![true, false],
            vec![false, true],
            vec![true, true],
        ];
        let mut ws = CoalitionWorkspace::default();
        let bulk = b.coalition_values(&model, &x, &coalitions, &mut ws);
        for (members, v) in coalitions.iter().zip(&bulk) {
            assert_eq!(*v, b.coalition_value(&model, &x, members), "bit-exact");
        }
        // Workspace reuse across calls is safe.
        let again = b.coalition_values(&model, &x, &coalitions, &mut ws);
        assert_eq!(bulk, again);
    }

    #[test]
    fn incremental_membership_fill_is_supported() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] + 2.0 * x[1]);
        let x = [5.0, 7.0];
        let mut ws = CoalitionWorkspace::default();
        let mut out = Vec::new();
        // Reveal features one at a time: {}, {0}, {0,1}.
        b.coalition_values_into(
            &model,
            &x,
            3,
            |i, members| {
                if i > 0 {
                    members[i - 1] = true;
                }
            },
            &mut ws,
            &mut out,
        );
        assert_eq!(out[0], b.coalition_value(&model, &x, &[false, false]));
        assert_eq!(out[1], b.coalition_value(&model, &x, &[true, false]));
        assert_eq!(out[2], b.coalition_value(&model, &x, &[true, true]));
        // Zero coalitions is a no-op that clears the output.
        b.coalition_values_into(&model, &x, 0, |_, _| {}, &mut ws, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_blocks_are_thread_count_invariant_bitwise() {
        // Enough coalitions and background rows to split into many blocks
        // (block = 4096 / 40 = 102 coalitions), nonlinear model so any
        // reassociation of the arithmetic would show up in the bits.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                (0..7)
                    .map(|j| ((i * 7 + j) as f64 * 0.7130).sin() * 3.0)
                    .collect()
            })
            .collect();
        let b = Background::from_rows(rows).unwrap();
        let model = FnModel::new(7, |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(j, &v)| (v * (j as f64 + 0.5)).sin() * v)
                .sum::<f64>()
        });
        let x: Vec<f64> = (0..7).map(|j| j as f64 * 0.31 - 1.0).collect();
        let n = 512usize;
        let membership = |i: usize, members: &mut [bool]| {
            let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for m in members.iter_mut() {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                *m = h & 1 == 1;
            }
        };
        let run = |threads: usize| {
            let mut ws = CoalitionWorkspace::parallel(threads);
            ws.set_parallelism(ParCoalitionConfig {
                threads,
                min_coalitions: 64,
            });
            let mut out = Vec::new();
            b.coalition_values_into(&model, &x, n, membership, &mut ws, &mut out);
            out
        };
        let serial = run(1);
        assert_eq!(serial.len(), n);
        for threads in [2usize, 3, 5, 8] {
            let par = run(threads);
            for (i, (a, p)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    p.to_bits(),
                    "coalition {i} differs at threads={threads}"
                );
            }
        }
        // And both match the scalar reference evaluator bit-for-bit.
        let mut members = vec![false; 7];
        for (i, v) in serial.iter().enumerate().step_by(37) {
            membership(i, &mut members);
            assert_eq!(
                v.to_bits(),
                b.coalition_value(&model, &x, &members).to_bits()
            );
        }
    }

    #[test]
    fn parallel_path_supports_incremental_membership() {
        // The membership closure's incremental contract (buffer persists
        // across calls) must survive the parallel arm, which materializes
        // memberships up front.
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, -(i as f64), 2.0]).collect();
        let b = Background::from_rows(rows).unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] * 1.5 + x[1] * x[2]);
        let x = [9.0, -3.0, 4.0];
        let run = |threads: usize, min: usize| {
            let mut ws = CoalitionWorkspace::default();
            ws.set_parallelism(ParCoalitionConfig {
                threads,
                min_coalitions: min,
            });
            let mut out = Vec::new();
            // Reveal one more feature per coalition: {}, {0}, {0,1}, {0,1,2}.
            b.coalition_values_into(
                &model,
                &x,
                4,
                |i, members| {
                    if i > 0 {
                        members[i - 1] = true;
                    }
                },
                &mut ws,
                &mut out,
            );
            out
        };
        let serial = run(1, 256);
        let parallel = run(4, 1); // force the parallel arm even at 4 coalitions
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], model.predict(&x), "full coalition = f(x)");
    }

    #[test]
    fn planned_execution_is_bit_identical_to_direct() {
        // Two "requests" with different inputs and coalition budgets stack
        // their plans into one FusedBlock; a single evaluate call must
        // reproduce the direct per-request path bit-for-bit.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f64 * 0.37).sin()).collect())
            .collect();
        let b = Background::from_rows(rows).unwrap();
        let model = FnModel::new(5, |x: &[f64]| {
            x.iter().map(|&v| (v * 1.3).cos() * v).sum::<f64>()
        });
        let x1: Vec<f64> = (0..5).map(|j| j as f64 * 0.21 - 0.4).collect();
        let x2: Vec<f64> = (0..5).map(|j| (j as f64 * 1.7).sin()).collect();
        let membership = |salt: u64| {
            move |i: usize, members: &mut [bool]| {
                let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                for m in members.iter_mut() {
                    h ^= h << 13;
                    h ^= h >> 7;
                    h ^= h << 17;
                    *m = h & 1 == 1;
                }
            }
        };
        let mut ws = CoalitionWorkspace::default();
        let mut direct1 = Vec::new();
        let mut direct2 = Vec::new();
        b.coalition_values_into(&model, &x1, 7, membership(3), &mut ws, &mut direct1);
        b.coalition_values_into(&model, &x2, 11, membership(99), &mut ws, &mut direct2);

        let mut block = FusedBlock::default();
        let p1 = b.plan_coalitions(&x1, 7, membership(3), &mut ws, &mut block);
        let p2 = b.plan_coalitions(&x2, 11, membership(99), &mut ws, &mut block);
        assert_eq!(p1.first_row(), 0);
        assert_eq!(p1.n_rows(), 7 * 12);
        assert_eq!(p2.first_row(), 7 * 12);
        assert_eq!(block.n_rows(), (7 + 11) * 12);
        block.evaluate(&model);
        let mut fused1 = Vec::new();
        let mut fused2 = Vec::new();
        p1.values_into(&block, &mut fused1);
        p2.values_into(&block, &mut fused2);
        assert_eq!(direct1.len(), fused1.len());
        for (a, f) in direct1.iter().zip(&fused1) {
            assert_eq!(a.to_bits(), f.to_bits(), "request 1 drifted");
        }
        for (a, f) in direct2.iter().zip(&fused2) {
            assert_eq!(a.to_bits(), f.to_bits(), "request 2 drifted");
        }
        // The arena is reusable: clear + replan yields the same bits.
        block.clear();
        assert!(block.is_empty());
        let p1b = b.plan_coalitions(&x1, 7, membership(3), &mut ws, &mut block);
        block.evaluate(&model);
        let mut again = Vec::new();
        p1b.values_into(&block, &mut again);
        assert_eq!(fused1, again);
    }

    #[test]
    fn adjacent_dedup_is_bit_identical_and_counts_savings() {
        // Hand-built block with known duplicate runs: a a a | b | a | c c.
        // (The lone `a` after `b` is NOT adjacent to the first run and
        // must be evaluated — or mapped — on its own.)
        let model = FnModel::new(3, |x: &[f64]| x[0] * 1.7 - (x[1] * x[2]).sin());
        let a = [1.5, -2.0, 0.25];
        let bb = [0.0, 4.0, -1.0];
        let c = [f64::NAN, 0.5, 9.0]; // NaN rows compare equal bitwise
        let mut on = FusedBlock::default();
        for r in [&a, &a, &a, &bb, &a, &c, &c] {
            on.push_row(&r[..]);
        }
        let mut off = on.clone();
        off.set_dedup(false);
        let before_global = dedup_rows_saved();
        on.evaluate(&model);
        off.evaluate(&model);
        assert_eq!(on.preds().len(), 7);
        for (i, (x, y)) in on.preds().iter().zip(off.preds()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "row {i} drifted under dedup");
        }
        // Runs: aaa saves 2, cc saves 1 → 3 rows skipped.
        assert_eq!(on.last_dedup_saved(), 3);
        assert_eq!(off.last_dedup_saved(), 0);
        assert!(dedup_rows_saved() >= before_global + 3);
        // The cumulative counter survives clear(); the per-call one resets.
        on.clear();
        on.push_row(&a[..]);
        on.push_row(&bb[..]);
        on.evaluate(&model);
        assert_eq!(on.last_dedup_saved(), 0, "no adjacent duplicates left");
        assert_eq!(on.dedup_saved_total(), 3);
        // Bitwise comparison keeps -0.0 and 0.0 distinct: no collapse.
        let mut zeros = FusedBlock::default();
        zeros.push_row(&[0.0, 1.0]);
        zeros.push_row(&[-0.0, 1.0]);
        zeros.evaluate(&FnModel::new(2, |x: &[f64]| 1.0 / x[0]));
        assert_eq!(zeros.last_dedup_saved(), 0);
        assert_eq!(zeros.preds()[0], f64::INFINITY);
        assert_eq!(zeros.preds()[1], f64::NEG_INFINITY);
    }

    #[test]
    fn full_coalition_plans_dedup_their_repeated_x_rows() {
        // A full coalition materializes x once per background row: n_bg
        // adjacent bit-identical composites. Dedup must collapse them to
        // one evaluation while reproducing the direct path bit-for-bit.
        let b = bg(); // 3 background rows (see bg())
        let n_bg = b.len();
        let model = FnModel::new(2, |x: &[f64]| (x[0] - x[1]).exp());
        let x = [0.75, -1.25];
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let full = |_: usize, members: &mut [bool]| members.fill(true);
        let plan = b.plan_coalitions(&x, 1, full, &mut ws, &mut block);
        block.evaluate(&model);
        assert_eq!(block.last_dedup_saved(), n_bg - 1);
        let mut fused = Vec::new();
        plan.values_into(&block, &mut fused);
        let mut direct = Vec::new();
        b.coalition_values_into(&model, &x, 1, full, &mut ws, &mut direct);
        assert_eq!(fused[0].to_bits(), direct[0].to_bits());
        // (Note: fused[0] is the *mean* of n_bg identical predictions,
        // which is within 1 ulp of — but not necessarily bit-equal to —
        // model.predict(&x); only fused-vs-direct identity is guaranteed.)
        assert!((fused[0] - model.predict(&x)).abs() <= 1e-12 * fused[0].abs());
    }

    #[test]
    fn direct_coalition_path_dedups_too() {
        // The unfused Background::coalition_values_into arm shares the
        // dedup helper; full coalitions must bump the process counter and
        // stay bit-identical to the scalar reference.
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] * x[0] - 3.0 * x[1]);
        let x = [2.0, -0.5];
        let mut ws = CoalitionWorkspace::default();
        let mut out = Vec::new();
        let before = dedup_rows_saved();
        b.coalition_values_into(
            &model,
            &x,
            1,
            |_, members| members.fill(true),
            &mut ws,
            &mut out,
        );
        assert!(dedup_rows_saved() > before, "full coalition must dedup");
        let members = vec![true; 2];
        assert_eq!(
            out[0].to_bits(),
            b.coalition_value(&model, &x, &members).to_bits()
        );
    }

    #[test]
    fn empty_plan_is_harmless() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] - x[1]);
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let p = b.plan_coalitions(&[1.0, 2.0], 0, |_, _| {}, &mut ws, &mut block);
        assert_eq!(p.n_rows(), 0);
        assert!(block.is_empty());
        block.evaluate(&model);
        let mut out = vec![5.0];
        p.values_into(&block, &mut out);
        assert!(out.is_empty(), "values_into clears the output");
    }

    #[test]
    #[should_panic(expected = "cannot stack")]
    fn mismatched_feature_width_panics() {
        let b = bg();
        let wide = Background::from_rows(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        b.plan_coalitions(&[1.0, 2.0], 1, |_, _| {}, &mut ws, &mut block);
        wide.plan_coalitions(&[1.0, 2.0, 3.0], 1, |_, _| {}, &mut ws, &mut block);
    }

    #[test]
    fn expected_output_and_coalition_values() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] + x[1]);
        assert!((b.expected_output(&model) - 22.0).abs() < 1e-12);
        let x = [100.0, 1000.0];
        // Empty coalition = base value.
        let v0 = b.coalition_value(&model, &x, &[false, false]);
        assert!((v0 - 22.0).abs() < 1e-12);
        // Full coalition = f(x).
        let v_full = b.coalition_value(&model, &x, &[true, true]);
        assert!((v_full - 1100.0).abs() < 1e-12);
        // Feature 0 only: x0 + E[b1].
        let v0only = b.coalition_value(&model, &x, &[true, false]);
        assert!((v0only - 120.0).abs() < 1e-12);
    }
}
