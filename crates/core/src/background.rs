//! Background (reference) data: how "feature absent" is realized.
//!
//! Shapley-style methods need a value function `v(S) = E[f(x_S, X_{\bar S})]`;
//! we estimate the expectation by substituting features outside the
//! coalition with values from a background dataset (the *interventional* /
//! marginal convention used by KernelSHAP and interventional TreeSHAP).

use crate::XaiError;
use nfv_data::dataset::Dataset;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A background sample set plus cached summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Background {
    rows: Vec<Vec<f64>>,
    /// Per-feature means of the background rows.
    pub means: Vec<f64>,
}

/// Reusable scratch buffers for [`Background::coalition_values_into`].
///
/// Every explainer bottoms out in coalition evaluation; the workspace lets
/// the (coalition × background-row) composite block be materialized once
/// and reused across calls instead of allocating per coalition. One
/// workspace per thread — it is cheap to create (`Default`) and grows to
/// the largest block it has seen.
#[derive(Debug, Default, Clone)]
pub struct CoalitionWorkspace {
    /// Flat `rows × d` composite block handed to `predict_batch`.
    composites: Vec<f64>,
    /// Membership scratch the caller's closure fills per coalition.
    members: Vec<bool>,
}

/// Cap on composite rows materialized per `predict_batch` call: bounds the
/// workspace at `MAX_BLOCK_ROWS × d` f64s (~640 KiB at d = 20) while
/// keeping blocks large enough for the blocked model evaluators to win.
const MAX_BLOCK_ROWS: usize = 4096;

impl Background {
    /// Builds from explicit rows (all must share one length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Background, XaiError> {
        let Some(first) = rows.first() else {
            return Err(XaiError::Input("background needs at least one row".into()));
        };
        let d = first.len();
        if d == 0 {
            return Err(XaiError::Input("background rows are empty".into()));
        }
        if rows.iter().any(|r| r.len() != d) {
            return Err(XaiError::Input("background rows have mixed lengths".into()));
        }
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            return Err(XaiError::Input(
                "background contains non-finite values".into(),
            ));
        }
        let mut means = vec![0.0; d];
        for r in &rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= rows.len() as f64;
        }
        Ok(Background { rows, means })
    }

    /// Builds by sampling at most `max_rows` rows of `data` (deterministic
    /// subsample; KernelSHAP cost scales linearly in this).
    pub fn from_dataset(
        data: &Dataset,
        max_rows: usize,
        seed: u64,
    ) -> Result<Background, XaiError> {
        if max_rows == 0 {
            return Err(XaiError::Input("max_rows must be positive".into()));
        }
        let n = data.n_rows();
        let rows: Vec<Vec<f64>> = if n <= max_rows {
            data.rows().map(|r| r.to_vec()).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..max_rows)
                .map(|_| data.row(rng.gen_range(0..n)).to_vec())
                .collect()
        };
        Background::from_rows(rows)
    }

    /// Number of background rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature count.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Borrow of row `i` (wraps around — callers can index with any seed).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i % self.rows.len()]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// `E[f(X)]` over the background — the base value of every attribution.
    /// Routed through `predict_batch` (same accumulation order as the
    /// scalar loop, so the value is unchanged).
    pub fn expected_output(&self, model: &dyn Regressor) -> f64 {
        let refs: Vec<&[f64]> = self.rows.iter().map(Vec::as_slice).collect();
        model.predict_batch(&refs).iter().sum::<f64>() / self.rows.len() as f64
    }

    /// Estimates `v(S) = E[f(x_S, B_{\bar S})]`: for every background row,
    /// substitute the coalition features from `x` and average the model
    /// output. `in_coalition[j]` marks membership of feature `j`.
    ///
    /// This is the scalar reference path; hot loops should prefer
    /// [`Background::coalition_values`] /
    /// [`Background::coalition_values_into`], which are bit-identical but
    /// evaluate whole coalition blocks per model call.
    pub fn coalition_value(&self, model: &dyn Regressor, x: &[f64], in_coalition: &[bool]) -> f64 {
        let mut composite = vec![0.0; x.len()];
        let mut sum = 0.0;
        for b in &self.rows {
            for j in 0..x.len() {
                composite[j] = if in_coalition[j] { x[j] } else { b[j] };
            }
            sum += model.predict(&composite);
        }
        sum / self.rows.len() as f64
    }

    /// Bulk coalition evaluation: computes `v(S)` for `n_coalitions`
    /// coalitions, materializing all (coalition × background-row)
    /// composites into the workspace and issuing **one `predict_batch`
    /// call per block** instead of one scalar `predict` per composite row.
    ///
    /// `membership(i, members)` must fill the membership buffer for
    /// coalition `i`; it is invoked exactly once per coalition, in
    /// ascending order, against a buffer that starts all-`false` and
    /// persists between invocations (so incremental fills — flip one
    /// feature per call — are supported).
    ///
    /// Values are appended to `out` in coalition order and are
    /// bit-identical to looping [`Background::coalition_value`]: the
    /// per-coalition mean accumulates over background rows in the same
    /// order, and every model's `predict_batch` preserves scalar `predict`
    /// arithmetic.
    pub fn coalition_values_into(
        &self,
        model: &dyn Regressor,
        x: &[f64],
        n_coalitions: usize,
        mut membership: impl FnMut(usize, &mut [bool]),
        ws: &mut CoalitionWorkspace,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if n_coalitions == 0 {
            return;
        }
        let d = x.len();
        let n_bg = self.rows.len();
        out.reserve(n_coalitions);
        ws.members.clear();
        ws.members.resize(d, false);
        let block = (MAX_BLOCK_ROWS / n_bg).clamp(1, n_coalitions);
        let mut next = 0usize;
        while next < n_coalitions {
            let take = block.min(n_coalitions - next);
            ws.composites.clear();
            ws.composites.reserve(take * n_bg * d);
            for c in 0..take {
                membership(next + c, &mut ws.members);
                for b in &self.rows {
                    for ((&m, &xv), &bv) in ws.members.iter().zip(x).zip(b) {
                        ws.composites.push(if m { xv } else { bv });
                    }
                }
            }
            let refs: Vec<&[f64]> = ws.composites.chunks(d).collect();
            let preds = model.predict_batch(&refs);
            for per_coalition in preds.chunks(n_bg) {
                let mut sum = 0.0;
                for &p in per_coalition {
                    sum += p;
                }
                out.push(sum / n_bg as f64);
            }
            next += take;
        }
    }

    /// Convenience wrapper over [`Background::coalition_values_into`] for
    /// callers that already hold explicit membership vectors.
    pub fn coalition_values(
        &self,
        model: &dyn Regressor,
        x: &[f64],
        coalitions: &[Vec<bool>],
        ws: &mut CoalitionWorkspace,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(coalitions.len());
        self.coalition_values_into(
            model,
            x,
            coalitions.len(),
            |i, members| members.copy_from_slice(&coalitions[i]),
            ws,
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::dataset::Task;
    use nfv_ml::model::FnModel;

    fn bg() -> Background {
        Background::from_rows(vec![vec![0.0, 10.0], vec![2.0, 20.0], vec![4.0, 30.0]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Background::from_rows(vec![]).is_err());
        assert!(Background::from_rows(vec![vec![]]).is_err());
        assert!(Background::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Background::from_rows(vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn means_are_columnwise() {
        let b = bg();
        assert_eq!(b.means, vec![2.0, 20.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.n_features(), 2);
        assert_eq!(b.row(4), &[2.0, 20.0], "wraps");
    }

    #[test]
    fn from_dataset_subsamples_deterministically() {
        let data = Dataset::new(
            vec!["a".into()],
            (0..100).map(|i| i as f64).collect(),
            vec![0.0; 100],
            Task::Regression,
        )
        .unwrap();
        let b1 = Background::from_dataset(&data, 10, 3).unwrap();
        let b2 = Background::from_dataset(&data, 10, 3).unwrap();
        assert_eq!(b1, b2);
        assert_eq!(b1.len(), 10);
        let all = Background::from_dataset(&data, 500, 3).unwrap();
        assert_eq!(all.len(), 100);
        assert!(Background::from_dataset(&data, 0, 3).is_err());
    }

    #[test]
    fn bulk_coalition_values_match_scalar_bitwise() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0].sin() * x[1] + x[0]);
        let x = [3.0, -2.0];
        let coalitions = vec![
            vec![false, false],
            vec![true, false],
            vec![false, true],
            vec![true, true],
        ];
        let mut ws = CoalitionWorkspace::default();
        let bulk = b.coalition_values(&model, &x, &coalitions, &mut ws);
        for (members, v) in coalitions.iter().zip(&bulk) {
            assert_eq!(*v, b.coalition_value(&model, &x, members), "bit-exact");
        }
        // Workspace reuse across calls is safe.
        let again = b.coalition_values(&model, &x, &coalitions, &mut ws);
        assert_eq!(bulk, again);
    }

    #[test]
    fn incremental_membership_fill_is_supported() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] + 2.0 * x[1]);
        let x = [5.0, 7.0];
        let mut ws = CoalitionWorkspace::default();
        let mut out = Vec::new();
        // Reveal features one at a time: {}, {0}, {0,1}.
        b.coalition_values_into(
            &model,
            &x,
            3,
            |i, members| {
                if i > 0 {
                    members[i - 1] = true;
                }
            },
            &mut ws,
            &mut out,
        );
        assert_eq!(out[0], b.coalition_value(&model, &x, &[false, false]));
        assert_eq!(out[1], b.coalition_value(&model, &x, &[true, false]));
        assert_eq!(out[2], b.coalition_value(&model, &x, &[true, true]));
        // Zero coalitions is a no-op that clears the output.
        b.coalition_values_into(&model, &x, 0, |_, _| {}, &mut ws, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn expected_output_and_coalition_values() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] + x[1]);
        assert!((b.expected_output(&model) - 22.0).abs() < 1e-12);
        let x = [100.0, 1000.0];
        // Empty coalition = base value.
        let v0 = b.coalition_value(&model, &x, &[false, false]);
        assert!((v0 - 22.0).abs() < 1e-12);
        // Full coalition = f(x).
        let v_full = b.coalition_value(&model, &x, &[true, true]);
        assert!((v_full - 1100.0).abs() < 1e-12);
        // Feature 0 only: x0 + E[b1].
        let v0only = b.coalition_value(&model, &x, &[true, false]);
        assert!((v0only - 120.0).abs() < 1e-12);
    }
}
