//! Background (reference) data: how "feature absent" is realized.
//!
//! Shapley-style methods need a value function `v(S) = E[f(x_S, X_{\bar S})]`;
//! we estimate the expectation by substituting features outside the
//! coalition with values from a background dataset (the *interventional* /
//! marginal convention used by KernelSHAP and interventional TreeSHAP).

use crate::XaiError;
use nfv_data::dataset::Dataset;
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A background sample set plus cached summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Background {
    rows: Vec<Vec<f64>>,
    /// Per-feature means of the background rows.
    pub means: Vec<f64>,
}

impl Background {
    /// Builds from explicit rows (all must share one length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Background, XaiError> {
        let Some(first) = rows.first() else {
            return Err(XaiError::Input("background needs at least one row".into()));
        };
        let d = first.len();
        if d == 0 {
            return Err(XaiError::Input("background rows are empty".into()));
        }
        if rows.iter().any(|r| r.len() != d) {
            return Err(XaiError::Input("background rows have mixed lengths".into()));
        }
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            return Err(XaiError::Input(
                "background contains non-finite values".into(),
            ));
        }
        let mut means = vec![0.0; d];
        for r in &rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= rows.len() as f64;
        }
        Ok(Background { rows, means })
    }

    /// Builds by sampling at most `max_rows` rows of `data` (deterministic
    /// subsample; KernelSHAP cost scales linearly in this).
    pub fn from_dataset(
        data: &Dataset,
        max_rows: usize,
        seed: u64,
    ) -> Result<Background, XaiError> {
        if max_rows == 0 {
            return Err(XaiError::Input("max_rows must be positive".into()));
        }
        let n = data.n_rows();
        let rows: Vec<Vec<f64>> = if n <= max_rows {
            data.rows().map(|r| r.to_vec()).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..max_rows)
                .map(|_| data.row(rng.gen_range(0..n)).to_vec())
                .collect()
        };
        Background::from_rows(rows)
    }

    /// Number of background rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature count.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Borrow of row `i` (wraps around — callers can index with any seed).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i % self.rows.len()]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// `E[f(X)]` over the background — the base value of every attribution.
    pub fn expected_output(&self, model: &dyn Regressor) -> f64 {
        self.rows.iter().map(|r| model.predict(r)).sum::<f64>() / self.rows.len() as f64
    }

    /// Estimates `v(S) = E[f(x_S, B_{\bar S})]`: for every background row,
    /// substitute the coalition features from `x` and average the model
    /// output. `in_coalition[j]` marks membership of feature `j`.
    pub fn coalition_value(&self, model: &dyn Regressor, x: &[f64], in_coalition: &[bool]) -> f64 {
        let mut composite = vec![0.0; x.len()];
        let mut sum = 0.0;
        for b in &self.rows {
            for j in 0..x.len() {
                composite[j] = if in_coalition[j] { x[j] } else { b[j] };
            }
            sum += model.predict(&composite);
        }
        sum / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::dataset::Task;
    use nfv_ml::model::FnModel;

    fn bg() -> Background {
        Background::from_rows(vec![vec![0.0, 10.0], vec![2.0, 20.0], vec![4.0, 30.0]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Background::from_rows(vec![]).is_err());
        assert!(Background::from_rows(vec![vec![]]).is_err());
        assert!(Background::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Background::from_rows(vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn means_are_columnwise() {
        let b = bg();
        assert_eq!(b.means, vec![2.0, 20.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.n_features(), 2);
        assert_eq!(b.row(4), &[2.0, 20.0], "wraps");
    }

    #[test]
    fn from_dataset_subsamples_deterministically() {
        let data = Dataset::new(
            vec!["a".into()],
            (0..100).map(|i| i as f64).collect(),
            vec![0.0; 100],
            Task::Regression,
        )
        .unwrap();
        let b1 = Background::from_dataset(&data, 10, 3).unwrap();
        let b2 = Background::from_dataset(&data, 10, 3).unwrap();
        assert_eq!(b1, b2);
        assert_eq!(b1.len(), 10);
        let all = Background::from_dataset(&data, 500, 3).unwrap();
        assert_eq!(all.len(), 100);
        assert!(Background::from_dataset(&data, 0, 3).is_err());
    }

    #[test]
    fn expected_output_and_coalition_values() {
        let b = bg();
        let model = FnModel::new(2, |x: &[f64]| x[0] + x[1]);
        assert!((b.expected_output(&model) - 22.0).abs() < 1e-12);
        let x = [100.0, 1000.0];
        // Empty coalition = base value.
        let v0 = b.coalition_value(&model, &x, &[false, false]);
        assert!((v0 - 22.0).abs() < 1e-12);
        // Full coalition = f(x).
        let v_full = b.coalition_value(&model, &x, &[true, true]);
        assert!((v_full - 1100.0).abs() < 1e-12);
        // Feature 0 only: x0 + E[b1].
        let v0only = b.coalition_value(&model, &x, &[true, false]);
        assert!((v0only - 120.0).abs() < 1e-12);
    }
}
