//! Grouped (Owen-style) attributions: Shapley values over *feature groups*.
//!
//! NFV telemetry has natural coalitions — the four metrics of one chain
//! stage rise and fall together — and the operator's question is usually
//! "which *stage* is responsible", not "which counter". Treating each group
//! as a single player and computing exact Shapley values over groups
//! answers that directly, is exact for any model, and needs only `2^G`
//! coalition values for `G` groups (G = chain length + 1, tiny).

use crate::background::{Background, CoalitionPlan, CoalitionWorkspace, FusedBlock};
use crate::explanation::Attribution;
use crate::XaiError;
use nfv_ml::model::Regressor;
use serde::{Deserialize, Serialize};

/// Largest group count accepted by [`grouped_shapley`] — the method
/// enumerates `2^G` coalitions, so this bounds a single explanation at
/// ~16.8M coalition evaluations.
pub const MAX_GROUPS: usize = 24;

/// A partition of the feature space into named groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureGroups {
    /// Group names, e.g. `["traffic", "stage 0 (fw)", "stage 1 (ids)"]`.
    pub names: Vec<String>,
    /// `assignment[j]` = index into `names` for feature `j`.
    pub assignment: Vec<usize>,
}

impl FeatureGroups {
    /// Validates and builds a grouping over `d` features.
    pub fn new(names: Vec<String>, assignment: Vec<usize>) -> Result<FeatureGroups, XaiError> {
        if names.is_empty() || assignment.is_empty() {
            return Err(XaiError::Input("empty grouping".into()));
        }
        if let Some(&bad) = assignment.iter().find(|&&g| g >= names.len()) {
            return Err(XaiError::Input(format!(
                "assignment references group {bad} of {}",
                names.len()
            )));
        }
        // Every group must own at least one feature (a player with no
        // features would always get φ = 0 and usually signals a bug).
        #[allow(clippy::needless_range_loop)] // g indexes names and assignment
        for g in 0..names.len() {
            if !assignment.contains(&g) {
                return Err(XaiError::Input(format!(
                    "group '{}' owns no features",
                    names[g]
                )));
            }
        }
        Ok(FeatureGroups { names, assignment })
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when there are no groups (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The standard NFV grouping for a telemetry schema produced by
    /// `nfv_data::features::FeatureSchema`: one "traffic" group for the
    /// global columns and one group per chain stage, named from the
    /// per-VNF feature prefixes (e.g. `"1_ids"`).
    pub fn per_stage(feature_names: &[String]) -> Result<FeatureGroups, XaiError> {
        let mut names: Vec<String> = vec!["traffic".into()];
        let mut assignment = Vec::with_capacity(feature_names.len());
        for n in feature_names {
            let parts: Vec<&str> = n.split('_').collect();
            let stage_tag = if parts.len() == 3 && parts[0].parse::<usize>().is_ok() {
                Some(format!("stage {}_{}", parts[0], parts[1]))
            } else {
                None
            };
            match stage_tag {
                Some(tag) => {
                    let g = names.iter().position(|x| *x == tag).unwrap_or_else(|| {
                        names.push(tag);
                        names.len() - 1
                    });
                    assignment.push(g);
                }
                None => assignment.push(0),
            }
        }
        FeatureGroups::new(names, assignment)
    }
}

/// Exact Shapley values over feature groups (Owen values with the trivial
/// within-group allocation — the group total is reported, not split).
pub fn grouped_shapley(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    groups: &FeatureGroups,
) -> Result<Attribution, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input("empty instance".into()));
    }
    if background.n_features() != d || groups.assignment.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x {d}, background {}, assignment {}",
            background.n_features(),
            groups.assignment.len()
        )));
    }
    let g = groups.len();
    if g > MAX_GROUPS {
        return Err(XaiError::Budget(format!(
            "grouped Shapley enumerates 2^G coalitions; G = {g} is too large"
        )));
    }

    // v(S) over group masks: features of in-coalition groups come from x.
    // Block-evaluated; the group mask doubles as the coalition index.
    let n_masks = 1usize << g;
    let mut v = Vec::with_capacity(n_masks);
    let mut ws = CoalitionWorkspace::default();
    background.coalition_values_into(
        model,
        x,
        n_masks,
        |mask, members| {
            for (j, m) in members.iter_mut().enumerate() {
                *m = (mask >> groups.assignment[j]) & 1 == 1;
            }
        },
        &mut ws,
        &mut v,
    );
    Ok(Attribution {
        names: groups.names.clone(),
        values: crate::shapley::exact::phi_from_mask_values(&v, g),
        base_value: v[0],
        prediction: v[n_masks - 1],
        method: "grouped-shapley".into(),
    })
}

/// The plan half of grouped Shapley for cross-request fusion: all `2^G`
/// group-coalition composites are stacked into the shared block without
/// evaluating; [`grouped_shapley_finish`] reduces them with the exact
/// arithmetic of [`grouped_shapley`].
#[derive(Debug, Clone)]
pub struct GroupedShapPlan {
    plan: CoalitionPlan,
    group_names: Vec<String>,
    g: usize,
}

impl GroupedShapPlan {
    /// Composite rows this plan occupies in its block.
    pub fn n_rows(&self) -> usize {
        self.plan.n_rows()
    }
}

/// Builds a [`GroupedShapPlan`] for `x`, appending its composite rows to
/// `block`. Guards mirror [`grouped_shapley`].
pub fn grouped_shapley_plan(
    x: &[f64],
    background: &Background,
    groups: &FeatureGroups,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) -> Result<GroupedShapPlan, XaiError> {
    let d = x.len();
    if d == 0 {
        return Err(XaiError::Input("empty instance".into()));
    }
    if background.n_features() != d || groups.assignment.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x {d}, background {}, assignment {}",
            background.n_features(),
            groups.assignment.len()
        )));
    }
    let g = groups.len();
    if g > MAX_GROUPS {
        return Err(XaiError::Budget(format!(
            "grouped Shapley enumerates 2^G coalitions; G = {g} is too large"
        )));
    }
    let plan = background.plan_coalitions(
        x,
        1usize << g,
        |mask, members| {
            for (j, m) in members.iter_mut().enumerate() {
                *m = (mask >> groups.assignment[j]) & 1 == 1;
            }
        },
        ws,
        block,
    );
    Ok(GroupedShapPlan {
        plan,
        group_names: groups.names.clone(),
        g,
    })
}

/// Completes a [`GroupedShapPlan`] against its evaluated block — results
/// are bit-identical to [`grouped_shapley`].
pub fn grouped_shapley_finish(
    plan: &GroupedShapPlan,
    block: &FusedBlock,
) -> Result<Attribution, XaiError> {
    let mut v = Vec::with_capacity(1usize << plan.g);
    plan.plan.values_into(block, &mut v);
    Ok(Attribution {
        names: plan.group_names.clone(),
        values: crate::shapley::exact::phi_from_mask_values(&v, plan.g),
        base_value: v[0],
        prediction: v[v.len() - 1],
        method: "grouped-shapley".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::exact::exact_shapley;
    use nfv_ml::model::FnModel;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn grouping_validation() {
        assert!(FeatureGroups::new(vec![], vec![]).is_err());
        assert!(FeatureGroups::new(vec!["a".into()], vec![1]).is_err());
        assert!(
            FeatureGroups::new(vec!["a".into(), "empty".into()], vec![0, 0]).is_err(),
            "group without features"
        );
        let ok = FeatureGroups::new(vec!["a".into(), "b".into()], vec![0, 1, 1]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn per_stage_grouping_parses_the_schema() {
        let feature_names: Vec<String> = vec![
            "offered_kpps".into(),
            "payload_bytes".into(),
            "0_fw_cpu".into(),
            "0_fw_queue".into(),
            "1_ids_cpu".into(),
            "1_ids_queue".into(),
        ];
        let g = FeatureGroups::per_stage(&feature_names).unwrap();
        assert_eq!(g.names[0], "traffic");
        assert!(g.names.contains(&"stage 0_fw".to_string()));
        assert!(g.names.contains(&"stage 1_ids".to_string()));
        assert_eq!(g.assignment[0], 0);
        assert_eq!(g.assignment[2], g.assignment[3], "fw metrics share a group");
        assert_ne!(g.assignment[2], g.assignment[4]);
    }

    #[test]
    fn grouped_sums_match_ungrouped_for_group_separable_models() {
        // f = (x0 + x1) + x2² — groups {0,1} and {2} are separable, so the
        // group attribution equals the sum of member attributions.
        let bg = Background::from_rows(vec![
            vec![0.0, 1.0, -1.0],
            vec![2.0, -1.0, 0.5],
            vec![1.0, 0.0, 2.0],
        ])
        .unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] + x[1] + x[2] * x[2]);
        let x = [1.5, 2.5, -2.0];
        let groups = FeatureGroups::new(vec!["pair".into(), "solo".into()], vec![0, 0, 1]).unwrap();
        let grouped = grouped_shapley(&model, &x, &bg, &groups).unwrap();
        let ungrouped = exact_shapley(&model, &x, &bg, &names(3)).unwrap();
        assert!((grouped.values[0] - (ungrouped.values[0] + ungrouped.values[1])).abs() < 1e-9);
        assert!((grouped.values[1] - ungrouped.values[2]).abs() < 1e-9);
        assert!(grouped.efficiency_gap().abs() < 1e-9);
    }

    #[test]
    fn within_group_interactions_stay_inside_the_group() {
        // f = x0·x1: ungrouped Shapley splits the interaction between the
        // features; grouping them makes the group carry it entirely and the
        // other group exactly zero.
        let bg = Background::from_rows(vec![vec![0.0, 0.0, 5.0]]).unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] * x[1]);
        let groups =
            FeatureGroups::new(vec!["pair".into(), "dummy".into()], vec![0, 0, 1]).unwrap();
        let g = grouped_shapley(&model, &[2.0, 3.0, 1.0], &bg, &groups).unwrap();
        assert!((g.values[0] - 6.0).abs() < 1e-12);
        assert_eq!(g.values[1], 0.0);
    }

    #[test]
    fn efficiency_always_holds() {
        let bg = Background::from_rows(vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.0, 0.0, 0.0, 0.0]])
            .unwrap();
        let model = FnModel::new(4, |x: &[f64]| x[0].sin() * x[1] + x[2] / (1.0 + x[3].abs()));
        let groups = FeatureGroups::new(vec!["a".into(), "b".into()], vec![0, 0, 1, 1]).unwrap();
        let g = grouped_shapley(&model, &[0.3, -1.0, 2.0, 0.5], &bg, &groups).unwrap();
        assert!(g.efficiency_gap().abs() < 1e-9, "{}", g.efficiency_gap());
    }

    #[test]
    fn guards() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        let groups = FeatureGroups::new(vec!["a".into()], vec![0, 0]).unwrap();
        assert!(grouped_shapley(&model, &[], &bg, &groups).is_err());
        let wrong = FeatureGroups::new(vec!["a".into()], vec![0]).unwrap();
        assert!(grouped_shapley(&model, &[1.0, 2.0], &bg, &wrong).is_err());
    }
}
