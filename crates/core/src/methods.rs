//! The open explainer registry: string-keyed method dispatch.
//!
//! Every servable attribution method — the seven built-ins plus anything
//! registered at runtime — lives in one process-wide [`MethodRegistry`]
//! mapping an **interned method id** (FNV-1a of the method name, see
//! [`method_id`]) to a [`MethodDescriptor`]: a factory closure
//! `Fn(&MethodConfig) -> Box<dyn Explainer>` plus an optional per-model
//! capability validator. Serving layers dispatch by id lookup only; no
//! layer above this module matches on a closed method enum.
//!
//! ## Why ids, not names
//!
//! Cache keys, content-derived seeds, and admission service-class keys
//! must be stable across processes and releases. A `&'static str` address
//! is neither hashable-stably nor wire-portable; the FNV-1a id of the
//! *frozen* built-in name is both. The built-in name → id mapping is
//! frozen (tested in `frozen_builtin_ids`); renaming a built-in is a
//! breaking change to every persisted cache fingerprint and blessed
//! baseline and must never happen silently.
//!
//! ## Registering your own method
//!
//! ```
//! use nfv_xai::prelude::*;
//! use std::sync::Arc;
//!
//! struct Doubler;
//! impl Explainer for Doubler {
//!     fn tag(&self) -> &'static str { "doubler" }
//!     fn fusable(&self) -> bool { false }
//!     fn plan(
//!         &self,
//!         _ctx: &ExplainContext<'_>,
//!         _ws: &mut CoalitionWorkspace,
//!         _block: &mut FusedBlock,
//!     ) -> Result<Box<dyn ExplainPlan>, XaiError> {
//!         Err(XaiError::Input("doubler cannot plan".into()))
//!     }
//!     fn direct(
//!         &self,
//!         ctx: &ExplainContext<'_>,
//!         _ws: &mut CoalitionWorkspace,
//!     ) -> Result<Attribution, XaiError> {
//!         let base = ctx.base_value();
//!         let pred = ctx.model.predict(ctx.x);
//!         let d = ctx.x.len() as f64;
//!         Ok(Attribution {
//!             names: ctx.names.to_vec(),
//!             values: ctx.x.iter().map(|_| (pred - base) / d).collect(),
//!             base_value: base,
//!             prediction: pred,
//!             method: "doubler".into(),
//!         })
//!     }
//! }
//!
//! let id = MethodRegistry::global().register("doubler", |_cfg| Ok(Box::new(Doubler)));
//! assert_eq!(id, method_id("doubler"));
//! assert!(MethodRegistry::global().get(id).is_some());
//! ```

use crate::background::{CoalitionWorkspace, FusedBlock};
use crate::explainer::{
    ExactShapleyExplainer, ExplainContext, ExplainPlan, Explainer, GroupedShapleyExplainer,
    KernelShapExplainer, LimeExplainer, PermutationExplainer, SamplingShapleyExplainer,
};
use crate::explanation::Attribution;
use crate::grouped::{FeatureGroups, MAX_GROUPS};
use crate::interactions::{interaction_values, MAX_INTERACTION_FEATURES};
use crate::shapley::{forest_shap, gbdt_shap, MAX_EXACT_FEATURES};
use crate::XaiError;
use nfv_ml::forest::RandomForest;
use nfv_ml::gbdt::Gbdt;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Interns a method name as its 64-bit FNV-1a hash.
///
/// This is the *only* name → id function in the system: serving cache
/// keys, admission service-class keys, and wire `#hex` escapes all derive
/// from it. `const` so frozen built-in ids can live in `const` tables.
pub const fn method_id(name: &str) -> u64 {
    // FNV-1a, same constants as the serving layer's row hashing.
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// A tree-structured model an explainer can walk directly (TreeSHAP needs
/// model internals, not just a `Regressor` surface).
#[derive(Debug, Clone)]
pub enum TreeModel {
    /// A gradient-boosted ensemble.
    Gbdt(Arc<Gbdt>),
    /// A bagged random forest.
    Forest(Arc<RandomForest>),
}

/// Everything a method factory may need to build an [`Explainer`] for one
/// (model, method, service class) combination.
///
/// Built by the serving layer per resolution; factories read only the
/// fields they care about and must error (not panic) on missing ones.
#[derive(Clone, Default)]
pub struct MethodConfig {
    /// The method's opaque budget word (e.g. coalition count for
    /// KernelSHAP, `2·P + antithetic` for sampling Shapley). Zero for
    /// deterministic methods.
    pub budget: u64,
    /// Feature count of the model being explained.
    pub n_features: usize,
    /// Feature grouping, for group-valued methods (Owen/grouped Shapley).
    pub groups: Option<FeatureGroups>,
    /// The tree structure, when the model is a tree ensemble. TreeSHAP
    /// requires it; other methods ignore it.
    pub trees: Option<TreeModel>,
    /// Anytime coarsening divisor for this service class (the queue-full
    /// degradation path divides sampling budgets by this). Informational
    /// to factories; the serving layer applies it before resolution.
    pub anytime_divisor: u64,
}

/// What a model can support, for per-method capability validation.
#[derive(Debug, Clone, Copy)]
pub struct ModelCaps {
    /// Feature count.
    pub n_features: usize,
    /// Number of feature groups the registration derived.
    pub n_groups: usize,
    /// Whether the model exposes walkable tree structure.
    pub is_tree: bool,
    /// Human-readable model kind (for error messages).
    pub kind: &'static str,
}

type Factory = Arc<dyn Fn(&MethodConfig) -> Result<Box<dyn Explainer>, XaiError> + Send + Sync>;
type Validator = Arc<dyn Fn(&ModelCaps) -> Result<(), String> + Send + Sync>;

/// One registered method: its frozen name, interned id, factory, and
/// optional capability validator.
#[derive(Clone)]
pub struct MethodDescriptor {
    name: Arc<str>,
    id: u64,
    factory: Factory,
    validator: Option<Validator>,
}

impl MethodDescriptor {
    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned id (`method_id(self.name())`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Builds an explainer for one resolution.
    pub fn instantiate(&self, cfg: &MethodConfig) -> Result<Box<dyn Explainer>, XaiError> {
        (self.factory)(cfg)
    }

    /// Checks the method against a model's capabilities. `Err` carries a
    /// human-readable reason suitable for a typed reject.
    pub fn validate(&self, caps: &ModelCaps) -> Result<(), String> {
        match &self.validator {
            Some(v) => v(caps),
            None => Ok(()),
        }
    }
}

/// The process-wide, open method registry.
///
/// [`MethodRegistry::global`] lazily registers the built-ins on first use;
/// tests and embedders add their own methods with
/// [`MethodRegistry::register`]. Lookups are by interned id, so the hot
/// serving path does one `HashMap` probe under a read lock — no string
/// comparison, no enum match.
pub struct MethodRegistry {
    methods: RwLock<HashMap<u64, MethodDescriptor>>,
}

impl MethodRegistry {
    /// An empty registry (no built-ins). Prefer [`MethodRegistry::global`].
    pub fn new() -> MethodRegistry {
        MethodRegistry {
            methods: RwLock::new(HashMap::new()),
        }
    }

    /// The process-wide registry, with all built-in methods registered.
    pub fn global() -> &'static MethodRegistry {
        static GLOBAL: OnceLock<MethodRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let reg = MethodRegistry::new();
            register_builtins(&reg);
            reg
        })
    }

    /// Registers (or replaces — last registration wins, so tests can
    /// shadow) a method by name. Returns the interned id.
    pub fn register<F>(&self, name: &str, factory: F) -> u64
    where
        F: Fn(&MethodConfig) -> Result<Box<dyn Explainer>, XaiError> + Send + Sync + 'static,
    {
        self.register_with_validator_impl(name, Arc::new(factory), None)
    }

    /// Like [`MethodRegistry::register`], with a capability validator the
    /// serving layer runs at admission (shape/kind guards produce typed
    /// rejects instead of mid-flight explain errors).
    pub fn register_with_validator<F, V>(&self, name: &str, factory: F, validator: V) -> u64
    where
        F: Fn(&MethodConfig) -> Result<Box<dyn Explainer>, XaiError> + Send + Sync + 'static,
        V: Fn(&ModelCaps) -> Result<(), String> + Send + Sync + 'static,
    {
        self.register_with_validator_impl(name, Arc::new(factory), Some(Arc::new(validator)))
    }

    fn register_with_validator_impl(
        &self,
        name: &str,
        factory: Factory,
        validator: Option<Validator>,
    ) -> u64 {
        let id = method_id(name);
        let desc = MethodDescriptor {
            name: Arc::from(name),
            id,
            factory,
            validator,
        };
        self.methods
            .write()
            .expect("method registry poisoned")
            .insert(id, desc);
        id
    }

    /// Looks up a method by interned id.
    pub fn get(&self, id: u64) -> Option<MethodDescriptor> {
        self.methods
            .read()
            .expect("method registry poisoned")
            .get(&id)
            .cloned()
    }

    /// Looks up a method by name.
    pub fn get_by_name(&self, name: &str) -> Option<MethodDescriptor> {
        self.get(method_id(name))
    }

    /// The registered name behind an id, if any.
    pub fn name_of(&self, id: u64) -> Option<Arc<str>> {
        self.methods
            .read()
            .expect("method registry poisoned")
            .get(&id)
            .map(|d| Arc::clone(&d.name))
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .methods
            .read()
            .expect("method registry poisoned")
            .values()
            .map(|d| d.name.to_string())
            .collect();
        out.sort();
        out
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.methods.read().expect("method registry poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MethodRegistry {
    fn default() -> Self {
        MethodRegistry::new()
    }
}

/// TreeSHAP behind the [`Explainer`] trait: walks the owned tree
/// structure directly (the `ExplainContext` model — possibly a packed SoA
/// engine — is ignored; both are bit-identical by the packing contract).
#[derive(Clone)]
pub struct TreeShapExplainer {
    /// The tree ensemble to walk.
    pub trees: TreeModel,
}

impl Explainer for TreeShapExplainer {
    fn tag(&self) -> &'static str {
        "tree-shap"
    }
    fn fusable(&self) -> bool {
        false
    }
    fn plan(
        &self,
        _ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
        _block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        Err(XaiError::Input(
            "tree-shap walks tree structure; it does not plan into a fused block".into(),
        ))
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        match &self.trees {
            TreeModel::Gbdt(m) => gbdt_shap(m, ctx.x, ctx.names),
            TreeModel::Forest(m) => forest_shap(m, ctx.x, ctx.names),
        }
    }
}

/// Exact pairwise Shapley interaction values behind the [`Explainer`]
/// trait — the first method added through the open registry rather than
/// the legacy enum.
///
/// The `d×d` [`crate::interactions::InteractionMatrix`] is flattened
/// row-major into a `d²`-entry [`Attribution`]: entry `(i, j)` is named
/// `names[i]` on the diagonal and `"a×b"` off it. Because each row sums
/// to the ordinary Shapley value φ_i, the flattened values still satisfy
/// efficiency exactly (`Σ = f(x) − E[f]`), so the serving layer's
/// quantized cache tier and report machinery work unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct InteractionsExplainer;

impl Explainer for InteractionsExplainer {
    fn tag(&self) -> &'static str {
        "interactions"
    }
    fn fusable(&self) -> bool {
        false
    }
    fn plan(
        &self,
        _ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
        _block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        Err(XaiError::Input(
            "interactions produce a d×d matrix; they do not plan into a fused block".into(),
        ))
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        let m = interaction_values(ctx.model, ctx.x, ctx.background, ctx.names)?;
        let d = m.len();
        let mut names = Vec::with_capacity(d * d);
        let mut values = Vec::with_capacity(d * d);
        for i in 0..d {
            for j in 0..d {
                if i == j {
                    names.push(ctx.names[i].clone());
                } else {
                    names.push(format!("{}×{}", ctx.names[i], ctx.names[j]));
                }
                values.push(m.get(i, j));
            }
        }
        Ok(Attribution {
            names,
            values,
            base_value: m.base_value,
            prediction: m.prediction,
            method: "interactions".into(),
        })
    }
}

fn register_builtins(reg: &MethodRegistry) {
    reg.register_with_validator(
        "tree-shap",
        |cfg| match &cfg.trees {
            Some(trees) => Ok(Box::new(TreeShapExplainer {
                trees: trees.clone(),
            })),
            None => Err(XaiError::Input("tree-shap requires a tree model".into())),
        },
        |caps| {
            if caps.is_tree {
                Ok(())
            } else {
                Err(format!(
                    "tree-shap requires a tree model, got `{}`",
                    caps.kind
                ))
            }
        },
    );
    reg.register("kernel-shap", |cfg| {
        Ok(Box::new(KernelShapExplainer {
            n_coalitions: cfg.budget as usize,
            ridge: 0.0,
        }))
    });
    reg.register("lime", |cfg| {
        Ok(Box::new(LimeExplainer {
            n_samples: cfg.budget as usize,
        }))
    });
    reg.register("sampling-shapley", |cfg| {
        Ok(Box::new(SamplingShapleyExplainer {
            n_permutations: (cfg.budget / 2) as usize,
            antithetic: cfg.budget & 1 == 1,
        }))
    });
    reg.register_with_validator(
        "exact-shapley",
        |_cfg| Ok(Box::new(ExactShapleyExplainer)),
        |caps| {
            if caps.n_features <= MAX_EXACT_FEATURES {
                Ok(())
            } else {
                Err(format!(
                    "exact-shapley limited to {MAX_EXACT_FEATURES} features, got {}",
                    caps.n_features
                ))
            }
        },
    );
    reg.register_with_validator(
        "grouped-shapley",
        |cfg| match &cfg.groups {
            Some(groups) => Ok(Box::new(GroupedShapleyExplainer {
                groups: groups.clone(),
            })),
            None => Err(XaiError::Input(
                "grouped-shapley requires feature groups".into(),
            )),
        },
        |caps| {
            if caps.n_groups <= MAX_GROUPS {
                Ok(())
            } else {
                Err(format!(
                    "grouped-shapley limited to {MAX_GROUPS} groups, got {}",
                    caps.n_groups
                ))
            }
        },
    );
    reg.register("permutation", |_cfg| Ok(Box::new(PermutationExplainer)));
    reg.register_with_validator(
        "interactions",
        |_cfg| Ok(Box::new(InteractionsExplainer)),
        |caps| {
            if caps.n_features < 2 {
                Err(format!(
                    "interactions need at least 2 features, got {}",
                    caps.n_features
                ))
            } else if caps.n_features > MAX_INTERACTION_FEATURES {
                Err(format!(
                    "interactions limited to {MAX_INTERACTION_FEATURES} features, got {}",
                    caps.n_features
                ))
            } else {
                Ok(())
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::Background;
    use nfv_data::synth::friedman1;
    use nfv_ml::gbdt::{Gbdt, GbdtParams};

    /// The frozen built-in name → id mapping. These literals are load-
    /// bearing: serving cache fingerprints, EWMA service-class keys, and
    /// content-derived seeds all hash the id, so a change here invalidates
    /// every persisted baseline. Never update the expected values —
    /// register a *new* name instead.
    #[test]
    fn frozen_builtin_ids() {
        let frozen: [(&str, u64); 8] = [
            ("tree-shap", 0x54c3_ee37_5518_dfea),
            ("kernel-shap", 0xe245_1ecf_d5f1_684d),
            ("lime", 0xbf55_95ad_6957_925c),
            ("sampling-shapley", 0x65b4_6f9c_e1c6_6499),
            ("exact-shapley", 0xec01_0b19_9367_dfe5),
            ("grouped-shapley", 0x1fc7_9ffb_7312_d74c),
            ("permutation", 0x30c0_a849_13fc_221b),
            ("interactions", 0xa29e_e326_d09f_9848),
        ];
        for (name, id) in frozen {
            assert_eq!(method_id(name), id, "frozen id drifted for `{name}`");
            let desc = MethodRegistry::global()
                .get(id)
                .unwrap_or_else(|| panic!("builtin `{name}` not registered"));
            assert_eq!(desc.name(), name);
            assert_eq!(desc.id(), id);
        }
    }

    #[test]
    fn global_registers_all_builtins_and_lookup_by_name_works() {
        let reg = MethodRegistry::global();
        assert!(reg.len() >= 8);
        for name in [
            "tree-shap",
            "kernel-shap",
            "lime",
            "sampling-shapley",
            "exact-shapley",
            "grouped-shapley",
            "permutation",
            "interactions",
        ] {
            let d = reg.get_by_name(name).expect("builtin registered");
            assert_eq!(d.name(), name);
            assert_eq!(reg.name_of(d.id()).as_deref(), Some(name));
        }
        assert!(reg.get(0xdead_beef_dead_beef).is_none());
    }

    #[test]
    fn factories_honor_budget_words_and_missing_inputs() {
        let reg = MethodRegistry::global();
        let cfg = MethodConfig {
            budget: 64 * 2 + 1,
            ..Default::default()
        };
        let e = reg
            .get_by_name("sampling-shapley")
            .unwrap()
            .instantiate(&cfg)
            .unwrap();
        assert_eq!(e.tag(), "sampling-shapley");
        // Group- and tree-backed methods refuse configs missing their input.
        for name in ["grouped-shapley", "tree-shap"] {
            let err = reg
                .get_by_name(name)
                .unwrap()
                .instantiate(&MethodConfig::default());
            assert!(err.is_err(), "{name} should refuse an empty config");
        }
    }

    #[test]
    fn validators_gate_capabilities() {
        let reg = MethodRegistry::global();
        let tree_caps = ModelCaps {
            n_features: 8,
            n_groups: 3,
            is_tree: true,
            kind: "gbdt",
        };
        let wide_caps = ModelCaps {
            n_features: 40,
            n_groups: 30,
            is_tree: false,
            kind: "linear",
        };
        let checks = [
            ("tree-shap", tree_caps, wide_caps),
            ("exact-shapley", tree_caps, wide_caps),
            ("grouped-shapley", tree_caps, wide_caps),
            ("interactions", tree_caps, wide_caps),
        ];
        for (name, ok, bad) in checks {
            let d = reg.get_by_name(name).unwrap();
            assert!(d.validate(&ok).is_ok(), "{name} should accept {ok:?}");
            assert!(d.validate(&bad).is_err(), "{name} should reject {bad:?}");
        }
        // Unvalidated methods accept anything.
        let d = reg.get_by_name("kernel-shap").unwrap();
        assert!(d.validate(&wide_caps).is_ok());
    }

    #[test]
    fn interactions_explainer_flattens_with_exact_efficiency() {
        let synth = friedman1(200, 5, 0.05, 11).unwrap();
        let d = synth.data.names.len();
        let model = Gbdt::fit(
            &synth.data,
            &GbdtParams {
                n_rounds: 12,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let background = Background::from_dataset(&synth.data, 12, 3).unwrap();
        let x = synth.data.row(0).to_vec();
        let ctx = ExplainContext {
            model: &model,
            x: &x,
            background: &background,
            names: &synth.data.names,
            base_hint: None,
            seed: 7,
        };
        let mut ws = CoalitionWorkspace::default();
        let attr = InteractionsExplainer.direct(&ctx, &mut ws).unwrap();
        assert_eq!(attr.values.len(), d * d);
        assert_eq!(attr.names.len(), d * d);
        assert_eq!(attr.method, "interactions");
        assert!(
            attr.efficiency_gap().abs() < 1e-8,
            "flattened interactions must stay efficient, gap = {}",
            attr.efficiency_gap()
        );
        // Matches the raw matrix entry-for-entry.
        let m = interaction_values(&model, &x, &background, &synth.data.names).unwrap();
        for i in 0..d {
            for j in 0..d {
                assert_eq!(attr.values[i * d + j], m.get(i, j));
            }
        }
        // Diagonal keeps the plain feature name; off-diagonal names the pair.
        assert_eq!(attr.names[0], synth.data.names[0]);
        assert!(attr.names[1].contains('×'));
    }

    #[test]
    fn tree_shap_explainer_matches_free_function() {
        let synth = friedman1(200, 5, 0.05, 5).unwrap();
        let model = Gbdt::fit(
            &synth.data,
            &GbdtParams {
                n_rounds: 10,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let background = Background::from_dataset(&synth.data, 8, 3).unwrap();
        let x = synth.data.row(3).to_vec();
        let expect = gbdt_shap(&model, &x, &synth.data.names).unwrap();
        let model = Arc::new(model);
        let explainer = TreeShapExplainer {
            trees: TreeModel::Gbdt(Arc::clone(&model)),
        };
        let ctx = ExplainContext {
            model: model.as_ref(),
            x: &x,
            background: &background,
            names: &synth.data.names,
            base_hint: None,
            seed: 0,
        };
        let mut ws = CoalitionWorkspace::default();
        let got = explainer.direct(&ctx, &mut ws).unwrap();
        assert_eq!(got.values, expect.values);
        assert_eq!(got.base_value, expect.base_value);
        assert!(!explainer.fusable());
        assert!(explainer
            .plan(&ctx, &mut ws, &mut FusedBlock::default())
            .is_err());
    }

    #[test]
    fn registration_is_last_wins_and_names_sorted() {
        let reg = MethodRegistry::new();
        reg.register("alpha", |_| Ok(Box::new(InteractionsExplainer)));
        reg.register("beta", |_| Ok(Box::new(InteractionsExplainer)));
        reg.register("alpha", |_| Ok(Box::new(PermutationExplainer)));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["alpha".to_string(), "beta".to_string()]);
        let e = reg
            .get_by_name("alpha")
            .unwrap()
            .instantiate(&MethodConfig::default())
            .unwrap();
        assert_eq!(e.tag(), "permutation", "last registration wins");
    }
}
