//! SAGE — Shapley Additive Global importancE (Covert, Lundberg & Lee,
//! 2020): global feature importance as the Shapley value of each feature's
//! contribution to the model's *predictive performance* (expected loss
//! reduction), rather than to individual predictions.
//!
//! Where mean-|SHAP| says "this feature moves predictions", SAGE says
//! "this feature makes the model *better*" — exactly the question when
//! deciding which telemetry streams are worth exporting at all.

use crate::background::{Background, CoalitionPlan, CoalitionWorkspace, FusedBlock};
use crate::XaiError;
use nfv_data::dataset::{Dataset, Task};
use nfv_ml::model::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// SAGE estimation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SageConfig {
    /// Permutations sampled (each costs `d + 1` loss evaluations over the
    /// sampled rows).
    pub n_permutations: usize,
    /// Rows of the evaluation dataset sampled per permutation.
    pub rows_per_permutation: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SageConfig {
    fn default() -> Self {
        Self {
            n_permutations: 64,
            rows_per_permutation: 32,
            seed: 0,
        }
    }
}

/// Global importance values from SAGE.
#[derive(Debug, Clone, PartialEq)]
pub struct SageImportance {
    /// Feature names from the dataset.
    pub names: Vec<String>,
    /// Per-feature expected loss reduction (higher = more valuable).
    pub values: Vec<f64>,
    /// Loss of the no-information predictor (all features marginalized).
    pub base_loss: f64,
    /// Loss of the full model.
    pub full_loss: f64,
}

impl SageImportance {
    /// Indices sorted by importance descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&i, &j| self.values[j].total_cmp(&self.values[i]));
        idx
    }
}

fn loss(task: Task, pred: f64, y: f64) -> f64 {
    match task {
        Task::Regression => (pred - y).powi(2),
        Task::BinaryClassification => {
            let p = pred.clamp(1e-12, 1.0 - 1e-12);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        }
    }
}

/// Estimates SAGE values of `model` on `data` by permutation sampling:
/// walk a random feature ordering, revealing features one at a time
/// (marginalizing the rest over the background), and credit each feature
/// with the loss drop its reveal causes.
pub fn sage(
    model: &dyn Regressor,
    data: &Dataset,
    background: &Background,
    cfg: &SageConfig,
) -> Result<SageImportance, XaiError> {
    let d = data.n_features();
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "background has {} features, data {d}",
            background.n_features()
        )));
    }
    if cfg.n_permutations == 0 || cfg.rows_per_permutation == 0 {
        return Err(XaiError::Budget(
            "n_permutations and rows_per_permutation must be positive".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = data.n_rows();
    let mut perm: Vec<usize> = (0..d).collect();
    let mut values = vec![0.0; d];
    let mut base_loss_sum = 0.0;
    let mut full_loss_sum = 0.0;
    let mut count = 0.0;
    let mut ws = CoalitionWorkspace::default();
    let mut vals: Vec<f64> = Vec::new();
    for _ in 0..cfg.n_permutations {
        perm.shuffle(&mut rng);
        for _ in 0..cfg.rows_per_permutation {
            let i = rng.gen_range(0..n);
            let x = data.row(i);
            let y = data.y[i];
            // The d + 1 coalitions of one reveal walk ({}, {π₁}, {π₁,π₂},
            // …) evaluated in bulk: the membership buffer starts all-false
            // and persists, so each step just flips one feature on.
            background.coalition_values_into(
                model,
                x,
                d + 1,
                |k, members| {
                    if k > 0 {
                        members[perm[k - 1]] = true;
                    }
                },
                &mut ws,
                &mut vals,
            );
            let mut prev = loss(data.task, vals[0], y);
            base_loss_sum += prev;
            for (k, &j) in perm.iter().enumerate() {
                let cur = loss(data.task, vals[k + 1], y);
                values[j] += prev - cur;
                prev = cur;
            }
            full_loss_sum += prev;
            count += 1.0;
        }
    }
    for v in &mut values {
        *v /= count;
    }
    Ok(SageImportance {
        names: data.names.clone(),
        values,
        base_loss: base_loss_sum / count,
        full_loss: full_loss_sum / count,
    })
}

/// One reveal walk of a [`SagePlan`]: the permutation, the target row's
/// label, and the coalition rows it reserved in the shared block.
#[derive(Debug, Clone)]
struct SageWalk {
    perm: Vec<usize>,
    y: f64,
    plan: CoalitionPlan,
}

/// The plan half of [`sage`] for deferred/fused evaluation: every reveal
/// walk's coalition composites are stacked into a [`FusedBlock`] without
/// evaluating the model; [`sage_finish`] reduces them with the exact
/// accumulation order of [`sage`], so results are bit-identical.
#[derive(Debug, Clone)]
pub struct SagePlan {
    walks: Vec<SageWalk>,
    names: Vec<String>,
    task: Task,
    d: usize,
}

impl SagePlan {
    /// Composite rows this plan occupies in its block.
    pub fn n_rows(&self) -> usize {
        self.walks.iter().map(|w| w.plan.n_rows()).sum()
    }
}

/// Builds a [`SagePlan`], appending every reveal walk's composite rows to
/// `block`. Draws the same permutations and row samples as [`sage`] with
/// the same `cfg` (identical RNG consumption order); guards mirror it.
pub fn sage_plan(
    data: &Dataset,
    background: &Background,
    cfg: &SageConfig,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) -> Result<SagePlan, XaiError> {
    let d = data.n_features();
    if background.n_features() != d {
        return Err(XaiError::Input(format!(
            "background has {} features, data {d}",
            background.n_features()
        )));
    }
    if cfg.n_permutations == 0 || cfg.rows_per_permutation == 0 {
        return Err(XaiError::Budget(
            "n_permutations and rows_per_permutation must be positive".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = data.n_rows();
    let mut perm: Vec<usize> = (0..d).collect();
    let mut walks = Vec::with_capacity(cfg.n_permutations * cfg.rows_per_permutation);
    for _ in 0..cfg.n_permutations {
        perm.shuffle(&mut rng);
        for _ in 0..cfg.rows_per_permutation {
            let i = rng.gen_range(0..n);
            let plan = background.plan_coalitions(
                data.row(i),
                d + 1,
                |k, members| {
                    if k > 0 {
                        members[perm[k - 1]] = true;
                    }
                },
                ws,
                block,
            );
            walks.push(SageWalk {
                perm: perm.clone(),
                y: data.y[i],
                plan,
            });
        }
    }
    Ok(SagePlan {
        walks,
        names: data.names.clone(),
        task: data.task,
        d,
    })
}

/// Completes a [`SagePlan`] against its evaluated block — results are
/// bit-identical to [`sage`] with the same configuration.
pub fn sage_finish(plan: &SagePlan, block: &FusedBlock) -> Result<SageImportance, XaiError> {
    let mut values = vec![0.0; plan.d];
    let mut base_loss_sum = 0.0;
    let mut full_loss_sum = 0.0;
    let mut count = 0.0;
    let mut vals: Vec<f64> = Vec::new();
    for walk in &plan.walks {
        walk.plan.values_into(block, &mut vals);
        let mut prev = loss(plan.task, vals[0], walk.y);
        base_loss_sum += prev;
        for (k, &j) in walk.perm.iter().enumerate() {
            let cur = loss(plan.task, vals[k + 1], walk.y);
            values[j] += prev - cur;
            prev = cur;
        }
        full_loss_sum += prev;
        count += 1.0;
    }
    for v in &mut values {
        *v /= count;
    }
    Ok(SageImportance {
        names: plan.names.clone(),
        values,
        base_loss: base_loss_sum / count,
        full_loss: full_loss_sum / count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_data::prelude::*;
    use nfv_ml::model::FnModel;

    #[test]
    fn sage_credits_informative_features_only() {
        let s = linear_gaussian(1_000, 2, 2, 0.1, 71).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(4, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let bg = Background::from_dataset(&s.data, 20, 1).unwrap();
        let imp = sage(&model, &s.data, &bg, &SageConfig::default()).unwrap();
        // Informative features reduce loss; noise features hover near 0.
        assert!(
            imp.values[0] > 5.0 * imp.values[2].abs(),
            "{:?}",
            imp.values
        );
        assert!(imp.values[1] > 3.0 * imp.values[3].abs());
        assert_eq!(imp.ranking()[0], 0, "strongest coefficient first");
        // Conservation: values sum to base − full loss.
        let total: f64 = imp.values.iter().sum();
        assert!(
            (total - (imp.base_loss - imp.full_loss)).abs() < 1e-9,
            "total {total} vs {} − {}",
            imp.base_loss,
            imp.full_loss
        );
        assert!(imp.full_loss < imp.base_loss);
    }

    #[test]
    fn sage_on_classification_uses_log_loss() {
        let s = interaction_xor(1_500, 1, 72).unwrap();
        let model = FnModel::new(3, |x: &[f64]| if x[0] * x[1] > 0.0 { 0.95 } else { 0.05 });
        let bg = Background::from_dataset(&s.data, 20, 2).unwrap();
        let imp = sage(&model, &s.data, &bg, &SageConfig::default()).unwrap();
        // Both interacting features matter; the noise one does not.
        assert!(imp.values[0] > 0.05);
        assert!(imp.values[1] > 0.05);
        assert!(imp.values[2].abs() < 0.03, "{:?}", imp.values);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = linear_gaussian(200, 2, 1, 0.1, 73).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(3, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let bg = Background::from_dataset(&s.data, 10, 3).unwrap();
        let cfg = SageConfig {
            n_permutations: 16,
            rows_per_permutation: 8,
            seed: 5,
        };
        let a = sage(&model, &s.data, &bg, &cfg).unwrap();
        let b = sage(&model, &s.data, &bg, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn planned_sage_is_bit_identical_to_direct() {
        let s = linear_gaussian(150, 2, 1, 0.1, 78).unwrap();
        let coefs = s.coefficients.clone();
        let model = FnModel::new(3, move |x: &[f64]| {
            x.iter().zip(&coefs).map(|(a, b)| a * b).sum()
        });
        let bg = Background::from_dataset(&s.data, 8, 4).unwrap();
        let cfg = SageConfig {
            n_permutations: 8,
            rows_per_permutation: 4,
            seed: 9,
        };
        let direct = sage(&model, &s.data, &bg, &cfg).unwrap();
        let mut ws = CoalitionWorkspace::default();
        let mut block = FusedBlock::default();
        let plan = sage_plan(&s.data, &bg, &cfg, &mut ws, &mut block).unwrap();
        assert_eq!(plan.n_rows(), block.n_rows());
        block.evaluate(&model);
        let fused = sage_finish(&plan, &block).unwrap();
        assert_eq!(direct.base_loss.to_bits(), fused.base_loss.to_bits());
        assert_eq!(direct.full_loss.to_bits(), fused.full_loss.to_bits());
        for (a, b) in direct.values.iter().zip(&fused.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(direct.names, fused.names);
    }

    #[test]
    fn guards() {
        let s = linear_gaussian(50, 2, 0, 0.1, 74).unwrap();
        let model = FnModel::new(2, |x: &[f64]| x[0]);
        let wrong_bg = Background::from_rows(vec![vec![0.0]]).unwrap();
        assert!(sage(&model, &s.data, &wrong_bg, &SageConfig::default()).is_err());
        let bg = Background::from_dataset(&s.data, 5, 0).unwrap();
        assert!(sage(
            &model,
            &s.data,
            &bg,
            &SageConfig {
                n_permutations: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
