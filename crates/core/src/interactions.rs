//! Shapley interaction values (Grabisch & Roubens, 1999; popularized for
//! ML by the TreeSHAP-interaction work): pairwise credit `Φ_{ij}` telling
//! an operator that, e.g., high load only hurts *together with* a CPU
//! throttle — the "higher-order explanation" the survey literature calls
//! for beyond first-order heatmaps.
//!
//! Exact computation enumerates `2^d` coalition values, so it is bounded
//! to small `d` like exact Shapley; the NFV use is stage-level (pass the
//! grouped value function when d is large).

use crate::background::{Background, CoalitionWorkspace};
use crate::XaiError;
use nfv_ml::model::Regressor;
use serde::{Deserialize, Serialize};

/// Maximum feature count for exact interaction enumeration.
pub const MAX_INTERACTION_FEATURES: usize = 16;

/// A symmetric matrix of pairwise interaction values plus the main
/// effects on its diagonal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionMatrix {
    /// Feature names.
    pub names: Vec<String>,
    /// Row-major `d×d` matrix. `m[i][j]` for `i ≠ j` is the interaction
    /// value Φ_{ij} (symmetric, each pair's total split as Φ_{ij} = Φ_{ji});
    /// `m[i][i]` is the main effect, so each row sums to the ordinary
    /// Shapley value φ_i.
    values: Vec<f64>,
    /// `E[f]` over the background.
    pub base_value: f64,
    /// `f(x)`.
    pub prediction: f64,
}

impl InteractionMatrix {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Entry (i, j).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.len() + j]
    }

    /// Row sums — the ordinary Shapley values.
    pub fn shapley_values(&self) -> Vec<f64> {
        let d = self.len();
        (0..d)
            .map(|i| (0..d).map(|j| self.get(i, j)).sum())
            .collect()
    }

    /// The `k` strongest off-diagonal pairs by |Φ_{ij}|, as
    /// `(i, j, value)` with `i < j` (value = total pair interaction,
    /// i.e. Φ_{ij} + Φ_{ji}).
    pub fn top_pairs(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let d = self.len();
        let mut pairs = Vec::new();
        for i in 0..d {
            for j in (i + 1)..d {
                pairs.push((i, j, self.get(i, j) + self.get(j, i)));
            }
        }
        pairs.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
        pairs.truncate(k);
        pairs
    }
}

/// Computes exact Shapley interaction values of `model` at `x` against
/// `background`.
///
/// Definitions used: for `i ≠ j` the Shapley interaction index
/// `Φ*_{ij} = Σ_{S ⊆ N\{i,j}} w₂(|S|) Δ_{ij}(S)` with the discrete second
/// difference `Δ_{ij}(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S)` and
/// `w₂(s) = s!(d−s−2)!/(d−1)!`; the reported `Φ_{ij} = Φ_{ji} = Φ*_{ij}/2`
/// (the pair total split evenly), and main effects are
/// `Φ_{ii} = φ_i − Σ_{j≠i} Φ_{ij}` so rows sum to the Shapley values.
pub fn interaction_values(
    model: &dyn Regressor,
    x: &[f64],
    background: &Background,
    names: &[String],
) -> Result<InteractionMatrix, XaiError> {
    let d = x.len();
    if d < 2 {
        return Err(XaiError::Input(
            "interactions need at least two features".into(),
        ));
    }
    if d > MAX_INTERACTION_FEATURES {
        return Err(XaiError::Budget(format!(
            "exact interactions limited to {MAX_INTERACTION_FEATURES} features, got {d}"
        )));
    }
    if background.n_features() != d || names.len() != d {
        return Err(XaiError::Input(format!(
            "shape mismatch: x {d}, background {}, names {}",
            background.n_features(),
            names.len()
        )));
    }

    // All coalition values once, block-evaluated (mask == coalition index).
    let n_masks = 1usize << d;
    let mut v = Vec::with_capacity(n_masks);
    let mut ws = CoalitionWorkspace::default();
    background.coalition_values_into(
        model,
        x,
        n_masks,
        |mask, members| {
            for (j, m) in members.iter_mut().enumerate() {
                *m = (mask >> j) & 1 == 1;
            }
        },
        &mut ws,
        &mut v,
    );

    let mut fact = vec![1.0f64; d + 1];
    for i in 1..=d {
        fact[i] = fact[i - 1] * i as f64;
    }
    // Pair weight w₂(s) over subsets excluding both players
    // (Grabisch–Roubens interaction index; the ½ appears only when the
    // pair total is split onto the two symmetric matrix entries below).
    let w2 = |s: usize| fact[s] * fact[d - s - 2] / fact[d - 1];
    // Ordinary Shapley for the diagonal completion.
    let w1 = |s: usize| fact[s] * fact[d - s - 1] / fact[d];

    let mut phi = vec![0.0; d];
    let mut inter = vec![0.0; d * d];
    for (mask, &v_s) in v.iter().enumerate() {
        let s = mask.count_ones() as usize;
        if s < d {
            let w = w1(s);
            for (i, p) in phi.iter_mut().enumerate() {
                if (mask >> i) & 1 == 0 {
                    *p += w * (v[mask | (1 << i)] - v_s);
                }
            }
        }
        if s <= d - 2 {
            let w = w2(s);
            for i in 0..d {
                if (mask >> i) & 1 == 1 {
                    continue;
                }
                for j in (i + 1)..d {
                    if (mask >> j) & 1 == 1 {
                        continue;
                    }
                    let delta =
                        v[mask | (1 << i) | (1 << j)] - v[mask | (1 << i)] - v[mask | (1 << j)]
                            + v_s;
                    let contribution = w * delta;
                    // Split evenly onto both symmetric entries.
                    inter[i * d + j] += contribution / 2.0;
                    inter[j * d + i] += contribution / 2.0;
                }
            }
        }
    }
    // Diagonal: main effect so rows sum to φ.
    for i in 0..d {
        let off: f64 = (0..d).filter(|&j| j != i).map(|j| inter[i * d + j]).sum();
        inter[i * d + i] = phi[i] - off;
    }
    Ok(InteractionMatrix {
        names: names.to_vec(),
        values: inter,
        base_value: v[0],
        prediction: v[n_masks - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::exact::exact_shapley;
    use nfv_ml::model::FnModel;

    fn names(d: usize) -> Vec<String> {
        (0..d).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn additive_model_has_zero_interactions() {
        let bg = Background::from_rows(vec![vec![0.0, 1.0, -1.0], vec![1.0, 0.0, 2.0]]).unwrap();
        let model = FnModel::new(3, |x: &[f64]| 2.0 * x[0] - x[1] + x[2] * x[2]);
        let m = interaction_values(&model, &[1.0, 2.0, 3.0], &bg, &names(3)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(m.get(i, j).abs() < 1e-9, "Φ[{i}][{j}] = {}", m.get(i, j));
                }
            }
        }
    }

    #[test]
    fn product_model_concentrates_in_the_pair() {
        // f = x0·x1 with zero background: the entire output is the pair
        // interaction; main effects vanish.
        let bg = Background::from_rows(vec![vec![0.0, 0.0, 0.0]]).unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] * x[1]);
        let m = interaction_values(&model, &[2.0, 3.0, 7.0], &bg, &names(3)).unwrap();
        let pair = m.get(0, 1) + m.get(1, 0);
        assert!((pair - 6.0).abs() < 1e-9, "pair total {pair}");
        assert!(m.get(0, 0).abs() < 1e-9, "main effect {}", m.get(0, 0));
        assert!(m.get(2, 2).abs() < 1e-9);
        let top = m.top_pairs(1);
        assert_eq!((top[0].0, top[0].1), (0, 1));
    }

    #[test]
    fn rows_sum_to_shapley_values() {
        let bg = Background::from_rows(vec![
            vec![0.5, -1.0, 2.0, 0.0],
            vec![1.0, 1.0, -1.0, 1.0],
            vec![0.0, 0.3, 0.7, -0.5],
        ])
        .unwrap();
        let model = FnModel::new(4, |x: &[f64]| {
            x[0] * x[1] + (x[2] - x[3]).powi(2) + 0.5 * x[0]
        });
        let x = [1.2, -0.7, 0.4, 1.9];
        let m = interaction_values(&model, &x, &bg, &names(4)).unwrap();
        let from_matrix = m.shapley_values();
        let direct = exact_shapley(&model, &x, &bg, &names(4)).unwrap();
        for (a, b) in from_matrix.iter().zip(&direct.values) {
            assert!((a - b).abs() < 1e-9, "matrix row {a} vs shapley {b}");
        }
        // Total conservation too.
        let total: f64 = from_matrix.iter().sum();
        assert!((total - (m.prediction - m.base_value)).abs() < 1e-9);
    }

    #[test]
    fn symmetric_entries() {
        let bg = Background::from_rows(vec![vec![0.0, 0.0, 1.0]]).unwrap();
        let model = FnModel::new(3, |x: &[f64]| x[0] * x[1] * x[2]);
        let m = interaction_values(&model, &[1.0, 2.0, 3.0], &bg, &names(3)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn guards() {
        let bg = Background::from_rows(vec![vec![0.0]]).unwrap();
        let model = FnModel::new(1, |x: &[f64]| x[0]);
        assert!(
            interaction_values(&model, &[1.0], &bg, &names(1)).is_err(),
            "d < 2"
        );
        let big = vec![0.0; MAX_INTERACTION_FEATURES + 1];
        let bg_big = Background::from_rows(vec![big.clone()]).unwrap();
        let model_big = FnModel::new(big.len(), |x: &[f64]| x[0]);
        assert!(
            interaction_values(&model_big, &big, &bg_big, &names(big.len())).is_err(),
            "budget cap"
        );
    }
}
