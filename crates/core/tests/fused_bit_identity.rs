//! Property tests for the fusion invariant: explanations computed through
//! the plan/execute split — many requests stacked into one shared
//! [`FusedBlock`] and evaluated by a single `predict_block` call — are
//! **bit-identical** to the direct per-request path, for every method,
//! every fusion group size, every SoA kernel the host supports (forced
//! scalar / AVX2 / lane-major / AVX-512), and with the fused block's
//! adjacent-row dedup both on and off.
//!
//! This is the determinism contract the serving layer's fusion scheduler
//! relies on: fusing changes *which call* evaluates a composite row, never
//! its arithmetic.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_xai::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

const D: usize = 5;

struct Fixture {
    model: SoaForest,
    names: Vec<String>,
    background: Background,
    rows: Vec<Vec<f64>>,
    groups: FeatureGroups,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let synth = friedman1(200, D, 0.1, 7).unwrap();
        let gbdt = Gbdt::fit(
            &synth.data,
            &GbdtParams {
                n_rounds: 12,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let model = SoaForest::from_gbdt(&gbdt).unwrap();
        let background = Background::from_dataset(&synth.data, 8, 1).unwrap();
        let rows: Vec<Vec<f64>> = (0..24).map(|i| synth.data.row(i).to_vec()).collect();
        let groups = FeatureGroups::new(
            vec!["even".into(), "odd".into()],
            (0..D).map(|j| j % 2).collect(),
        )
        .unwrap();
        Fixture {
            model,
            names: synth.data.names.clone(),
            background,
            rows,
            groups,
        }
    })
}

/// One request in a synthetic fusion group.
#[derive(Debug, Clone)]
enum Req {
    Kernel {
        n_coalitions: usize,
        seed: u64,
    },
    Sampling {
        n_permutations: usize,
        antithetic: bool,
        seed: u64,
    },
    Exact,
    Grouped,
    Permutation,
}

/// Derives a mixed-method request list of `n` entries from one seed.
fn requests(n: usize, seed: u64) -> Vec<(usize, Req)> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..n)
        .map(|_| {
            let row = (next() as usize) % fixture().rows.len();
            let req = match next() % 5 {
                0 => Req::Kernel {
                    n_coalitions: 6 + (next() as usize) % 24,
                    seed: next(),
                },
                1 => Req::Sampling {
                    n_permutations: 2 + (next() as usize) % 5,
                    antithetic: next() % 2 == 0,
                    seed: next(),
                },
                2 => Req::Exact,
                3 => Req::Grouped,
                _ => Req::Permutation,
            };
            (row, req)
        })
        .collect()
}

/// The direct (unfused) path: each request evaluated on its own.
fn explain_direct(row: usize, req: &Req) -> Attribution {
    let f = fixture();
    let x = &f.rows[row];
    match req {
        Req::Kernel { n_coalitions, seed } => kernel_shap(
            &f.model,
            x,
            &f.background,
            &f.names,
            &KernelShapConfig {
                n_coalitions: *n_coalitions,
                ridge: 0.0,
                seed: *seed,
            },
        )
        .unwrap(),
        Req::Sampling {
            n_permutations,
            antithetic,
            seed,
        } => sampling_shapley(
            &f.model,
            x,
            &f.background,
            &f.names,
            &SamplingConfig {
                n_permutations: *n_permutations,
                antithetic: *antithetic,
                seed: *seed,
            },
        )
        .unwrap(),
        Req::Exact => exact_shapley(&f.model, x, &f.background, &f.names).unwrap(),
        Req::Grouped => grouped_shapley(&f.model, x, &f.background, &f.groups).unwrap(),
        Req::Permutation => {
            instance_permutation(&f.model, x, &f.background, &f.names, None).unwrap()
        }
    }
}

/// A planned request awaiting its block's evaluation.
enum Planned {
    Kernel(KernelShapPlan),
    Sampling(SamplingPlan),
    Exact(ExactShapPlan),
    Grouped(GroupedShapPlan),
    Permutation(PermutationPlan),
}

/// The fused path: plan every request into one shared block, evaluate the
/// block once, then finish each plan against it. `dedup` toggles the
/// block's adjacent-duplicate collapse — results must not depend on it.
fn explain_fused(reqs: &[(usize, Req)], dedup: bool) -> Vec<Attribution> {
    let f = fixture();
    let base = f.background.expected_output(&f.model);
    let mut ws = CoalitionWorkspace::default();
    let mut block = FusedBlock::default();
    block.set_dedup(dedup);
    let plans: Vec<Planned> = reqs
        .iter()
        .map(|(row, req)| {
            let x = &f.rows[*row];
            match req {
                Req::Kernel { n_coalitions, seed } => Planned::Kernel(
                    kernel_shap_plan(
                        &f.model,
                        x,
                        &f.background,
                        &KernelShapConfig {
                            n_coalitions: *n_coalitions,
                            ridge: 0.0,
                            seed: *seed,
                        },
                        Some(base),
                        &mut ws,
                        &mut block,
                    )
                    .unwrap(),
                ),
                Req::Sampling {
                    n_permutations,
                    antithetic,
                    seed,
                } => Planned::Sampling(
                    sampling_shapley_plan(
                        &f.model,
                        x,
                        &f.background,
                        &SamplingConfig {
                            n_permutations: *n_permutations,
                            antithetic: *antithetic,
                            seed: *seed,
                        },
                        Some(base),
                        &mut block,
                    )
                    .unwrap(),
                ),
                Req::Exact => Planned::Exact(
                    exact_shapley_plan(x, &f.background, &mut ws, &mut block).unwrap(),
                ),
                Req::Grouped => Planned::Grouped(
                    grouped_shapley_plan(x, &f.background, &f.groups, &mut ws, &mut block).unwrap(),
                ),
                Req::Permutation => Planned::Permutation(
                    instance_permutation_plan(
                        &f.model,
                        x,
                        &f.background,
                        Some(base),
                        &mut ws,
                        &mut block,
                    )
                    .unwrap(),
                ),
            }
        })
        .collect();
    block.evaluate(&f.model);
    plans
        .iter()
        .map(|p| match p {
            Planned::Kernel(plan) => kernel_shap_finish(plan, &block, &f.names).unwrap(),
            Planned::Sampling(plan) => sampling_shapley_finish(plan, &block, &f.names).unwrap(),
            Planned::Exact(plan) => exact_shapley_finish(plan, &block, &f.names).unwrap(),
            Planned::Grouped(plan) => grouped_shapley_finish(plan, &block).unwrap(),
            Planned::Permutation(plan) => {
                instance_permutation_finish(plan, &block, &f.names).unwrap()
            }
        })
        .collect()
}

fn bits(a: &Attribution) -> (Vec<u64>, u64, u64) {
    (
        a.values.iter().map(|v| v.to_bits()).collect(),
        a.base_value.to_bits(),
        a.prediction.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused == unfused, bit for bit, across group sizes, mixed methods in
    /// one block, every SoA kernel the host supports, and with the block's
    /// dedup pass both on and off.
    #[test]
    fn fused_is_bit_identical_to_direct(
        size_idx in 0usize..4,
        seed in 1u64..u64::MAX,
    ) {
        let group_size = [1usize, 2, 4, 8][size_idx];
        let reqs = requests(group_size, seed);
        // The invariant must hold under whichever kernel evaluates the
        // block — the two paths run the *same* forced kernel per arm, so
        // fusion (and dedup) are the only variables. ISAs the host lacks
        // refuse the force and are skipped; scalar always runs.
        let mut arms = 0;
        for kernel in [Kernel::Scalar, Kernel::Avx2, Kernel::Lane, Kernel::Avx512] {
            if !set_force_kernel(Some(kernel)) {
                continue;
            }
            arms += 1;
            let direct: Vec<_> = reqs.iter().map(|(r, q)| explain_direct(*r, q)).collect();
            for dedup in [true, false] {
                let fused = explain_fused(&reqs, dedup);
                prop_assert_eq!(direct.len(), fused.len());
                for (i, (d, f)) in direct.iter().zip(&fused).enumerate() {
                    prop_assert_eq!(
                        bits(d),
                        bits(f),
                        "request {} of {:?} diverged (kernel={}, dedup={})",
                        i,
                        reqs[i],
                        kernel.name(),
                        dedup
                    );
                }
            }
            set_force_kernel(None); // back to runtime detection
        }
        prop_assert!(arms >= 1);
    }
}
