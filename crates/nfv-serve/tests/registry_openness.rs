//! The open explainer registry, exercised end to end through the serving
//! stack: `interactions` (the first method added through the registry
//! rather than the legacy enum) serves via engine and cluster; a custom
//! explainer registered *by this test* — no `nfv-serve` source touched —
//! serves through the same path; capability misses and unknown method
//! ids surface as typed rejects at admission; and the anytime coarsening
//! divisor is per-(model, method) configuration, not a crate constant.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::*;
use nfv_xai::XaiError;
use std::time::Duration;

fn fitted(seed: u64) -> (Gbdt, Vec<String>, Background, SynthData) {
    let synth = friedman1(300, 5, 0.1, seed).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 12,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 12, 1).unwrap();
    let names = synth.data.names.clone();
    (model, names, bg, synth)
}

fn req(x: &[f64], method: ExplainMethod) -> ExplainRequest {
    ExplainRequest {
        model_id: "m".into(),
        features: x.to_vec(),
        method,
        budget: Duration::from_secs(10),
    }
}

/// `interactions` serves through the engine: a d² attribution whose
/// flattened values still satisfy efficiency exactly, cached like any
/// other method, and bit-identical through the sharded cluster.
#[test]
fn interactions_serve_through_engine_and_cluster() {
    let (model, names, bg, synth) = fitted(17);
    let d = names.len();

    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(model.clone()),
            names.clone(),
            bg.clone(),
        )
        .unwrap();
    let row = synth.data.row(0);
    let first = engine
        .explain(req(row, ExplainMethod::Interactions))
        .unwrap();
    assert_eq!(first.attribution.values.len(), d * d);
    assert!(first.attribution.efficiency_gap().abs() < 1e-8);
    // Off-diagonal entries are named pairwise; the matrix is symmetric.
    assert_eq!(
        first.attribution.names[1],
        format!("{}×{}", names[0], names[1])
    );
    assert_eq!(
        first.attribution.values[1].to_bits(),
        first.attribution.values[d].to_bits(),
        "interaction matrix must be symmetric"
    );
    let again = engine
        .explain(req(row, ExplainMethod::Interactions))
        .unwrap();
    assert!(again.cache_hit, "identical interactions question must hit");
    assert_eq!(again.attribution, first.attribution);
    engine.shutdown();

    // The cluster answers the same bits: interactions are exact, and the
    // request key (interned method id + budget word) is shard-agnostic.
    let cluster = ServeCluster::start(ClusterConfig {
        shards: 3,
        ..ClusterConfig::default()
    });
    cluster
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    let via_cluster = cluster
        .explain(req(row, ExplainMethod::Interactions))
        .unwrap();
    assert_eq!(via_cluster.attribution, first.attribution);
    cluster.shutdown();
}

/// Interaction matrices are exponential in d, so the registry's validator
/// caps them; a model wider than the cap gets the typed reject at
/// admission, not a mid-flight explain error.
#[test]
fn interactions_above_the_feature_cap_get_a_typed_reject() {
    let synth = friedman1(120, 20, 0.1, 23).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 3,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 8, 1).unwrap();
    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), synth.data.names.clone(), bg)
        .unwrap();
    let err = engine
        .explain(req(synth.data.row(0), ExplainMethod::Interactions))
        .unwrap_err();
    match err {
        ServeError::Rejected(RejectReason::InvalidRequest { ref reason }) => {
            assert!(
                reason.contains("interactions"),
                "reason names the method: {reason}"
            );
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    engine.shutdown();
}

/// A method id nothing ever registered is a *dispatch miss*, answered
/// with the dedicated typed reject — distinct from a capability mismatch.
#[test]
fn unknown_method_ids_get_the_dedicated_reject() {
    let (model, names, bg, synth) = fitted(29);
    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    let err = engine
        .explain(req(
            synth.data.row(0),
            ExplainMethod::custom("nobody-registered-this", 4),
        ))
        .unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Rejected(RejectReason::UnknownMethod { .. })
        ),
        "expected UnknownMethod, got {err:?}"
    );
    engine.shutdown();
}

/// A test-local explainer: splits `f(x) − E[f]` uniformly across the
/// features. Deliberately trivial — what matters is that it reaches the
/// worker through the registry with zero `nfv-serve` changes.
struct UniformCredit;

impl Explainer for UniformCredit {
    fn tag(&self) -> &'static str {
        "uniform-credit"
    }
    fn fusable(&self) -> bool {
        false
    }
    fn plan(
        &self,
        _ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
        _block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        Err(XaiError::Input("uniform-credit does not fuse".into()))
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        let base = ctx.base_value();
        let prediction = ctx.model.predict(ctx.x);
        let share = (prediction - base) / ctx.x.len() as f64;
        Ok(Attribution {
            names: ctx.names.to_vec(),
            values: vec![share; ctx.x.len()],
            base_value: base,
            prediction,
            method: "uniform-credit".into(),
        })
    }
}

/// The whole point of the registry: this test registers its own method
/// into the process-global registry and serves it through the engine and
/// the cluster — no `nfv-serve` source was modified to make that happen.
#[test]
fn a_plugin_registered_by_the_test_serves_end_to_end() {
    MethodRegistry::global().register("uniform-credit", |_cfg| Ok(Box::new(UniformCredit)));

    let (model, names, bg, synth) = fitted(31);
    let method = ExplainMethod::custom("uniform-credit", 1);

    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(model.clone()),
            names.clone(),
            bg.clone(),
        )
        .unwrap();
    let row = synth.data.row(3);
    let resp = engine.explain(req(row, method)).unwrap();
    assert_eq!(resp.attribution.method, "uniform-credit");
    assert!(resp.attribution.efficiency_gap().abs() < 1e-9);
    let spread = resp.attribution.values[0];
    assert!(resp
        .attribution
        .values
        .iter()
        .all(|v| v.to_bits() == spread.to_bits()));
    // Same key → cache hit; the method id is the FNV of the name, so the
    // service class is stable across processes too.
    let again = engine.explain(req(row, method)).unwrap();
    assert!(again.cache_hit);
    assert_eq!(again.attribution, resp.attribution);
    // The registry also resolves the display name back from the id.
    assert_eq!(method.display_name(), "uniform-credit");
    engine.shutdown();

    let cluster = ServeCluster::start(ClusterConfig {
        shards: 2,
        ..ClusterConfig::default()
    });
    cluster
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    let via_cluster = cluster.explain(req(row, method)).unwrap();
    assert_eq!(via_cluster.attribution, resp.attribution);
    cluster.shutdown();
}

/// The anytime coarsening divisor is per-(model, method) configuration:
/// a kernel-SHAP class tuned to ÷ 4 degrades to 512/4 = 128 coalitions,
/// while sampling-Shapley — left at the default — degrades by
/// [`DEFAULT_ANYTIME_DIVISOR`].
#[test]
fn anytime_divisors_degrade_per_service_class() {
    let (model, names, bg, synth) = fitted(41);
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    engine.registry().set_anytime_divisor("m", "kernel-shap", 4);

    // Distinct rows: every request is a distinct cache key, so no
    // single-flight follower can ride a leader past admission.
    let flood = |method: ExplainMethod, row_base: usize| -> Vec<ExplainResponse> {
        let engine_ref = &engine;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..16)
                .map(|i| {
                    let row = synth.data.row(row_base + i);
                    s.spawn(move || engine_ref.explain(req(row, method)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    // Tuned class: coarse answers carry budget / 4.
    let kernel_coarse: Vec<u64> = flood(ExplainMethod::KernelShap { n_coalitions: 512 }, 0)
        .iter()
        .filter_map(|r| match r.fidelity {
            Fidelity::Coarse { sample_budget } => Some(sample_budget),
            _ => None,
        })
        .collect();
    assert!(
        !kernel_coarse.is_empty(),
        "a 1-slot queue under 12 concurrent requests must degrade"
    );
    for budget in &kernel_coarse {
        assert_eq!(*budget, 512 / 4, "tuned divisor must govern kernel-shap");
    }

    // Untuned class on the same model: the crate default ÷ 8 still rules.
    let sampling_coarse: Vec<u64> = flood(
        ExplainMethod::SamplingShapley {
            n_permutations: 256,
            antithetic: false,
        },
        32,
    )
    .iter()
    .filter_map(|r| match r.fidelity {
        Fidelity::Coarse { sample_budget } => Some(sample_budget),
        _ => None,
    })
    .collect();
    assert!(!sampling_coarse.is_empty(), "sampling flood must degrade");
    for budget in &sampling_coarse {
        assert_eq!(
            *budget,
            256 / DEFAULT_ANYTIME_DIVISOR,
            "untuned class keeps the default divisor"
        );
    }
    engine.shutdown();
}
