//! End-to-end tests for the sharded serving cluster: every registry
//! method served through the router, registration/invalidation fan-out,
//! stats rollup, and spill-on-queue-full.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn cluster_with_gbdt(cfg: ClusterConfig) -> (ServeCluster, Vec<Vec<f64>>) {
    let synth = friedman1(300, 5, 0.1, 11).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 15,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 16, 1).unwrap();
    let cluster = ServeCluster::start(cfg);
    cluster
        .register("m", ServeModel::Gbdt(model), synth.data.names.clone(), bg)
        .unwrap();
    let rows: Vec<Vec<f64>> = (0..20).map(|i| synth.data.row(i).to_vec()).collect();
    (cluster, rows)
}

fn req(x: &[f64], method: ExplainMethod) -> ExplainRequest {
    ExplainRequest {
        model_id: "m".into(),
        features: x.to_vec(),
        method,
        budget: Duration::from_secs(5),
    }
}

/// Every method the registry resolves — deterministic, stochastic,
/// fusable, and direct-only alike.
fn all_methods() -> Vec<ExplainMethod> {
    vec![
        ExplainMethod::TreeShap,
        ExplainMethod::KernelShap { n_coalitions: 32 },
        ExplainMethod::Lime { n_samples: 64 },
        ExplainMethod::SamplingShapley {
            n_permutations: 6,
            antithetic: true,
        },
        ExplainMethod::ExactShapley,
        ExplainMethod::GroupedShapley,
        ExplainMethod::Permutation,
    ]
}

#[test]
fn every_method_serves_through_the_cluster_with_sticky_caching() {
    let (cluster, rows) = cluster_with_gbdt(ClusterConfig {
        shards: 3,
        ..ClusterConfig::default()
    });
    for (i, method) in all_methods().into_iter().enumerate() {
        let first = cluster.explain(req(&rows[i], method)).unwrap();
        assert!(!first.cache_hit, "{method:?}");
        // The efficiency axiom binds the exact Shapley family tightly;
        // sampling only in expectation; LIME and LOCO not at all.
        match method {
            ExplainMethod::TreeShap
            | ExplainMethod::KernelShap { .. }
            | ExplainMethod::ExactShapley
            | ExplainMethod::GroupedShapley => {
                assert!(
                    first.attribution.efficiency_gap().abs() < 1e-6,
                    "{method:?}"
                )
            }
            _ => assert!(
                first.attribution.values.iter().all(|v| v.is_finite()),
                "{method:?}"
            ),
        }
        // The identical question must route to the same shard and hit its
        // cache — stickiness is what makes per-shard caches sufficient.
        let again = cluster.explain(req(&rows[i], method)).unwrap();
        assert!(
            again.cache_hit,
            "{method:?} missed on repeat: routing moved"
        );
        assert_eq!(again.attribution, first.attribution);
    }
    // Stats roll up across shards: the cluster view sums what each shard
    // actually did (14 completions), and no spill was ever needed.
    let stats = cluster.stats();
    assert_eq!(stats.per_shard.len(), 3);
    assert_eq!(stats.cluster.completed, 14);
    assert_eq!(
        stats.cluster.completed,
        stats.per_shard.iter().map(|s| s.completed).sum::<u64>()
    );
    assert_eq!(
        stats.cluster.cache_hits,
        stats.per_shard.iter().map(|s| s.cache_hits).sum::<u64>()
    );
    assert_eq!(stats.spills, 0);
    assert_eq!(cluster.queue_len(), 0);
    assert!(cluster.cache_len() >= 7);
    cluster.shutdown();
}

#[test]
fn registration_and_invalidation_fan_out_to_every_shard() {
    let (cluster, rows) = cluster_with_gbdt(ClusterConfig {
        shards: 4,
        ..ClusterConfig::default()
    });
    // Every shard holds the model at the same version.
    let versions: Vec<u64> = (0..cluster.shard_count())
        .map(|i| cluster.shard(i).registry().get("m").unwrap().version)
        .collect();
    assert!(versions.windows(2).all(|w| w[0] == w[1]), "{versions:?}");

    // Warm caches on several shards, then invalidate cluster-wide.
    for r in rows.iter().take(8) {
        cluster.explain(req(r, ExplainMethod::TreeShap)).unwrap();
    }
    assert!(cluster.cache_len() > 0);
    cluster.invalidate_model("m");
    assert_eq!(cluster.cache_len(), 0, "invalidation must reach all shards");

    // Re-registration bumps the version everywhere at once.
    let synth = friedman1(300, 5, 0.1, 99).unwrap();
    let model2 = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 5,
            ..Default::default()
        },
        1,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 16, 1).unwrap();
    let v2 = cluster
        .register("m", ServeModel::Gbdt(model2), synth.data.names.clone(), bg)
        .unwrap();
    for i in 0..cluster.shard_count() {
        assert_eq!(cluster.shard(i).registry().get("m").unwrap().version, v2);
    }
    assert!(v2 > versions[0]);

    // Deregistration empties every shard's registry.
    assert!(cluster.deregister("m"));
    let err = cluster
        .explain(req(&rows[0], ExplainMethod::TreeShap))
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Rejected(RejectReason::UnknownModel { .. })
    ));
    cluster.shutdown();
}

#[test]
fn unroutable_requests_are_rejected_not_lost() {
    let (cluster, _rows) = cluster_with_gbdt(ClusterConfig::default());
    let err = cluster
        .explain(req(&[f64::NAN; 5], ExplainMethod::TreeShap))
        .unwrap_err();
    assert!(err.is_reject(), "non-finite features reject with a reason");
    cluster.shutdown();
}

/// Saturate tiny home queues from many threads: overflow must retry on
/// the next ring shard (counted as a spill) instead of failing outright,
/// and every request must end as either an answer or an explicit
/// queue-full rejection — never a hang or a silent drop.
#[test]
fn queue_full_spills_to_the_next_shard() {
    let (cluster, rows) = cluster_with_gbdt(ClusterConfig {
        shards: 2,
        shard: ServeConfig {
            workers: 1,
            queue_capacity: 1,
            single_flight: false,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    });
    let cluster = Arc::new(cluster);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let rows = rows.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut full = 0u64;
                for i in 0..16 {
                    // Distinct budgets keep every request a cache miss.
                    let r = ExplainRequest {
                        model_id: "m".into(),
                        features: rows[(t * 16 + i) % rows.len()].clone(),
                        method: ExplainMethod::KernelShap {
                            n_coalitions: 64 + t * 16 + i,
                        },
                        budget: Duration::from_secs(30),
                    };
                    match cluster.explain(r) {
                        Ok(resp) => {
                            assert!(resp.attribution.efficiency_gap().abs() < 1e-6);
                            ok += 1;
                        }
                        Err(ServeError::Rejected(RejectReason::QueueFull { .. })) => full += 1,
                        Err(e) => panic!("unexpected outcome under saturation: {e}"),
                    }
                }
                (ok, full)
            })
        })
        .collect();
    let mut ok = 0;
    for h in handles {
        ok += h.join().unwrap().0;
    }
    assert!(ok > 0, "saturation must not starve everyone");
    let stats = cluster.stats();
    assert!(
        stats.spills > 0,
        "128 concurrent requests against capacity-1 queues never overflowed"
    );
    Arc::try_unwrap(cluster).ok().unwrap().shutdown();
}
