//! Property tests for the cluster's consistent-hash router.
//!
//! Two properties make [`HashRing`] fit for routing:
//!
//! 1. **Determinism** — the ring is a pure function of (shard count,
//!    vnodes): two independently built rings agree on every key, so any
//!    process (or test) can recompute a request's home shard offline.
//! 2. **Minimal disruption** — changing the shard count by one remaps
//!    only the arcs the changed shard owns (≈ `1/N` of the key space),
//!    and every moved key involves *that* shard — the defining property
//!    of consistent hashing versus `hash % N`.

use nfv_serve::prelude::*;
use proptest::prelude::*;

/// splitmix64 — a key stream independent of the FNV family the ring and
/// cache keys hash with, so these tests don't accidentally probe the ring
/// with its own point-placement function.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn keys(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n).map(|_| splitmix(&mut state)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same key → same shard, on two rings built independently with the
    /// same parameters, for every cluster size we ship.
    #[test]
    fn routing_is_a_pure_function_of_ring_parameters(seed in 1u64..u64::MAX) {
        let ks = keys(seed, 10_000);
        for n in [2usize, 3, 4, 8] {
            let a = HashRing::new(n, 128);
            let b = HashRing::new(n, 128);
            for &k in &ks {
                let shard = a.shard_of(k);
                prop_assert!(shard < n);
                prop_assert_eq!(shard, b.shard_of(k));
            }
        }
    }

    /// Growing an N-shard ring to N+1 remaps at most `2/N + 0.02` of 10k
    /// keys, and every moved key moves *to* the added shard. Read
    /// backwards, the same comparison is shard removal: keys not owned by
    /// the removed shard stay put.
    #[test]
    fn resizing_by_one_shard_remaps_a_bounded_arc(seed in 1u64..u64::MAX) {
        let ks = keys(seed, 10_000);
        for n in [2usize, 3, 4, 8] {
            let small = HashRing::new(n, 128);
            let big = HashRing::new(n + 1, 128);
            let mut moved = 0usize;
            for &k in &ks {
                let before = small.shard_of(k);
                let after = big.shard_of(k);
                if before != after {
                    moved += 1;
                    // Add direction: a moved key may only land on the
                    // new shard, never shuffle between surviving shards.
                    prop_assert_eq!(after, n, "key moved between surviving shards");
                } else {
                    // Remove direction: a key whose (N+1)-ring owner is
                    // not the removed shard keeps its owner in the N-ring.
                    prop_assert!(after < n);
                }
            }
            let frac = moved as f64 / ks.len() as f64;
            let bound = 2.0 / n as f64 + 0.02;
            prop_assert!(
                frac <= bound,
                "resize {}→{} remapped {:.3} of keys (bound {:.3})",
                n, n + 1, frac, bound
            );
            prop_assert!(moved > 0, "the added shard must own some keys");
        }
    }
}
