//! Integration surface of `nfv-serve`: lifecycle (register → serve →
//! re-register → deregister), stats serialization, and cache eviction
//! under a capacity squeeze — all through the public prelude only.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::*;
use std::time::Duration;

fn fitted(seed: u64) -> (Gbdt, Vec<String>, Background, SynthData) {
    let synth = friedman1(300, 5, 0.1, seed).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 12,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 12, 1).unwrap();
    let names = synth.data.names.clone();
    (model, names, bg, synth)
}

fn tree_req(x: &[f64]) -> ExplainRequest {
    ExplainRequest {
        model_id: "m".into(),
        features: x.to_vec(),
        method: ExplainMethod::TreeShap,
        budget: Duration::from_secs(2),
    }
}

#[test]
fn lifecycle_register_serve_deregister() {
    let (model, names, bg, synth) = fitted(5);
    let engine = ServeEngine::start(ServeConfig::default());
    let v = engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    let resp = engine.explain(tree_req(synth.data.row(0))).unwrap();
    assert_eq!(resp.model_version, v);
    assert!(resp.attribution.efficiency_gap().abs() < 1e-8);

    assert!(engine.registry().deregister("m"));
    engine.invalidate_model("m");
    assert_eq!(engine.cache_len(), 0, "invalidation empties the cache");
    let err = engine.explain(tree_req(synth.data.row(0))).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Rejected(RejectReason::UnknownModel { .. })
    ));
    engine.shutdown();
}

#[test]
fn stats_snapshot_round_trips_through_json() {
    let (model, names, bg, synth) = fitted(9);
    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    for i in 0..8 {
        engine.explain(tree_req(synth.data.row(i % 4))).unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 8);
    assert!(stats.cache_hits >= 4, "rows repeat: {stats:?}");
    let json = serde_json::to_string_pretty(&stats).unwrap();
    let back: ServeStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    engine.shutdown();
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    let (model, names, bg, synth) = fitted(13);
    let engine = ServeEngine::start(ServeConfig {
        cache_capacity: 4,
        cache_shards: 1,
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    // First pass computes 20 distinct answers through a 4-slot cache.
    let first: Vec<_> = (0..20)
        .map(|i| engine.explain(tree_req(synth.data.row(i))).unwrap())
        .collect();
    assert!(engine.cache_len() <= 4);
    // Second pass recomputes evicted entries; answers must be identical
    // (deterministic TreeSHAP), eviction only costs time, never changes
    // results.
    for (i, old) in first.iter().enumerate() {
        let again = engine.explain(tree_req(synth.data.row(i))).unwrap();
        assert_eq!(again.attribution, old.attribution);
    }
    engine.shutdown();
}
