//! Integration surface of `nfv-serve`: lifecycle (register → serve →
//! re-register → deregister), stats serialization, and cache eviction
//! under a capacity squeeze — all through the public prelude only.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::*;
use std::time::Duration;

fn fitted(seed: u64) -> (Gbdt, Vec<String>, Background, SynthData) {
    let synth = friedman1(300, 5, 0.1, seed).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 12,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 12, 1).unwrap();
    let names = synth.data.names.clone();
    (model, names, bg, synth)
}

fn tree_req(x: &[f64]) -> ExplainRequest {
    ExplainRequest {
        model_id: "m".into(),
        features: x.to_vec(),
        method: ExplainMethod::TreeShap,
        budget: Duration::from_secs(2),
    }
}

#[test]
fn lifecycle_register_serve_deregister() {
    let (model, names, bg, synth) = fitted(5);
    let engine = ServeEngine::start(ServeConfig::default());
    let v = engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    let resp = engine.explain(tree_req(synth.data.row(0))).unwrap();
    assert_eq!(resp.model_version, v);
    assert!(resp.attribution.efficiency_gap().abs() < 1e-8);

    assert!(engine.registry().deregister("m"));
    engine.invalidate_model("m");
    assert_eq!(engine.cache_len(), 0, "invalidation empties the cache");
    let err = engine.explain(tree_req(synth.data.row(0))).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Rejected(RejectReason::UnknownModel { .. })
    ));
    engine.shutdown();
}

#[test]
fn stats_snapshot_round_trips_through_json() {
    let (model, names, bg, synth) = fitted(9);
    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    for i in 0..8 {
        engine.explain(tree_req(synth.data.row(i % 4))).unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 8);
    assert!(stats.cache_hits >= 4, "rows repeat: {stats:?}");
    let json = serde_json::to_string_pretty(&stats).unwrap();
    let back: ServeStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    engine.shutdown();
}

fn kernel_req(x: &[f64], n_coalitions: usize) -> ExplainRequest {
    ExplainRequest {
        model_id: "m".into(),
        features: x.to_vec(),
        method: ExplainMethod::KernelShap { n_coalitions },
        budget: Duration::from_secs(5),
    }
}

#[test]
fn concurrent_identical_misses_evaluate_once() {
    let (model, names, bg, synth) = fitted(21);
    let engine = ServeEngine::start(ServeConfig::default());
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    // 8 threads fire the *same* uncached request at once. Single-flight
    // must elect one leader; everyone else rides its result (as a flight
    // follower or, if they arrive late, a cache hit) — so the model is
    // evaluated exactly once.
    let responses: Vec<ExplainResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| engine.explain(kernel_req(synth.data.row(0), 64)).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = engine.stats();
    assert_eq!(stats.completed, 8, "{stats:?}");
    assert_eq!(
        stats.cache_misses, 1,
        "one evaluation for 8 identical concurrent misses: {stats:?}"
    );
    for r in &responses[1..] {
        assert_eq!(
            r.attribution, responses[0].attribution,
            "every caller sees the leader's exact result"
        );
    }
    engine.shutdown();
}

#[test]
fn fused_group_with_failing_job_completes_the_rest() {
    let (model, names, bg, synth) = fitted(23);
    // One worker with a long gather window, so concurrent submissions land
    // in one micro-batch and hence one fusion group.
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        gather_window: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    // Rows 0..4 are valid fusable requests; the zero-budget request must
    // fail at plan time without poisoning the rest of its fusion group.
    let engine_ref = &engine;
    let outcomes: Vec<Result<ExplainResponse, ServeError>> = std::thread::scope(|s| {
        let mut handles = vec![s.spawn(|| engine.explain(kernel_req(synth.data.row(0), 0)))];
        handles.extend((1..5).map(|i| {
            let row = synth.data.row(i);
            s.spawn(move || engine_ref.explain(kernel_req(row, 64)))
        }));
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        matches!(outcomes[0], Err(ServeError::Explain(_))),
        "zero coalition budget errors: {:?}",
        outcomes[0]
    );
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        let resp = o.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}"));
        assert!(resp.attribution.efficiency_gap().abs() < 1e-6);
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 4, "{stats:?}");
    assert_eq!(stats.explain_errors, 1, "{stats:?}");
    engine.shutdown();
}

#[test]
fn fused_and_unfused_engines_agree_bitwise() {
    let (model, names, bg, synth) = fitted(27);
    let fused = ServeEngine::start(ServeConfig {
        workers: 1,
        gather_window: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let unfused = ServeEngine::start(ServeConfig {
        fusion: FusionPolicy {
            enabled: false,
            ..FusionPolicy::default()
        },
        single_flight: false,
        ..ServeConfig::default()
    });
    for engine in [&fused, &unfused] {
        engine
            .registry()
            .register(
                "m",
                ServeModel::Gbdt(model.clone()),
                names.clone(),
                bg.clone(),
            )
            .unwrap();
    }
    // Concurrent submission to the fused engine so requests actually share
    // a block; serial submission to the unfused engine. Seeds derive from
    // request content, so the execution shape must not matter.
    let fused_ref = &fused;
    let fused_resp: Vec<ExplainResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let row = synth.data.row(i);
                s.spawn(move || engine_explain(fused_ref, row))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = fused.stats();
    assert!(
        stats.fused_groups >= 1 && stats.fused_requests >= 2,
        "fusion must have actually run: {stats:?}"
    );
    assert!(stats.fused_fill_ratio > 0.0, "{stats:?}");
    for (i, f) in fused_resp.iter().enumerate() {
        let u = engine_explain(&unfused, synth.data.row(i));
        assert_eq!(
            f.attribution, u.attribution,
            "row {i}: fused serving must be bit-identical to unfused"
        );
    }
    fused.shutdown();
    unfused.shutdown();
}

fn engine_explain(engine: &ServeEngine, x: &[f64]) -> ExplainResponse {
    engine.explain(kernel_req(x, 64)).unwrap()
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    let (model, names, bg, synth) = fitted(13);
    let engine = ServeEngine::start(ServeConfig {
        cache_capacity: 4,
        // Exact-only mode: this test is about eviction never changing
        // *exact* results, so the quantized demotion tier is disabled
        // (two-tier behaviour has its own tests).
        cold_capacity: 0,
        cache_shards: 1,
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    // First pass computes 20 distinct answers through a 4-slot cache.
    let first: Vec<_> = (0..20)
        .map(|i| engine.explain(tree_req(synth.data.row(i))).unwrap())
        .collect();
    assert!(engine.cache_len() <= 4);
    // Second pass recomputes evicted entries; answers must be identical
    // (deterministic TreeSHAP), eviction only costs time, never changes
    // results.
    for (i, old) in first.iter().enumerate() {
        let again = engine.explain(tree_req(synth.data.row(i))).unwrap();
        assert_eq!(again.attribution, old.attribution);
    }
    engine.shutdown();
}

#[test]
fn queue_full_degrades_to_coarse_then_upgrades_in_place() {
    let (model, names, bg, synth) = fitted(41);
    // One worker, a one-slot queue: while the worker grinds a big request,
    // concurrent arrivals overflow admission. With anytime enabled the
    // overflow is served a coarse (budget ÷ 8) attribution inline instead
    // of a QueueFull rejection.
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(model.clone()),
            names.clone(),
            bg.clone(),
        )
        .unwrap();
    let engine_ref = &engine;
    let responses: Vec<ExplainResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let row = synth.data.row(i % 8);
                s.spawn(move || engine_ref.explain(kernel_req(row, 512)).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Nothing was rejected, and at least one response is degraded.
    let coarse: Vec<&ExplainResponse> = responses
        .iter()
        .filter(|r| matches!(r.fidelity, Fidelity::Coarse { .. }))
        .collect();
    let stats = engine.stats();
    assert!(
        !coarse.is_empty(),
        "a 1-slot queue under 12 concurrent requests must degrade: {stats:?}"
    );
    // Single-flight followers can ride a coarse leader's result, so the
    // counter tracks inline degradations, a subset of coarse responses.
    assert!(
        stats.degraded_served >= 1 && stats.degraded_served <= coarse.len() as u64,
        "{stats:?}"
    );
    match coarse[0].fidelity {
        Fidelity::Coarse { sample_budget } => assert_eq!(sample_budget, 512 / 8),
        ref other => panic!("wrong fidelity: {other:?}"),
    }

    // The coarse entries upgrade in place: polling each flooded key
    // eventually returns an exact answer (grade-0 hits re-request
    // refinement, so even a dropped refine job heals).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut upgraded = Vec::new();
    for i in 0..8 {
        let row = synth.data.row(i);
        loop {
            let resp = engine.explain(kernel_req(row, 512)).unwrap();
            if resp.fidelity == Fidelity::Exact {
                upgraded.push(resp);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "coarse entry for row {i} never upgraded: {:?}",
                engine.stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert!(engine.stats().refined_entries >= 1);

    // The upgraded results are bit-identical to an engine that never
    // degraded: refinement re-seeds from the original request content.
    let calm = ServeEngine::start(ServeConfig::default());
    calm.registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    for (i, up) in upgraded.iter().enumerate() {
        let full = calm.explain(kernel_req(synth.data.row(i), 512)).unwrap();
        assert_eq!(
            up.attribution, full.attribution,
            "row {i}: refined entry must equal the never-degraded result"
        );
    }
    calm.shutdown();
    engine.shutdown();
}

#[test]
fn fused_dedup_savings_surface_in_stats() {
    // Exact Shapley enumerates every coalition, including the *full* one
    // whose composite block is x repeated once per background row — a
    // guaranteed run of bit-identical adjacent rows. Two concurrent exact
    // requests fuse into one block; the dedup pass must skip those rows
    // and the engine must surface the savings (and the SoA kernel the
    // process settled on) in its stats snapshot.
    let (model, names, bg, synth) = fitted(31);
    let n_bg = bg.rows().len();
    let engine = ServeEngine::start(ServeConfig {
        workers: 1,
        gather_window: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    engine
        .registry()
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();
    let exact = |x: &[f64]| ExplainRequest {
        model_id: "m".into(),
        features: x.to_vec(),
        method: ExplainMethod::ExactShapley,
        budget: Duration::from_secs(5),
    };
    let engine_ref = &engine;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let row = synth.data.row(i);
                s.spawn(move || engine_ref.explain(exact(row)).unwrap())
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.attribution.efficiency_gap().abs() < 1e-6);
        }
    });
    let stats = engine.stats();
    assert!(stats.fused_groups >= 1, "requests must fuse: {stats:?}");
    // Each request's full coalition contributes n_bg - 1 skipped rows at
    // minimum (other coalition rows may coincide too).
    assert!(
        stats.dedup_rows_saved >= (n_bg as u64 - 1),
        "dedup savings must be observable: {stats:?}"
    );
    assert!(
        ["scalar", "avx2", "lane", "avx512", "auto"].contains(&stats.kernel.as_str()),
        "kernel name must be surfaced: {:?}",
        stats.kernel
    );
    // The savings survive the cluster rollup.
    let agg = ServeStats::aggregate(&[stats.clone(), ServeStats::default()]);
    assert_eq!(agg.dedup_rows_saved, stats.dedup_rows_saved);
    engine.shutdown();
}
