//! Throughput scaling: a 4-shard cluster (one worker per shard) must beat
//! a single engine (one worker) by ≥ 3× on an uncached mixed-method trace
//! — the shared-nothing claim made measurable. Run via `ci.sh` under the
//! bench gate; it is `#[ignore]`d in the default suite because it is a
//! timed saturation comparison.

use nfv_data::prelude::*;
use nfv_ml::prelude::*;
use nfv_serve::prelude::*;
use nfv_xai::prelude::*;
use std::time::{Duration, Instant};

const D: usize = 14;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 32;

fn fixture() -> (Gbdt, Vec<String>, Background, Vec<Vec<f64>>) {
    let synth = friedman1(400, D, 0.1, 5).unwrap();
    let model = Gbdt::fit(
        &synth.data,
        &GbdtParams {
            n_rounds: 20,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let bg = Background::from_dataset(&synth.data, 12, 1).unwrap();
    let rows: Vec<Vec<f64>> = (0..32).map(|i| synth.data.row(i).to_vec()).collect();
    (model, synth.data.names.clone(), bg, rows)
}

fn shard_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 512,
        seed: 9,
        ..ServeConfig::default()
    }
}

/// The `fused_replay_d14`-style mixed trace: plan-capable methods with
/// varied budgets, every request a distinct cache cell (uncached).
fn trace_request(rows: &[Vec<f64>], client: usize, i: usize, epoch: u64) -> ExplainRequest {
    let n = client * PER_CLIENT + i;
    let method = match n % 4 {
        0 => ExplainMethod::KernelShap { n_coalitions: 64 },
        1 => ExplainMethod::SamplingShapley {
            n_permutations: 4,
            antithetic: true,
        },
        2 => ExplainMethod::Permutation,
        _ => ExplainMethod::GroupedShapley,
    };
    let mut features = rows[n % rows.len()].clone();
    // A full grid step per (request, epoch): never the same cache key.
    features[0] += (1 + n as u64 + epoch * 1024) as f64 * 1e-3;
    ExplainRequest {
        model_id: "m".into(),
        features,
        method,
        budget: Duration::from_secs(30),
    }
}

/// Drives the full trace from CLIENTS threads; returns wall time.
fn drive(
    explain: &(dyn Fn(ExplainRequest) -> Result<ExplainResponse, ServeError> + Sync),
    rows: &[Vec<f64>],
    epoch: u64,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    explain(trace_request(rows, c, i, epoch)).unwrap();
                }
            });
        }
    });
    start.elapsed()
}

#[test]
#[ignore = "timed saturation comparison; run via ci.sh under the bench gate"]
fn four_shards_give_at_least_3x_single_engine_throughput() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 5 {
        eprintln!("skipping: {cores} cores cannot host 4 shard workers + clients");
        return;
    }
    let (model, names, bg, rows) = fixture();

    let single = ServeEngine::start(shard_config());
    single
        .registry()
        .register(
            "m",
            ServeModel::Gbdt(model.clone()),
            names.clone(),
            bg.clone(),
        )
        .unwrap();
    let cluster = ServeCluster::start(ClusterConfig {
        shards: 4,
        shard: shard_config(),
        ..ClusterConfig::default()
    });
    cluster
        .register("m", ServeModel::Gbdt(model), names, bg)
        .unwrap();

    // Warm both (JIT-free, but queues/caches/EWMAs settle), then time the
    // best of 3 epochs each, interleaved so ambient load hits both.
    drive(&|r| single.explain(r), &rows, 0);
    drive(&|r| cluster.explain(r), &rows, 0);
    let mut t_single = Duration::MAX;
    let mut t_cluster = Duration::MAX;
    for epoch in 1..=3 {
        t_single = t_single.min(drive(&|r| single.explain(r), &rows, epoch));
        t_cluster = t_cluster.min(drive(&|r| cluster.explain(r), &rows, epoch));
    }
    let ratio = t_single.as_secs_f64() / t_cluster.as_secs_f64();
    println!("single worker: {t_single:?}, 4 shards: {t_cluster:?}, speedup {ratio:.2}x");
    assert!(
        ratio >= 3.0,
        "4-shard cluster only {ratio:.2}x a single engine (need ≥ 3.0)"
    );
    single.shutdown();
    cluster.shutdown();
}
