//! The model registry: every servable model lives here behind an `Arc`,
//! tagged with a monotonically increasing version.
//!
//! Versions are global across the registry (not per-id) so a cache key
//! containing a version can never collide between "model A v2" and a
//! re-registered "model A" — every registration gets a fresh number.
//!
//! Method dispatch is *open*: `supports`/`explainer` resolve the
//! request's interned method id against the process-wide
//! `nfv_xai::prelude::MethodRegistry` — there is deliberately no `match`
//! on method variants anywhere in this module (ci.sh greps for one), so
//! serving a new explanation method is a registration, not a source edit.

use crate::error::{RejectReason, ServeError};
use crate::request::{ExplainMethod, DEFAULT_ANYTIME_DIVISOR};
use nfv_ml::prelude::*;
use nfv_xai::prelude::*;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A servable model: the closed set of architectures the NFV-management
/// stack deploys (SLA forecasting, latency regression, baselines).
///
/// Serializable so the `nfv-net` wire layer can ship a registration to
/// remote shard processes; all weights are finite, so the JSON round-trip
/// is bit-exact (Rust's shortest-float formatting guarantees it).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum ServeModel {
    /// Gradient-boosted trees (explained in margin space).
    Gbdt(Gbdt),
    /// Bagged random forest.
    Forest(RandomForest),
    /// Ridge regression — the intrinsically interpretable baseline.
    Linear(LinearRegression),
    /// The opaque MLP baseline.
    Mlp(Mlp),
}

impl ServeModel {
    /// Feature count the model was trained on.
    pub fn n_features(&self) -> usize {
        self.as_regressor().n_features()
    }

    /// The model as the trait object every model-agnostic explainer takes.
    pub fn as_regressor(&self) -> &dyn Regressor {
        match self {
            ServeModel::Gbdt(m) => m,
            ServeModel::Forest(m) => m,
            ServeModel::Linear(m) => m,
            ServeModel::Mlp(m) => m,
        }
    }

    /// Whether the structure-aware TreeSHAP path applies.
    pub fn supports_tree_shap(&self) -> bool {
        matches!(self, ServeModel::Gbdt(_) | ServeModel::Forest(_))
    }

    /// Short architecture tag for stats and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeModel::Gbdt(_) => "gbdt",
            ServeModel::Forest(_) => "forest",
            ServeModel::Linear(_) => "linear",
            ServeModel::Mlp(_) => "mlp",
        }
    }
}

/// One registered model with everything its explainers need.
#[derive(Debug)]
pub struct ModelEntry {
    /// The model itself.
    pub model: ServeModel,
    /// Registry-global version assigned at registration.
    pub version: u64,
    /// Feature names, aligned with model inputs.
    pub feature_names: Vec<String>,
    /// Background distribution for the sampling explainers.
    pub background: Background,
    /// Flattened SoA evaluation engine, built once at registration for
    /// tree ensembles (`None` otherwise). Its predictions are bit-identical
    /// to the source model's, so cached attributions and seeded results
    /// are unaffected by which path served them — only the latency is.
    pub packed: Option<SoaForest>,
    /// `E[f(X)]` over the background against [`ModelEntry::explain_regressor`],
    /// computed once at registration. KernelSHAP needs this base value per
    /// request; caching it here removes a full background sweep from every
    /// uncached request without changing any result bit (the per-request
    /// computation is the same deterministic reduction).
    pub expected_output: f64,
    /// Feature grouping for the grouped (Owen) Shapley method, derived
    /// from the feature names at registration: the standard per-stage NFV
    /// grouping when the names follow the telemetry schema, else a single
    /// group holding every feature.
    pub groups: FeatureGroups,
    /// The tree structure behind an `Arc`, for structure-walking methods
    /// (TreeSHAP). `None` for non-tree models. Built once at registration
    /// so per-request method resolution clones an `Arc`, not an ensemble.
    pub trees: Option<TreeModel>,
}

impl ModelEntry {
    /// The regressor model-agnostic explainers (KernelSHAP, LIME) should
    /// evaluate: the packed SoA engine when one exists — its blocked
    /// traversal is ~2× faster on the coalition matrices those explainers
    /// feed it — otherwise the model itself.
    pub fn explain_regressor(&self) -> &dyn Regressor {
        match &self.packed {
            Some(p) => p,
            None => self.model.as_regressor(),
        }
    }

    /// This model's capabilities, for per-method registry validation.
    pub fn caps(&self) -> ModelCaps {
        ModelCaps {
            n_features: self.model.n_features(),
            n_groups: self.groups.len(),
            is_tree: self.model.supports_tree_shap(),
            kind: self.model.kind(),
        }
    }

    /// The [`MethodConfig`] handed to a method factory for one resolution
    /// against this model. Every field a built-in or plug-in factory may
    /// want is populated; factories read what they need.
    fn method_config(&self, method: ExplainMethod) -> MethodConfig {
        MethodConfig {
            budget: method.budget_word(),
            n_features: self.model.n_features(),
            groups: Some(self.groups.clone()),
            trees: self.trees.clone(),
            anytime_divisor: DEFAULT_ANYTIME_DIVISOR,
        }
    }

    /// Looks the method up in the process-wide registry, or produces the
    /// typed reject for a name nothing answers to.
    fn descriptor(&self, method: ExplainMethod) -> Result<MethodDescriptor, ServeError> {
        MethodRegistry::global()
            .get(method.method_id())
            .ok_or_else(|| {
                ServeError::Rejected(RejectReason::UnknownMethod {
                    method: method.display_name(),
                })
            })
    }

    /// Checks a request's method against this model's capabilities, by
    /// registry lookup: an unregistered method id is a typed
    /// [`RejectReason::UnknownMethod`]; a registered method whose
    /// validator refuses this model's [`ModelCaps`] is an
    /// [`RejectReason::InvalidRequest`] carrying the validator's reason.
    pub fn supports(&self, method: ExplainMethod) -> Result<(), ServeError> {
        self.descriptor(method)?
            .validate(&self.caps())
            .map_err(|reason| ServeError::Rejected(RejectReason::InvalidRequest { reason }))
    }

    /// Resolves a request method to its [`Explainer`] through the open
    /// registry — a factory call on the method's descriptor, no variant
    /// dispatch. Everything downstream (batching, fusion, finishing) is
    /// generic trait dispatch.
    pub fn explainer(&self, method: ExplainMethod) -> Result<Box<dyn Explainer>, ServeError> {
        self.descriptor(method)?
            .instantiate(&self.method_config(method))
            .map_err(ServeError::Explain)
    }
}

/// Thread-safe id → model map. Reads (the per-request hot path) take a
/// shared lock; registrations are rare and take the exclusive lock.
///
/// Besides models, the registry holds the per-(model, method) serving
/// configuration the open method registry made data-driven: today the
/// anytime coarsening divisor, keyed by interned method id.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    next_version: AtomicU64,
    /// model id → (interned method id → anytime divisor). Absent entries
    /// fall back to [`DEFAULT_ANYTIME_DIVISOR`].
    anytime_divisors: RwLock<HashMap<String, HashMap<u64, u64>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) `id`, returning the assigned version.
    ///
    /// Validates that names and background agree with the model's feature
    /// count up front, so workers never see an inconsistent entry.
    pub fn register(
        &self,
        id: &str,
        model: ServeModel,
        feature_names: Vec<String>,
        background: Background,
    ) -> Result<u64, ServeError> {
        let d = model.n_features();
        if d == 0 {
            return Err(ServeError::Rejected(RejectReason::InvalidRequest {
                reason: format!("model `{id}` has no features"),
            }));
        }
        if feature_names.len() != d || background.n_features() != d {
            return Err(ServeError::Rejected(RejectReason::InvalidRequest {
                reason: format!(
                    "model `{id}` has {d} features but names={} background={}",
                    feature_names.len(),
                    background.n_features()
                ),
            }));
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        // Pack tree ensembles into the SoA engine once, here, so no
        // request ever pays the flattening cost. Best-effort: the packer
        // enforces stricter structural invariants than the trainers, and
        // a model it rejects simply serves through the interleaved path,
        // which is bit-identical (just slower).
        let packed = match &model {
            ServeModel::Gbdt(m) => SoaForest::from_gbdt(m).ok(),
            ServeModel::Forest(m) => SoaForest::from_forest(m).ok(),
            ServeModel::Linear(_) | ServeModel::Mlp(_) => None,
        };
        let expected_output = match &packed {
            Some(p) => background.expected_output(p),
            None => background.expected_output(model.as_regressor()),
        };
        // Per-stage grouping when the names follow the NFV telemetry
        // schema; otherwise every feature lands in group 0 ("traffic" from
        // `per_stage`, or the explicit single-group fallback). `d >= 1` is
        // guaranteed above, so the fallback cannot fail.
        let groups = FeatureGroups::per_stage(&feature_names).unwrap_or_else(|_| {
            FeatureGroups::new(vec!["all".into()], vec![0; d])
                .expect("single-group fallback is valid for d >= 1")
        });
        // Tree ensembles additionally go behind an `Arc` for the
        // structure-walking methods; one clone at registration time buys
        // Arc-cheap per-request method resolution.
        let trees = match &model {
            ServeModel::Gbdt(m) => Some(TreeModel::Gbdt(Arc::new(m.clone()))),
            ServeModel::Forest(m) => Some(TreeModel::Forest(Arc::new(m.clone()))),
            ServeModel::Linear(_) | ServeModel::Mlp(_) => None,
        };
        let entry = Arc::new(ModelEntry {
            model,
            version,
            feature_names,
            background,
            packed,
            expected_output,
            groups,
            trees,
        });
        self.models.write().insert(id.to_string(), entry);
        Ok(version)
    }

    /// Resolves `id` to its current entry.
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        self.models.read().get(id).cloned()
    }

    /// Removes `id`; returns whether it was present. Its per-method
    /// serving configuration goes with it.
    pub fn deregister(&self, id: &str) -> bool {
        self.anytime_divisors.write().remove(id);
        self.models.write().remove(id).is_some()
    }

    /// Sets the anytime coarsening divisor for one (model, method)
    /// service class: under queue pressure that class's sampling budget
    /// is cut by `divisor` (clamped to ≥ 1; 1 disables degradation for
    /// the class, since the floored result never drops below the
    /// original). `method` is the method *name* — the same string
    /// registered in the method registry — interning happens here.
    pub fn set_anytime_divisor(&self, model_id: &str, method: &str, divisor: u64) {
        self.anytime_divisors
            .write()
            .entry(model_id.to_string())
            .or_default()
            .insert(method_id(method), divisor.max(1));
    }

    /// The anytime divisor for one (model, interned method id) class;
    /// [`DEFAULT_ANYTIME_DIVISOR`] when unconfigured.
    pub fn anytime_divisor(&self, model_id: &str, method_id: u64) -> u64 {
        self.anytime_divisors
            .read()
            .get(model_id)
            .and_then(|per_method| per_method.get(&method_id))
            .copied()
            .unwrap_or(DEFAULT_ANYTIME_DIVISOR)
    }

    /// Registered ids, sorted (stable output for stats/debugging).
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.models.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_entry() -> (ServeModel, Vec<String>, Background) {
        // A 2-feature ridge fit on 4 points.
        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into(), "b".into()],
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            vec![0.0, 1.0, 2.0, 3.0],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let model = LinearRegression::fit(&data, 1e-6).unwrap();
        let bg = Background::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        (ServeModel::Linear(model), data.names.clone(), bg)
    }

    #[test]
    fn versions_increase_across_re_registration() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        let v1 = reg
            .register("sla", m.clone(), names.clone(), bg.clone())
            .unwrap();
        let v2 = reg.register("sla", m, names, bg).unwrap();
        assert!(v2 > v1);
        assert_eq!(reg.get("sla").unwrap().version, v2);
        assert_eq!(reg.ids(), vec!["sla".to_string()]);
        assert!(reg.deregister("sla"));
        assert!(reg.get("sla").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let reg = ModelRegistry::new();
        let (m, _, bg) = linear_entry();
        let err = reg
            .register("sla", m, vec!["only-one".into()], bg)
            .unwrap_err();
        assert!(err.is_reject());
    }

    #[test]
    fn tree_models_are_packed_bit_identically_and_linear_is_not() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let lin = reg.get("lin").unwrap();
        assert!(lin.packed.is_none(), "no SoA engine for linear models");

        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into(), "b".into()],
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.25],
            vec![0.0, 1.0, 2.0, 3.0, 1.5],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let gbdt = Gbdt::fit(
            &data,
            &GbdtParams {
                n_rounds: 8,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let bg = Background::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        reg.register("g", ServeModel::Gbdt(gbdt), data.names.clone(), bg)
            .unwrap();
        let entry = reg.get("g").unwrap();
        assert!(entry.packed.is_some(), "tree models get a packed engine");
        for i in 0..data.n_rows() {
            let row = data.row(i);
            assert_eq!(
                entry.explain_regressor().predict(row).to_bits(),
                entry.model.as_regressor().predict(row).to_bits(),
                "packed engine must be bit-identical to the source model"
            );
        }
    }

    #[test]
    fn expected_output_is_cached_bit_identically() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg.clone()).unwrap();
        let entry = reg.get("lin").unwrap();
        assert_eq!(
            entry.expected_output.to_bits(),
            bg.expected_output(entry.explain_regressor()).to_bits(),
            "cached base value must match a per-request recompute exactly"
        );
    }

    #[test]
    fn tree_shap_gated_to_tree_models() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let entry = reg.get("lin").unwrap();
        assert!(entry.supports(ExplainMethod::TreeShap).is_err());
        assert!(entry
            .supports(ExplainMethod::KernelShap { n_coalitions: 64 })
            .is_ok());
        // All widened variants pass on a 2-feature model.
        for m in [
            ExplainMethod::SamplingShapley {
                n_permutations: 8,
                antithetic: true,
            },
            ExplainMethod::ExactShapley,
            ExplainMethod::GroupedShapley,
            ExplainMethod::Permutation,
        ] {
            assert!(entry.supports(m).is_ok(), "{m:?}");
        }
    }

    #[test]
    fn registration_derives_a_valid_grouping() {
        let reg = ModelRegistry::new();
        let (m, _, bg) = linear_entry();
        // Non-schema names collapse into one group.
        reg.register("lin", m, vec!["a".into(), "b".into()], bg)
            .unwrap();
        let entry = reg.get("lin").unwrap();
        assert_eq!(entry.groups.assignment, vec![0, 0]);
        assert!(entry.supports(ExplainMethod::GroupedShapley).is_ok());
    }

    #[test]
    fn every_method_resolves_to_an_explainer_with_its_tag() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let entry = reg.get("lin").unwrap();
        for (method, tag, fusable) in [
            (
                ExplainMethod::KernelShap { n_coalitions: 16 },
                "kernel-shap",
                true,
            ),
            (ExplainMethod::Lime { n_samples: 64 }, "lime", false),
            (
                ExplainMethod::SamplingShapley {
                    n_permutations: 4,
                    antithetic: false,
                },
                "sampling-shapley",
                true,
            ),
            (ExplainMethod::ExactShapley, "exact-shapley", true),
            (ExplainMethod::GroupedShapley, "grouped-shapley", true),
            (ExplainMethod::Permutation, "permutation", true),
            (ExplainMethod::Interactions, "interactions", false),
        ] {
            let e = entry.explainer(method).unwrap();
            assert_eq!(e.tag(), tag);
            assert_eq!(e.fusable(), fusable, "{tag}");
            assert_eq!(e.tag(), method.tag(), "registry and request tags agree");
        }
        // Tree-shap has no tree structure to walk on a linear model; the
        // factory refuses (the validator already rejects at admission).
        assert!(entry.explainer(ExplainMethod::TreeShap).is_err());
    }

    #[test]
    fn tree_entries_resolve_tree_shap_through_the_registry() {
        let reg = ModelRegistry::new();
        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into(), "b".into()],
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.25],
            vec![0.0, 1.0, 2.0, 3.0, 1.5],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let gbdt = Gbdt::fit(
            &data,
            &GbdtParams {
                n_rounds: 6,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let bg = Background::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        reg.register("g", ServeModel::Gbdt(gbdt), data.names.clone(), bg)
            .unwrap();
        let entry = reg.get("g").unwrap();
        assert!(entry.trees.is_some(), "tree models carry their structure");
        let e = entry.explainer(ExplainMethod::TreeShap).unwrap();
        assert_eq!(e.tag(), "tree-shap");
        assert!(!e.fusable());
    }

    #[test]
    fn unknown_method_ids_get_a_typed_reject() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let entry = reg.get("lin").unwrap();
        let bogus = ExplainMethod::custom("no-such-method-registered", 4);
        let err = entry.supports(bogus).unwrap_err();
        match err {
            ServeError::Rejected(RejectReason::UnknownMethod { method }) => {
                // No registered name to report, so the reject carries the
                // lossless #hex escape of the interned id.
                assert_eq!(method, bogus.display_name());
                assert!(method.starts_with('#'));
            }
            other => panic!("expected UnknownMethod, got {other:?}"),
        }
        // explainer() misses the same way.
        assert!(entry.explainer(bogus).is_err());
    }

    #[test]
    fn anytime_divisors_are_per_model_method_with_default() {
        let reg = ModelRegistry::new();
        let kernel_id = ExplainMethod::KernelShap { n_coalitions: 512 }.method_id();
        let lime_id = ExplainMethod::Lime { n_samples: 512 }.method_id();
        assert_eq!(reg.anytime_divisor("m", kernel_id), DEFAULT_ANYTIME_DIVISOR);
        reg.set_anytime_divisor("m", "kernel-shap", 4);
        reg.set_anytime_divisor("m", "lime", 0); // clamped to 1 = never degrade
        assert_eq!(reg.anytime_divisor("m", kernel_id), 4);
        assert_eq!(reg.anytime_divisor("m", lime_id), 1);
        // Other models keep the default; deregistration clears config.
        assert_eq!(
            reg.anytime_divisor("other", kernel_id),
            DEFAULT_ANYTIME_DIVISOR
        );
        reg.deregister("m");
        assert_eq!(reg.anytime_divisor("m", kernel_id), DEFAULT_ANYTIME_DIVISOR);
    }
}
