//! The model registry: every servable model lives here behind an `Arc`,
//! tagged with a monotonically increasing version.
//!
//! Versions are global across the registry (not per-id) so a cache key
//! containing a version can never collide between "model A v2" and a
//! re-registered "model A" — every registration gets a fresh number.

use crate::error::{RejectReason, ServeError};
use crate::request::ExplainMethod;
use nfv_ml::prelude::*;
use nfv_xai::prelude::*;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A servable model: the closed set of architectures the NFV-management
/// stack deploys (SLA forecasting, latency regression, baselines).
///
/// Serializable so the `nfv-net` wire layer can ship a registration to
/// remote shard processes; all weights are finite, so the JSON round-trip
/// is bit-exact (Rust's shortest-float formatting guarantees it).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum ServeModel {
    /// Gradient-boosted trees (explained in margin space).
    Gbdt(Gbdt),
    /// Bagged random forest.
    Forest(RandomForest),
    /// Ridge regression — the intrinsically interpretable baseline.
    Linear(LinearRegression),
    /// The opaque MLP baseline.
    Mlp(Mlp),
}

impl ServeModel {
    /// Feature count the model was trained on.
    pub fn n_features(&self) -> usize {
        self.as_regressor().n_features()
    }

    /// The model as the trait object every model-agnostic explainer takes.
    pub fn as_regressor(&self) -> &dyn Regressor {
        match self {
            ServeModel::Gbdt(m) => m,
            ServeModel::Forest(m) => m,
            ServeModel::Linear(m) => m,
            ServeModel::Mlp(m) => m,
        }
    }

    /// Whether the structure-aware TreeSHAP path applies.
    pub fn supports_tree_shap(&self) -> bool {
        matches!(self, ServeModel::Gbdt(_) | ServeModel::Forest(_))
    }

    /// Short architecture tag for stats and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeModel::Gbdt(_) => "gbdt",
            ServeModel::Forest(_) => "forest",
            ServeModel::Linear(_) => "linear",
            ServeModel::Mlp(_) => "mlp",
        }
    }
}

/// One registered model with everything its explainers need.
#[derive(Debug)]
pub struct ModelEntry {
    /// The model itself.
    pub model: ServeModel,
    /// Registry-global version assigned at registration.
    pub version: u64,
    /// Feature names, aligned with model inputs.
    pub feature_names: Vec<String>,
    /// Background distribution for the sampling explainers.
    pub background: Background,
    /// Flattened SoA evaluation engine, built once at registration for
    /// tree ensembles (`None` otherwise). Its predictions are bit-identical
    /// to the source model's, so cached attributions and seeded results
    /// are unaffected by which path served them — only the latency is.
    pub packed: Option<SoaForest>,
    /// `E[f(X)]` over the background against [`ModelEntry::explain_regressor`],
    /// computed once at registration. KernelSHAP needs this base value per
    /// request; caching it here removes a full background sweep from every
    /// uncached request without changing any result bit (the per-request
    /// computation is the same deterministic reduction).
    pub expected_output: f64,
    /// Feature grouping for [`ExplainMethod::GroupedShapley`], derived
    /// from the feature names at registration: the standard per-stage NFV
    /// grouping when the names follow the telemetry schema, else a single
    /// group holding every feature.
    pub groups: FeatureGroups,
}

impl ModelEntry {
    /// The regressor model-agnostic explainers (KernelSHAP, LIME) should
    /// evaluate: the packed SoA engine when one exists — its blocked
    /// traversal is ~2× faster on the coalition matrices those explainers
    /// feed it — otherwise the model itself.
    pub fn explain_regressor(&self) -> &dyn Regressor {
        match &self.packed {
            Some(p) => p,
            None => self.model.as_regressor(),
        }
    }

    /// Checks a request's method against this model's capabilities.
    pub fn supports(&self, method: ExplainMethod) -> Result<(), ServeError> {
        match method {
            ExplainMethod::TreeShap if !self.model.supports_tree_shap() => {
                Err(ServeError::Rejected(RejectReason::InvalidRequest {
                    reason: format!(
                        "tree-shap requires a tree model, got `{}`",
                        self.model.kind()
                    ),
                }))
            }
            ExplainMethod::ExactShapley
                if self.model.n_features() > MAX_EXACT_FEATURES =>
            {
                Err(ServeError::Rejected(RejectReason::InvalidRequest {
                    reason: format!(
                        "exact Shapley enumerates 2^d coalitions; d = {} exceeds the limit of {MAX_EXACT_FEATURES}",
                        self.model.n_features()
                    ),
                }))
            }
            ExplainMethod::GroupedShapley if self.groups.len() > MAX_GROUPS => {
                Err(ServeError::Rejected(RejectReason::InvalidRequest {
                    reason: format!(
                        "grouped Shapley enumerates 2^G coalitions; G = {} exceeds the limit of {MAX_GROUPS}",
                        self.groups.len()
                    ),
                }))
            }
            _ => Ok(()),
        }
    }

    /// Resolves a request method to its [`Explainer`] — the single point
    /// where `ExplainMethod` variants meet concrete method implementations.
    /// Everything downstream (batching, fusion, finishing) is generic
    /// trait dispatch.
    pub fn explainer(self: &Arc<Self>, method: ExplainMethod) -> Box<dyn Explainer> {
        match method {
            ExplainMethod::TreeShap => Box::new(TreeShapExplainer {
                entry: Arc::clone(self),
            }),
            ExplainMethod::KernelShap { n_coalitions } => Box::new(KernelShapExplainer {
                n_coalitions,
                ridge: 0.0,
            }),
            ExplainMethod::Lime { n_samples } => Box::new(LimeExplainer { n_samples }),
            ExplainMethod::SamplingShapley {
                n_permutations,
                antithetic,
            } => Box::new(SamplingShapleyExplainer {
                n_permutations,
                antithetic,
            }),
            ExplainMethod::ExactShapley => Box::new(ExactShapleyExplainer),
            ExplainMethod::GroupedShapley => Box::new(GroupedShapleyExplainer {
                groups: self.groups.clone(),
            }),
            ExplainMethod::Permutation => Box::new(PermutationExplainer),
        }
    }
}

/// Structure-aware TreeSHAP behind the [`Explainer`] trait. Walks tree
/// structure rather than evaluating coalition composites, so it is not
/// fusable; it holds its entry because it needs the concrete tree model,
/// not the `dyn Regressor` in the context.
struct TreeShapExplainer {
    entry: Arc<ModelEntry>,
}

impl Explainer for TreeShapExplainer {
    fn tag(&self) -> &'static str {
        "tree-shap"
    }
    fn fusable(&self) -> bool {
        false
    }
    fn plan(
        &self,
        _ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
        _block: &mut FusedBlock,
    ) -> Result<Box<dyn ExplainPlan>, XaiError> {
        Err(XaiError::Input(
            "tree-shap walks tree structure; use direct()".into(),
        ))
    }
    fn direct(
        &self,
        ctx: &ExplainContext<'_>,
        _ws: &mut CoalitionWorkspace,
    ) -> Result<Attribution, XaiError> {
        match &self.entry.model {
            ServeModel::Gbdt(m) => gbdt_shap(m, ctx.x, ctx.names),
            ServeModel::Forest(m) => forest_shap(m, ctx.x, ctx.names),
            other => Err(XaiError::Input(format!(
                "tree-shap requires a tree model, got `{}`",
                other.kind()
            ))),
        }
    }
}

/// Thread-safe id → model map. Reads (the per-request hot path) take a
/// shared lock; registrations are rare and take the exclusive lock.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    next_version: AtomicU64,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) `id`, returning the assigned version.
    ///
    /// Validates that names and background agree with the model's feature
    /// count up front, so workers never see an inconsistent entry.
    pub fn register(
        &self,
        id: &str,
        model: ServeModel,
        feature_names: Vec<String>,
        background: Background,
    ) -> Result<u64, ServeError> {
        let d = model.n_features();
        if d == 0 {
            return Err(ServeError::Rejected(RejectReason::InvalidRequest {
                reason: format!("model `{id}` has no features"),
            }));
        }
        if feature_names.len() != d || background.n_features() != d {
            return Err(ServeError::Rejected(RejectReason::InvalidRequest {
                reason: format!(
                    "model `{id}` has {d} features but names={} background={}",
                    feature_names.len(),
                    background.n_features()
                ),
            }));
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        // Pack tree ensembles into the SoA engine once, here, so no
        // request ever pays the flattening cost. Best-effort: the packer
        // enforces stricter structural invariants than the trainers, and
        // a model it rejects simply serves through the interleaved path,
        // which is bit-identical (just slower).
        let packed = match &model {
            ServeModel::Gbdt(m) => SoaForest::from_gbdt(m).ok(),
            ServeModel::Forest(m) => SoaForest::from_forest(m).ok(),
            ServeModel::Linear(_) | ServeModel::Mlp(_) => None,
        };
        let expected_output = match &packed {
            Some(p) => background.expected_output(p),
            None => background.expected_output(model.as_regressor()),
        };
        // Per-stage grouping when the names follow the NFV telemetry
        // schema; otherwise every feature lands in group 0 ("traffic" from
        // `per_stage`, or the explicit single-group fallback). `d >= 1` is
        // guaranteed above, so the fallback cannot fail.
        let groups = FeatureGroups::per_stage(&feature_names).unwrap_or_else(|_| {
            FeatureGroups::new(vec!["all".into()], vec![0; d])
                .expect("single-group fallback is valid for d >= 1")
        });
        let entry = Arc::new(ModelEntry {
            model,
            version,
            feature_names,
            background,
            packed,
            expected_output,
            groups,
        });
        self.models.write().insert(id.to_string(), entry);
        Ok(version)
    }

    /// Resolves `id` to its current entry.
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        self.models.read().get(id).cloned()
    }

    /// Removes `id`; returns whether it was present.
    pub fn deregister(&self, id: &str) -> bool {
        self.models.write().remove(id).is_some()
    }

    /// Registered ids, sorted (stable output for stats/debugging).
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.models.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_entry() -> (ServeModel, Vec<String>, Background) {
        // A 2-feature ridge fit on 4 points.
        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into(), "b".into()],
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            vec![0.0, 1.0, 2.0, 3.0],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let model = LinearRegression::fit(&data, 1e-6).unwrap();
        let bg = Background::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        (ServeModel::Linear(model), data.names.clone(), bg)
    }

    #[test]
    fn versions_increase_across_re_registration() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        let v1 = reg
            .register("sla", m.clone(), names.clone(), bg.clone())
            .unwrap();
        let v2 = reg.register("sla", m, names, bg).unwrap();
        assert!(v2 > v1);
        assert_eq!(reg.get("sla").unwrap().version, v2);
        assert_eq!(reg.ids(), vec!["sla".to_string()]);
        assert!(reg.deregister("sla"));
        assert!(reg.get("sla").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let reg = ModelRegistry::new();
        let (m, _, bg) = linear_entry();
        let err = reg
            .register("sla", m, vec!["only-one".into()], bg)
            .unwrap_err();
        assert!(err.is_reject());
    }

    #[test]
    fn tree_models_are_packed_bit_identically_and_linear_is_not() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let lin = reg.get("lin").unwrap();
        assert!(lin.packed.is_none(), "no SoA engine for linear models");

        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into(), "b".into()],
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.25],
            vec![0.0, 1.0, 2.0, 3.0, 1.5],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let gbdt = Gbdt::fit(
            &data,
            &GbdtParams {
                n_rounds: 8,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let bg = Background::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        reg.register("g", ServeModel::Gbdt(gbdt), data.names.clone(), bg)
            .unwrap();
        let entry = reg.get("g").unwrap();
        assert!(entry.packed.is_some(), "tree models get a packed engine");
        for i in 0..data.n_rows() {
            let row = data.row(i);
            assert_eq!(
                entry.explain_regressor().predict(row).to_bits(),
                entry.model.as_regressor().predict(row).to_bits(),
                "packed engine must be bit-identical to the source model"
            );
        }
    }

    #[test]
    fn expected_output_is_cached_bit_identically() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg.clone()).unwrap();
        let entry = reg.get("lin").unwrap();
        assert_eq!(
            entry.expected_output.to_bits(),
            bg.expected_output(entry.explain_regressor()).to_bits(),
            "cached base value must match a per-request recompute exactly"
        );
    }

    #[test]
    fn tree_shap_gated_to_tree_models() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let entry = reg.get("lin").unwrap();
        assert!(entry.supports(ExplainMethod::TreeShap).is_err());
        assert!(entry
            .supports(ExplainMethod::KernelShap { n_coalitions: 64 })
            .is_ok());
        // All widened variants pass on a 2-feature model.
        for m in [
            ExplainMethod::SamplingShapley {
                n_permutations: 8,
                antithetic: true,
            },
            ExplainMethod::ExactShapley,
            ExplainMethod::GroupedShapley,
            ExplainMethod::Permutation,
        ] {
            assert!(entry.supports(m).is_ok(), "{m:?}");
        }
    }

    #[test]
    fn registration_derives_a_valid_grouping() {
        let reg = ModelRegistry::new();
        let (m, _, bg) = linear_entry();
        // Non-schema names collapse into one group.
        reg.register("lin", m, vec!["a".into(), "b".into()], bg)
            .unwrap();
        let entry = reg.get("lin").unwrap();
        assert_eq!(entry.groups.assignment, vec![0, 0]);
        assert!(entry.supports(ExplainMethod::GroupedShapley).is_ok());
    }

    #[test]
    fn every_method_resolves_to_an_explainer_with_its_tag() {
        let reg = ModelRegistry::new();
        let (m, names, bg) = linear_entry();
        reg.register("lin", m, names, bg).unwrap();
        let entry = reg.get("lin").unwrap();
        for (method, tag, fusable) in [
            (ExplainMethod::TreeShap, "tree-shap", false),
            (
                ExplainMethod::KernelShap { n_coalitions: 16 },
                "kernel-shap",
                true,
            ),
            (ExplainMethod::Lime { n_samples: 64 }, "lime", false),
            (
                ExplainMethod::SamplingShapley {
                    n_permutations: 4,
                    antithetic: false,
                },
                "sampling-shapley",
                true,
            ),
            (ExplainMethod::ExactShapley, "exact-shapley", true),
            (ExplainMethod::GroupedShapley, "grouped-shapley", true),
            (ExplainMethod::Permutation, "permutation", true),
        ] {
            let e = entry.explainer(method);
            assert_eq!(e.tag(), tag);
            assert_eq!(e.fusable(), fusable, "{tag}");
            assert_eq!(e.tag(), method.tag(), "registry and request tags agree");
        }
    }
}
