//! Request/response types of the in-process serving API, plus the stable
//! content hash that drives both cache keying and per-request seeding.

use nfv_xai::prelude::{method_id, Attribution, MethodRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Frozen interned ids of the built-in methods: `method_id(name)` of the
/// frozen names, precomputed so the hot hashing path is a table load.
/// These constants are part of the persistence format — cache
/// fingerprints, seeds, and EWMA service-class keys derive from them —
/// and must never change (enforced by `frozen_builtin_name_id_mapping`).
const ID_TREE_SHAP: u64 = method_id("tree-shap");
const ID_KERNEL_SHAP: u64 = method_id("kernel-shap");
const ID_LIME: u64 = method_id("lime");
const ID_SAMPLING_SHAPLEY: u64 = method_id("sampling-shapley");
const ID_EXACT_SHAPLEY: u64 = method_id("exact-shapley");
const ID_GROUPED_SHAPLEY: u64 = method_id("grouped-shapley");
const ID_PERMUTATION: u64 = method_id("permutation");
const ID_INTERACTIONS: u64 = method_id("interactions");

/// Which explanation method to run, with its sampling budget where one
/// applies. Budgets are part of the identity: a 64-coalition KernelSHAP
/// answer must never be served from a 512-coalition cache entry.
///
/// The named variants are ergonomic shorthands for the built-in methods;
/// [`ExplainMethod::Custom`] addresses anything registered at runtime in
/// the [`MethodRegistry`] by its interned id. All serving identity —
/// cache keys, seeds, admission classes — flows through
/// [`ExplainMethod::method_id`] and [`ExplainMethod::budget_word`], so a
/// built-in variant and a `Custom` carrying the same id and budget are
/// the same request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplainMethod {
    /// Structure-aware TreeSHAP (tree models only; deterministic, no RNG).
    TreeShap,
    /// KernelSHAP with an explicit coalition budget.
    KernelShap {
        /// Coalition evaluation budget.
        n_coalitions: usize,
    },
    /// LIME with an explicit perturbation-sample budget.
    Lime {
        /// Number of perturbed samples.
        n_samples: usize,
    },
    /// Permutation-sampling Shapley with an explicit permutation budget.
    SamplingShapley {
        /// Permutations to draw.
        n_permutations: usize,
        /// Pair each permutation with its reverse (variance reduction).
        antithetic: bool,
    },
    /// Exact full-enumeration Shapley (deterministic; rejected above
    /// `nfv_xai::prelude::MAX_EXACT_FEATURES` features).
    ExactShapley,
    /// Exact Shapley over the model's per-stage feature groups
    /// (deterministic; groups derive from the registered feature names).
    GroupedShapley,
    /// Per-instance permutation attribution — leave-one-covariate-out
    /// (deterministic).
    Permutation,
    /// Exact pairwise Shapley interaction values: a `d×d` matrix flattened
    /// row-major into `d²` attribution entries (deterministic; rejected
    /// above `nfv_xai::prelude::MAX_INTERACTION_FEATURES` features). The
    /// first method served through the open registry.
    Interactions,
    /// A method registered at runtime in the [`MethodRegistry`], addressed
    /// by its interned id (`method_id(name)`). Construct with
    /// [`ExplainMethod::custom`].
    Custom {
        /// Interned method id — FNV-1a of the registered name.
        id: u64,
        /// Opaque budget word handed to the method's factory (and folded
        /// into the request identity).
        budget: u64,
    },
}

impl ExplainMethod {
    /// A runtime-registered method by name, with an opaque budget word.
    pub fn custom(name: &str, budget: u64) -> ExplainMethod {
        ExplainMethod::Custom {
            id: method_id(name),
            budget,
        }
    }

    /// Short tag for metrics and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ExplainMethod::TreeShap => "tree-shap",
            ExplainMethod::KernelShap { .. } => "kernel-shap",
            ExplainMethod::Lime { .. } => "lime",
            ExplainMethod::SamplingShapley { .. } => "sampling-shapley",
            ExplainMethod::ExactShapley => "exact-shapley",
            ExplainMethod::GroupedShapley => "grouped-shapley",
            ExplainMethod::Permutation => "permutation",
            ExplainMethod::Interactions => "interactions",
            ExplainMethod::Custom { .. } => "custom",
        }
    }

    /// The interned method id: `method_id(frozen name)` for built-ins, the
    /// carried id for [`ExplainMethod::Custom`]. This — never an enum
    /// discriminant — is what cache keys, content-derived seeds, and
    /// admission service classes hash, so ids are stable across processes,
    /// releases, and the wire.
    pub fn method_id(&self) -> u64 {
        match self {
            ExplainMethod::TreeShap => ID_TREE_SHAP,
            ExplainMethod::KernelShap { .. } => ID_KERNEL_SHAP,
            ExplainMethod::Lime { .. } => ID_LIME,
            ExplainMethod::SamplingShapley { .. } => ID_SAMPLING_SHAPLEY,
            ExplainMethod::ExactShapley => ID_EXACT_SHAPLEY,
            ExplainMethod::GroupedShapley => ID_GROUPED_SHAPLEY,
            ExplainMethod::Permutation => ID_PERMUTATION,
            ExplainMethod::Interactions => ID_INTERACTIONS,
            ExplainMethod::Custom { id, .. } => *id,
        }
    }

    /// The method's opaque budget word: the sampling budget folded into
    /// the request identity and handed to the registry factory. Zero for
    /// deterministic methods; `2·P + antithetic` for sampling Shapley so
    /// the variance-reduction flag is part of the identity.
    pub fn budget_word(&self) -> u64 {
        match self {
            ExplainMethod::KernelShap { n_coalitions } => *n_coalitions as u64,
            ExplainMethod::Lime { n_samples } => *n_samples as u64,
            ExplainMethod::SamplingShapley {
                n_permutations,
                antithetic,
            } => (*n_permutations as u64) * 2 + *antithetic as u64,
            ExplainMethod::Custom { budget, .. } => *budget,
            ExplainMethod::TreeShap
            | ExplainMethod::ExactShapley
            | ExplainMethod::GroupedShapley
            | ExplainMethod::Permutation
            | ExplainMethod::Interactions => 0,
        }
    }

    /// Interned id + budget word folded into the content hash.
    pub(crate) fn hash_parts(&self) -> (u64, u64) {
        (self.method_id(), self.budget_word())
    }

    /// The method's name for humans and the wire: the frozen name for
    /// built-ins; for [`ExplainMethod::Custom`], the registered name when
    /// the id resolves, else the `#hex` escape of the raw id (which
    /// [`ExplainMethod::from_name`] parses back losslessly).
    pub fn display_name(&self) -> String {
        match self {
            ExplainMethod::Custom { id, .. } => match MethodRegistry::global().name_of(*id) {
                Some(name) => name.to_string(),
                None => format!("#{id:016x}"),
            },
            _ => self.tag().to_string(),
        }
    }

    /// Rebuilds a method from a (name, budget word) pair — the wire
    /// decoding of [`ExplainMethod::display_name`] /
    /// [`ExplainMethod::budget_word`]. Built-in names normalize to their
    /// canonical variants so a named frame and a legacy-discriminant frame
    /// for the same request produce identical cache keys and seeds;
    /// anything else becomes [`ExplainMethod::Custom`] (validation — not
    /// decoding — rejects names no registry knows).
    pub fn from_name(name: &str, budget: u64) -> ExplainMethod {
        match name {
            "tree-shap" => ExplainMethod::TreeShap,
            "kernel-shap" => ExplainMethod::KernelShap {
                n_coalitions: budget as usize,
            },
            "lime" => ExplainMethod::Lime {
                n_samples: budget as usize,
            },
            "sampling-shapley" => ExplainMethod::SamplingShapley {
                n_permutations: (budget / 2) as usize,
                antithetic: budget & 1 == 1,
            },
            "exact-shapley" => ExplainMethod::ExactShapley,
            "grouped-shapley" => ExplainMethod::GroupedShapley,
            "permutation" => ExplainMethod::Permutation,
            "interactions" => ExplainMethod::Interactions,
            _ => {
                if let Some(hex) = name.strip_prefix('#') {
                    if let Ok(id) = u64::from_str_radix(hex, 16) {
                        return ExplainMethod::Custom { id, budget };
                    }
                }
                ExplainMethod::Custom {
                    id: method_id(name),
                    budget,
                }
            }
        }
    }

    /// [`ExplainMethod::coarsened_with`] at the default ÷ 8 divisor.
    pub fn coarsened(&self) -> Option<(ExplainMethod, u64)> {
        self.coarsened_with(DEFAULT_ANYTIME_DIVISOR)
    }

    /// The degraded variant of this method used by the anytime path: same
    /// method, sampling budget cut by `divisor` (floored so the coarse
    /// answer is still statistically meaningful). The divisor is
    /// per-service-class configuration (see
    /// `ModelRegistry::set_anytime_divisor`); ÷ 8 is the default. Returns
    /// the coarse method plus the coarse sample budget recorded in
    /// [`Fidelity::Coarse`]. `None` for deterministic methods (nothing to
    /// cut), for budgets already at or below the floor, and for
    /// [`ExplainMethod::Custom`] (the serving layer cannot know how to
    /// scale an opaque budget word) — those either run at full fidelity or
    /// reject.
    pub fn coarsened_with(&self, divisor: u64) -> Option<(ExplainMethod, u64)> {
        let divisor = divisor.max(1) as usize;
        match *self {
            ExplainMethod::KernelShap { n_coalitions } => {
                let coarse = (n_coalitions / divisor).max(8);
                (coarse < n_coalitions).then_some((
                    ExplainMethod::KernelShap {
                        n_coalitions: coarse,
                    },
                    coarse as u64,
                ))
            }
            ExplainMethod::Lime { n_samples } => {
                let coarse = (n_samples / divisor).max(16);
                (coarse < n_samples)
                    .then_some((ExplainMethod::Lime { n_samples: coarse }, coarse as u64))
            }
            ExplainMethod::SamplingShapley {
                n_permutations,
                antithetic,
            } => {
                let coarse = (n_permutations / divisor).max(2);
                (coarse < n_permutations).then_some((
                    ExplainMethod::SamplingShapley {
                        n_permutations: coarse,
                        antithetic,
                    },
                    coarse as u64,
                ))
            }
            ExplainMethod::TreeShap
            | ExplainMethod::ExactShapley
            | ExplainMethod::GroupedShapley
            | ExplainMethod::Permutation
            | ExplainMethod::Interactions
            | ExplainMethod::Custom { .. } => None,
        }
    }
}

/// The anytime path's default budget divisor, used for every service
/// class without an explicit `ModelRegistry::set_anytime_divisor` entry.
pub const DEFAULT_ANYTIME_DIVISOR: u64 = 8;

/// How faithful a served attribution is to the full-budget, full-precision
/// answer. Exact responses are bit-identical to a direct explainer run;
/// every lossy path is typed here — quantized cache storage and coarse
/// anytime budgets are never silent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fidelity {
    /// Full sampling budget, f64 storage: bit-identical to a direct run.
    Exact,
    /// Full budget, served from the quantized cold tier. The bound is the
    /// measured max-abs dequantization error for this entry (≤ scale/2).
    Quantized {
        /// Measured max-abs error of the dequantized values vs the exact f64s.
        max_abs_err: f64,
    },
    /// Reduced sampling budget from the anytime path; exact f64 storage.
    Coarse {
        /// The reduced budget (coalitions / samples / permutations) used.
        sample_budget: u64,
    },
    /// Reduced budget *and* quantized storage (a coarse entry demoted to
    /// the cold tier before its refinement landed).
    CoarseQuantized {
        /// The reduced budget (coalitions / samples / permutations) used.
        sample_budget: u64,
        /// Measured max-abs error of the dequantized values vs the stored f64s.
        max_abs_err: f64,
    },
}

impl Fidelity {
    /// True only for the bit-identical path.
    pub fn is_exact(&self) -> bool {
        matches!(self, Fidelity::Exact)
    }

    /// Sampling-budget grade: 0 = coarse, 1 = full. Cache upgrades are
    /// monotone in this grade (coarse entries may be overwritten by full
    /// ones, never the reverse).
    pub fn grade(&self) -> u8 {
        match self {
            Fidelity::Exact | Fidelity::Quantized { .. } => 1,
            Fidelity::Coarse { .. } | Fidelity::CoarseQuantized { .. } => 0,
        }
    }

    /// The numeric error bound introduced by storage (0.0 on exact-storage
    /// paths). This is *storage* error only; coarse sampling error is
    /// reported via the budget, not a numeric bound.
    pub fn max_abs_err(&self) -> f64 {
        match self {
            Fidelity::Exact | Fidelity::Coarse { .. } => 0.0,
            Fidelity::Quantized { max_abs_err } | Fidelity::CoarseQuantized { max_abs_err, .. } => {
                *max_abs_err
            }
        }
    }

    /// The coarse sampling budget, if any (0 on full-budget paths).
    pub fn sample_budget(&self) -> u64 {
        match self {
            Fidelity::Exact | Fidelity::Quantized { .. } => 0,
            Fidelity::Coarse { sample_budget }
            | Fidelity::CoarseQuantized { sample_budget, .. } => *sample_budget,
        }
    }

    /// Rebuild a fidelity from its wire encoding `(sample_budget,
    /// max_abs_err)` — the inverse of [`Fidelity::sample_budget`] /
    /// [`Fidelity::max_abs_err`].
    pub fn from_parts(sample_budget: u64, max_abs_err: f64) -> Fidelity {
        match (sample_budget, max_abs_err != 0.0) {
            (0, false) => Fidelity::Exact,
            (0, true) => Fidelity::Quantized { max_abs_err },
            (b, false) => Fidelity::Coarse { sample_budget: b },
            (b, true) => Fidelity::CoarseQuantized {
                sample_budget: b,
                max_abs_err,
            },
        }
    }
}

/// One explanation request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRequest {
    /// Registry id of the model to explain.
    pub model_id: String,
    /// The instance to explain (must match the model's feature count).
    pub features: Vec<f64>,
    /// Which explainer to run.
    pub method: ExplainMethod,
    /// End-to-end latency budget; admission control rejects requests it
    /// cannot serve within this, and workers drop requests whose budget
    /// expired while queued.
    pub budget: Duration,
}

/// A served explanation plus its provenance.
#[derive(Debug, Clone)]
pub struct ExplainResponse {
    /// The attribution (shared with the cache; cloning is pointer-cheap).
    pub attribution: Arc<Attribution>,
    /// Version of the model that produced it.
    pub model_version: u64,
    /// True when served from the cache without touching the queue/workers.
    pub cache_hit: bool,
    /// Size of the worker batch this request was explained in (1 for cache
    /// hits and singleton batches).
    pub batch_size: usize,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Explainer compute time attributed to this request's batch group.
    pub service_time: Duration,
    /// How faithful this answer is to the exact full-budget result.
    pub fidelity: Fidelity,
}

/// FNV-1a over explicit little-endian words: a stable, dependency-free
/// content hash. Used for cache sharding and per-request seed derivation,
/// so it must be identical across runs and platforms (`DefaultHasher`
/// makes no such cross-version promise).
pub(crate) fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Stable identity of a (model-version, method) *service class* — the
/// granularity at which admission control tracks service-time EWMAs. A
/// 8-coalition KernelSHAP request and a TreeSHAP request against the same
/// model differ by orders of magnitude in cost; folding the version in
/// keeps estimates from a retired model from polluting its replacement.
/// Never zero: zero marks an empty slot in the metrics table.
///
/// The method contributes its *interned id* (FNV-1a of the frozen method
/// name — see [`ExplainMethod::method_id`]) plus its budget word, never a
/// Rust enum discriminant, so class keys are identical across processes
/// and survive registry growth: adding a method can never renumber the
/// classes of existing ones.
pub(crate) fn service_class_key(model_version: u64, method: ExplainMethod) -> u64 {
    let (method_id, sample_budget) = method.hash_parts();
    fnv1a_words([model_version, method_id, sample_budget]).max(1)
}

/// The seed a worker hands a stochastic explainer for one request:
/// derived from the engine seed and the request's stable content hash, so
/// results depend only on *what* is asked — never on arrival order,
/// batch composition, worker thread, or cluster shard.
pub fn request_seed(engine_seed: u64, key_hash: u64) -> u64 {
    fnv1a_words([engine_seed, key_hash])
}

/// FNV-1a over explicit little-endian words, seeded with a *different*
/// offset basis than [`fnv1a_words`]. Pairing the two yields the 128-bit
/// cold-tier fingerprint: two independent 64-bit folds of the same words,
/// so a collision requires both hashes to collide at once.
pub(crate) fn fnv1a_words_alt(words: impl IntoIterator<Item = u64>) -> u64 {
    // Second basis: the standard FNV offset basis XOR a fixed constant
    // (arbitrary but stable; must never change once entries are keyed).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a over raw bytes (for model ids).
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = fnv1a_words([1, 2, 3]);
        assert_eq!(a, fnv1a_words([1, 2, 3]), "deterministic");
        assert_ne!(a, fnv1a_words([1, 2, 4]));
        assert_ne!(a, fnv1a_words([3, 2, 1]), "order matters");
        assert_ne!(fnv1a_bytes(b"gbdt"), fnv1a_bytes(b"mlp"));
    }

    #[test]
    fn method_identity_includes_budget() {
        let a = ExplainMethod::KernelShap { n_coalitions: 64 };
        let b = ExplainMethod::KernelShap { n_coalitions: 512 };
        assert_ne!(a.hash_parts(), b.hash_parts());
        assert_eq!(a.tag(), b.tag());
        let s = ExplainMethod::SamplingShapley {
            n_permutations: 32,
            antithetic: false,
        };
        let s_anti = ExplainMethod::SamplingShapley {
            n_permutations: 32,
            antithetic: true,
        };
        assert_ne!(
            s.hash_parts(),
            s_anti.hash_parts(),
            "antithetic is identity"
        );
    }

    /// The frozen built-in name → id mapping, spelled out as literals.
    /// Cache fingerprints, blessed baselines, and EWMA service-class keys
    /// all hash these ids; if this test fails, the migration broke every
    /// persisted key. Never update the literals — register a new name.
    #[test]
    fn frozen_builtin_name_id_mapping() {
        let frozen: [(ExplainMethod, &str, u64); 8] = [
            (ExplainMethod::TreeShap, "tree-shap", 0x54c3_ee37_5518_dfea),
            (
                ExplainMethod::KernelShap { n_coalitions: 64 },
                "kernel-shap",
                0xe245_1ecf_d5f1_684d,
            ),
            (
                ExplainMethod::Lime { n_samples: 256 },
                "lime",
                0xbf55_95ad_6957_925c,
            ),
            (
                ExplainMethod::SamplingShapley {
                    n_permutations: 32,
                    antithetic: true,
                },
                "sampling-shapley",
                0x65b4_6f9c_e1c6_6499,
            ),
            (
                ExplainMethod::ExactShapley,
                "exact-shapley",
                0xec01_0b19_9367_dfe5,
            ),
            (
                ExplainMethod::GroupedShapley,
                "grouped-shapley",
                0x1fc7_9ffb_7312_d74c,
            ),
            (
                ExplainMethod::Permutation,
                "permutation",
                0x30c0_a849_13fc_221b,
            ),
            (
                ExplainMethod::Interactions,
                "interactions",
                0xa29e_e326_d09f_9848,
            ),
        ];
        for (m, name, id) in frozen {
            assert_eq!(m.tag(), name, "frozen name drifted");
            assert_eq!(m.method_id(), id, "frozen id drifted for `{name}`");
            assert_eq!(method_id(name), id, "method_id() drifted for `{name}`");
        }
    }

    #[test]
    fn custom_methods_share_the_identity_scheme() {
        let c = ExplainMethod::custom("online-sage", 32);
        assert_eq!(c.method_id(), method_id("online-sage"));
        assert_eq!(c.budget_word(), 32);
        assert_eq!(c.tag(), "custom");
        // A built-in variant and a Custom carrying its id are the same
        // request identity.
        let k = ExplainMethod::KernelShap { n_coalitions: 64 };
        let k_as_custom = ExplainMethod::Custom {
            id: method_id("kernel-shap"),
            budget: 64,
        };
        assert_eq!(k.hash_parts(), k_as_custom.hash_parts());
        assert_eq!(
            service_class_key(3, k),
            service_class_key(3, k_as_custom),
            "identity is the interned id, not the Rust variant"
        );
    }

    #[test]
    fn from_name_round_trips_builtins_and_custom() {
        let methods = [
            ExplainMethod::TreeShap,
            ExplainMethod::KernelShap { n_coalitions: 64 },
            ExplainMethod::Lime { n_samples: 256 },
            ExplainMethod::SamplingShapley {
                n_permutations: 32,
                antithetic: true,
            },
            ExplainMethod::SamplingShapley {
                n_permutations: 32,
                antithetic: false,
            },
            ExplainMethod::ExactShapley,
            ExplainMethod::GroupedShapley,
            ExplainMethod::Permutation,
            ExplainMethod::Interactions,
        ];
        for m in methods {
            let back = ExplainMethod::from_name(&m.display_name(), m.budget_word());
            assert_eq!(back, m, "named round-trip must normalize to canonical");
        }
        // An unregistered custom id survives via the #hex escape.
        let c = ExplainMethod::Custom {
            id: 0x1234_5678_9abc_def0,
            budget: 7,
        };
        assert_eq!(c.display_name(), "#123456789abcdef0");
        let back = ExplainMethod::from_name(&c.display_name(), c.budget_word());
        assert_eq!(back, c);
        // A registered name decodes to its interned id.
        let named = ExplainMethod::from_name("online-sage", 9);
        assert_eq!(named, ExplainMethod::custom("online-sage", 9));
    }

    #[test]
    fn service_class_keys_separate_every_method_variant() {
        let methods = [
            ExplainMethod::TreeShap,
            ExplainMethod::KernelShap { n_coalitions: 64 },
            ExplainMethod::Lime { n_samples: 256 },
            ExplainMethod::SamplingShapley {
                n_permutations: 32,
                antithetic: true,
            },
            ExplainMethod::ExactShapley,
            ExplainMethod::GroupedShapley,
            ExplainMethod::Permutation,
            ExplainMethod::Interactions,
            ExplainMethod::custom("online-sage", 16),
        ];
        let mut keys: Vec<u64> = methods.iter().map(|&m| service_class_key(3, m)).collect();
        assert!(keys.iter().all(|&k| k != 0), "zero marks an empty slot");
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            methods.len(),
            "every variant gets its own EWMA class"
        );
        assert_ne!(
            service_class_key(3, ExplainMethod::Permutation),
            service_class_key(4, ExplainMethod::Permutation),
            "model version is part of the class"
        );
    }

    #[test]
    fn seeds_depend_on_content_not_order() {
        assert_eq!(request_seed(7, 100), request_seed(7, 100));
        assert_ne!(request_seed(7, 100), request_seed(7, 101));
        assert_ne!(request_seed(7, 100), request_seed(8, 100));
    }

    #[test]
    fn alt_hash_is_independent_of_primary() {
        let words = [1u64, 2, 3];
        assert_ne!(fnv1a_words(words), fnv1a_words_alt(words));
        assert_eq!(fnv1a_words_alt(words), fnv1a_words_alt(words));
        assert_ne!(fnv1a_words_alt([1, 2, 3]), fnv1a_words_alt([1, 2, 4]));
    }

    #[test]
    fn coarsened_cuts_sampling_budgets_only() {
        let (m, b) = ExplainMethod::KernelShap { n_coalitions: 512 }
            .coarsened()
            .unwrap();
        assert_eq!(m, ExplainMethod::KernelShap { n_coalitions: 64 });
        assert_eq!(b, 64);
        // Floor: already-small budgets have nothing worth cutting.
        assert!(ExplainMethod::KernelShap { n_coalitions: 8 }
            .coarsened()
            .is_none());
        let (m, b) = ExplainMethod::SamplingShapley {
            n_permutations: 32,
            antithetic: true,
        }
        .coarsened()
        .unwrap();
        assert_eq!(
            m,
            ExplainMethod::SamplingShapley {
                n_permutations: 4,
                antithetic: true
            },
            "antithetic pairing survives coarsening"
        );
        assert_eq!(b, 4);
        let (m, _) = ExplainMethod::Lime { n_samples: 1024 }.coarsened().unwrap();
        assert_eq!(m, ExplainMethod::Lime { n_samples: 128 });
        // Deterministic methods have no sampling budget to degrade.
        assert!(ExplainMethod::TreeShap.coarsened().is_none());
        assert!(ExplainMethod::ExactShapley.coarsened().is_none());
        assert!(ExplainMethod::GroupedShapley.coarsened().is_none());
        assert!(ExplainMethod::Permutation.coarsened().is_none());
        assert!(ExplainMethod::Interactions.coarsened().is_none());
        // Opaque custom budgets are never scaled by the serving layer.
        assert!(ExplainMethod::custom("online-sage", 64)
            .coarsened()
            .is_none());
    }

    #[test]
    fn coarsening_divisor_is_per_class_configuration() {
        let k = ExplainMethod::KernelShap { n_coalitions: 512 };
        let (m, b) = k.coarsened_with(4).unwrap();
        assert_eq!(m, ExplainMethod::KernelShap { n_coalitions: 128 });
        assert_eq!(b, 128);
        assert_eq!(k.coarsened_with(8), k.coarsened(), "÷ 8 stays the default");
        // Divisor 1 (and 0, clamped to 1) means "never degrade this class".
        assert!(k.coarsened_with(1).is_none());
        assert!(k.coarsened_with(0).is_none());
        // Floors still apply under aggressive divisors.
        let (m, _) = k.coarsened_with(1024).unwrap();
        assert_eq!(m, ExplainMethod::KernelShap { n_coalitions: 8 });
        let s = ExplainMethod::SamplingShapley {
            n_permutations: 32,
            antithetic: true,
        };
        let (m, b) = s.coarsened_with(16).unwrap();
        assert_eq!(
            m,
            ExplainMethod::SamplingShapley {
                n_permutations: 2,
                antithetic: true
            }
        );
        assert_eq!(b, 2);
    }

    #[test]
    fn fidelity_parts_round_trip() {
        for f in [
            Fidelity::Exact,
            Fidelity::Quantized { max_abs_err: 1e-4 },
            Fidelity::Coarse { sample_budget: 64 },
            Fidelity::CoarseQuantized {
                sample_budget: 64,
                max_abs_err: 1e-4,
            },
        ] {
            assert_eq!(Fidelity::from_parts(f.sample_budget(), f.max_abs_err()), f);
        }
        assert!(Fidelity::Exact.is_exact());
        assert_eq!(Fidelity::Exact.grade(), 1);
        assert_eq!(Fidelity::Quantized { max_abs_err: 0.1 }.grade(), 1);
        assert_eq!(Fidelity::Coarse { sample_budget: 8 }.grade(), 0);
        assert_eq!(
            Fidelity::CoarseQuantized {
                sample_budget: 8,
                max_abs_err: 0.1
            }
            .grade(),
            0
        );
    }
}
