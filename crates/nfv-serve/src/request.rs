//! Request/response types of the in-process serving API, plus the stable
//! content hash that drives both cache keying and per-request seeding.

use nfv_xai::prelude::Attribution;
use std::sync::Arc;
use std::time::Duration;

/// Which explanation method to run, with its sampling budget where one
/// applies. Budgets are part of the identity: a 64-coalition KernelSHAP
/// answer must never be served from a 512-coalition cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplainMethod {
    /// Structure-aware TreeSHAP (tree models only; deterministic, no RNG).
    TreeShap,
    /// KernelSHAP with an explicit coalition budget.
    KernelShap {
        /// Coalition evaluation budget.
        n_coalitions: usize,
    },
    /// LIME with an explicit perturbation-sample budget.
    Lime {
        /// Number of perturbed samples.
        n_samples: usize,
    },
    /// Permutation-sampling Shapley with an explicit permutation budget.
    SamplingShapley {
        /// Permutations to draw.
        n_permutations: usize,
        /// Pair each permutation with its reverse (variance reduction).
        antithetic: bool,
    },
    /// Exact full-enumeration Shapley (deterministic; rejected above
    /// `nfv_xai::prelude::MAX_EXACT_FEATURES` features).
    ExactShapley,
    /// Exact Shapley over the model's per-stage feature groups
    /// (deterministic; groups derive from the registered feature names).
    GroupedShapley,
    /// Per-instance permutation attribution — leave-one-covariate-out
    /// (deterministic).
    Permutation,
}

impl ExplainMethod {
    /// Short tag for metrics and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ExplainMethod::TreeShap => "tree-shap",
            ExplainMethod::KernelShap { .. } => "kernel-shap",
            ExplainMethod::Lime { .. } => "lime",
            ExplainMethod::SamplingShapley { .. } => "sampling-shapley",
            ExplainMethod::ExactShapley => "exact-shapley",
            ExplainMethod::GroupedShapley => "grouped-shapley",
            ExplainMethod::Permutation => "permutation",
        }
    }

    /// Discriminant + budget folded into the content hash.
    pub(crate) fn hash_parts(&self) -> (u64, u64) {
        match self {
            ExplainMethod::TreeShap => (1, 0),
            ExplainMethod::KernelShap { n_coalitions } => (2, *n_coalitions as u64),
            ExplainMethod::Lime { n_samples } => (3, *n_samples as u64),
            ExplainMethod::SamplingShapley {
                n_permutations,
                antithetic,
            } => (4, (*n_permutations as u64) * 2 + *antithetic as u64),
            ExplainMethod::ExactShapley => (5, 0),
            ExplainMethod::GroupedShapley => (6, 0),
            ExplainMethod::Permutation => (7, 0),
        }
    }
}

/// One explanation request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRequest {
    /// Registry id of the model to explain.
    pub model_id: String,
    /// The instance to explain (must match the model's feature count).
    pub features: Vec<f64>,
    /// Which explainer to run.
    pub method: ExplainMethod,
    /// End-to-end latency budget; admission control rejects requests it
    /// cannot serve within this, and workers drop requests whose budget
    /// expired while queued.
    pub budget: Duration,
}

/// A served explanation plus its provenance.
#[derive(Debug, Clone)]
pub struct ExplainResponse {
    /// The attribution (shared with the cache; cloning is pointer-cheap).
    pub attribution: Arc<Attribution>,
    /// Version of the model that produced it.
    pub model_version: u64,
    /// True when served from the cache without touching the queue/workers.
    pub cache_hit: bool,
    /// Size of the worker batch this request was explained in (1 for cache
    /// hits and singleton batches).
    pub batch_size: usize,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Explainer compute time attributed to this request's batch group.
    pub service_time: Duration,
}

/// FNV-1a over explicit little-endian words: a stable, dependency-free
/// content hash. Used for cache sharding and per-request seed derivation,
/// so it must be identical across runs and platforms (`DefaultHasher`
/// makes no such cross-version promise).
pub(crate) fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Stable identity of a (model-version, method) *service class* — the
/// granularity at which admission control tracks service-time EWMAs. A
/// 8-coalition KernelSHAP request and a TreeSHAP request against the same
/// model differ by orders of magnitude in cost; folding the version in
/// keeps estimates from a retired model from polluting its replacement.
/// Never zero: zero marks an empty slot in the metrics table.
pub(crate) fn service_class_key(model_version: u64, method: ExplainMethod) -> u64 {
    let (discriminant, sample_budget) = method.hash_parts();
    fnv1a_words([model_version, discriminant, sample_budget]).max(1)
}

/// The seed a worker hands a stochastic explainer for one request:
/// derived from the engine seed and the request's stable content hash, so
/// results depend only on *what* is asked — never on arrival order,
/// batch composition, worker thread, or cluster shard.
pub fn request_seed(engine_seed: u64, key_hash: u64) -> u64 {
    fnv1a_words([engine_seed, key_hash])
}

/// FNV-1a over raw bytes (for model ids).
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = fnv1a_words([1, 2, 3]);
        assert_eq!(a, fnv1a_words([1, 2, 3]), "deterministic");
        assert_ne!(a, fnv1a_words([1, 2, 4]));
        assert_ne!(a, fnv1a_words([3, 2, 1]), "order matters");
        assert_ne!(fnv1a_bytes(b"gbdt"), fnv1a_bytes(b"mlp"));
    }

    #[test]
    fn method_identity_includes_budget() {
        let a = ExplainMethod::KernelShap { n_coalitions: 64 };
        let b = ExplainMethod::KernelShap { n_coalitions: 512 };
        assert_ne!(a.hash_parts(), b.hash_parts());
        assert_eq!(a.tag(), b.tag());
        let s = ExplainMethod::SamplingShapley {
            n_permutations: 32,
            antithetic: false,
        };
        let s_anti = ExplainMethod::SamplingShapley {
            n_permutations: 32,
            antithetic: true,
        };
        assert_ne!(
            s.hash_parts(),
            s_anti.hash_parts(),
            "antithetic is identity"
        );
    }

    #[test]
    fn service_class_keys_separate_every_method_variant() {
        let methods = [
            ExplainMethod::TreeShap,
            ExplainMethod::KernelShap { n_coalitions: 64 },
            ExplainMethod::Lime { n_samples: 256 },
            ExplainMethod::SamplingShapley {
                n_permutations: 32,
                antithetic: true,
            },
            ExplainMethod::ExactShapley,
            ExplainMethod::GroupedShapley,
            ExplainMethod::Permutation,
        ];
        let mut keys: Vec<u64> = methods.iter().map(|&m| service_class_key(3, m)).collect();
        assert!(keys.iter().all(|&k| k != 0), "zero marks an empty slot");
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            methods.len(),
            "every variant gets its own EWMA class"
        );
        assert_ne!(
            service_class_key(3, ExplainMethod::Permutation),
            service_class_key(4, ExplainMethod::Permutation),
            "model version is part of the class"
        );
    }

    #[test]
    fn seeds_depend_on_content_not_order() {
        assert_eq!(request_seed(7, 100), request_seed(7, 100));
        assert_ne!(request_seed(7, 100), request_seed(7, 101));
        assert_ne!(request_seed(7, 100), request_seed(8, 100));
    }
}
