//! Lock-free serving metrics: monotonic counters, log-bucketed latency
//! histograms, and an EWMA service-time estimate that admission control
//! reads on every request.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Buckets per power of two. Four sub-buckets give ≤ ~19% relative error
/// on reported quantiles — plenty for p50/p99 serving dashboards.
const SUB_BUCKETS: u64 = 4;
const N_BUCKETS: usize = (64 * SUB_BUCKETS) as usize;

/// A fixed-size log₂ histogram over nanosecond durations, recordable from
/// any thread without locks.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < 2 {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros() as u64;
        let sub = (ns >> (exp.saturating_sub(2))) & (SUB_BUCKETS - 1);
        ((exp * SUB_BUCKETS) + sub) as usize
    }

    /// Lower edge of bucket `i` in nanoseconds (quantile resolution).
    fn bucket_floor(i: usize) -> u64 {
        let i = i as u64;
        if i < 2 {
            return i;
        }
        let exp = i / SUB_BUCKETS;
        let sub = i % SUB_BUCKETS;
        if exp < 2 {
            return 1u64 << exp;
        }
        (1u64 << exp) + (sub << (exp - 2))
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Quantile `q ∈ [0,1]` in microseconds (bucket lower edge; 0 when
    /// empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i) as f64 / 1_000.0;
            }
        }
        Self::bucket_floor(N_BUCKETS - 1) as f64 / 1_000.0
    }
}

/// All counters the engine maintains. Everything is monotonic; rates are
/// derived in [`ServeStats`] snapshots.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests entering `explain` (before any admission decision).
    pub submitted: AtomicU64,
    /// Requests answered with an attribution.
    pub completed: AtomicU64,
    /// Rejects: bounded queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Rejects: predicted latency exceeded the budget at admission.
    pub rejected_deadline_unmeetable: AtomicU64,
    /// Rejects: budget expired while queued (dropped by worker).
    pub rejected_deadline_expired: AtomicU64,
    /// Rejects: unknown model id.
    pub rejected_unknown_model: AtomicU64,
    /// Rejects: malformed request.
    pub rejected_invalid: AtomicU64,
    /// Explainer errors surfaced to callers.
    pub explain_errors: AtomicU64,
    /// Cache hits (client fast path + worker recheck).
    pub cache_hits: AtomicU64,
    /// Cache misses that went to the explainers.
    pub cache_misses: AtomicU64,
    /// Worker batches executed (compatible groups, size ≥ 1).
    pub batches: AtomicU64,
    /// Requests explained inside those batches.
    pub batched_requests: AtomicU64,
    /// Largest batch observed.
    pub max_batch: AtomicU64,
    /// Fused evaluation blocks executed (≥ 2 requests sharing one
    /// `predict_block` call).
    pub fused_groups: AtomicU64,
    /// Requests whose coalition work rode inside a fused block.
    pub fused_requests: AtomicU64,
    /// Composite rows evaluated inside fused blocks (fill-ratio numerator:
    /// `fused_rows / (fused_groups × fusion.target_rows)` says how well
    /// fused blocks clear the SoA pack breakeven).
    pub fused_rows: AtomicU64,
    /// The fusion row target configured at engine start (denominator of
    /// the fill ratio; 0 when fusion is disabled).
    pub fused_target_rows: AtomicU64,
    /// Composite rows the fused-block adjacent-dedup pass skipped (rows
    /// that were bit-identical to their predecessor and reused its
    /// prediction instead of being evaluated).
    pub dedup_rows_saved: AtomicU64,
    /// Requests answered by another request's in-flight computation
    /// (single-flight dedup followers).
    pub single_flight_hits: AtomicU64,
    /// Probe admissions: requests the per-class estimate would have
    /// rejected, admitted to resample a possibly-stale EWMA.
    pub probe_admits: AtomicU64,
    /// Cache hits served from the quantized cold tier (a subset of
    /// `cache_hits`; each carried a typed max-abs error bound).
    pub quantized_hits: AtomicU64,
    /// Requests served a coarse (reduced-budget) anytime attribution
    /// instead of a queue-full rejection.
    pub degraded_served: AtomicU64,
    /// Coarse cache entries upgraded in place to the full-budget result by
    /// the background refiner.
    pub refined_entries: AtomicU64,
    /// Refinement jobs dropped because the refine queue was full (the
    /// coarse answer stands until the key is requested again).
    pub refine_dropped: AtomicU64,
    /// Queue wait of worker-served requests.
    pub queue_wait: LatencyHistogram,
    /// Explainer compute time per batch group, attributed per request.
    pub service: LatencyHistogram,
    /// End-to-end latency of completed requests (hit or miss).
    pub total: LatencyHistogram,
    /// EWMA of per-request service time, stored in fixed-point 1/256-ns
    /// units (admission control's model of how expensive one explanation
    /// currently is). Fixed point matters: a plain integer EWMA
    /// `cur − cur/8 + ns/8` stalls once `cur < 8` ns-units above the
    /// target, because both division terms truncate to 0 and the estimate
    /// never converges below ~8 ns of its floor.
    ewma_service_fp: AtomicU64,
    /// Per-(model-version, method) service-time EWMAs. The global EWMA
    /// above blends a 40µs TreeSHAP with a 10ms KernelSHAP into one
    /// number that misprices both; admission prefers the class estimate
    /// and only falls back to the blend for classes it has never seen.
    pub class_service: ClassEwmaTable,
}

/// Fixed-point shift for the service-time EWMA (values carry 8 fractional
/// bits, i.e. 1/256 ns resolution).
const EWMA_FP_SHIFT: u32 = 8;

/// Slots in the per-class service-time table. Open addressing with linear
/// probing; classes are (model-version, method) pairs, so 64 slots cover
/// far more concurrently-live workload mixes than a realistic deployment
/// runs. A full table degrades gracefully: unplaced classes fall back to
/// the global EWMA.
const CLASS_SLOTS: usize = 64;

/// Folds one ns sample into a fixed-point EWMA cell (α = 1/8, the classic
/// TCP RTT smoothing constant; a zero cell is seeded by its first sample).
fn ewma_fold(cell: &AtomicU64, ns: u64) {
    let scaled = ns.saturating_mul(1 << EWMA_FP_SHIFT);
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = if cur == 0 {
            scaled
        } else {
            cur - cur / 8 + scaled / 8
        };
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// A lock-free open-addressed map from service-class key to a fixed-point
/// service-time EWMA. Keys are claimed once with a CAS and never removed
/// (re-registered models get fresh versions, hence fresh keys; stale
/// classes just stop being read).
#[derive(Debug)]
pub struct ClassEwmaTable {
    keys: [AtomicU64; CLASS_SLOTS],
    ewma_fp: [AtomicU64; CLASS_SLOTS],
    /// Consecutive deadline-unmeetable rejects per class. A nonzero streak
    /// means the EWMA may be poisoned (one slow outlier inflated it and no
    /// admitted request can ever resample it); admission uses the streak to
    /// decide when to probe.
    rejects: [AtomicU64; CLASS_SLOTS],
}

impl Default for ClassEwmaTable {
    fn default() -> Self {
        ClassEwmaTable {
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            ewma_fp: std::array::from_fn(|_| AtomicU64::new(0)),
            rejects: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ClassEwmaTable {
    /// Finds `class`'s slot, optionally claiming an empty one. `None`
    /// means "not present" (lookup) or "table full" (claim).
    fn slot_of(&self, class: u64, claim: bool) -> Option<usize> {
        debug_assert_ne!(class, 0, "class keys are nonzero by construction");
        let start = class as usize % CLASS_SLOTS;
        for i in 0..CLASS_SLOTS {
            let s = (start + i) % CLASS_SLOTS;
            match self.keys[s].load(Ordering::Relaxed) {
                k if k == class => return Some(s),
                0 => {
                    if !claim {
                        return None;
                    }
                    match self.keys[s].compare_exchange(
                        0,
                        class,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return Some(s),
                        // Lost the race to the same class: that's our slot.
                        Err(now) if now == class => return Some(s),
                        // Lost to a different class: keep probing.
                        Err(_) => {}
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Folds one sample into `class`'s EWMA (no-op when the table is full
    /// and `class` has no slot — the global EWMA still sees the sample).
    pub fn observe(&self, class: u64, ns: u64) {
        if let Some(s) = self.slot_of(class, true) {
            ewma_fold(&self.ewma_fp[s], ns);
        }
    }

    /// Smoothed per-request estimate for `class` in ns; `None` until the
    /// class has been observed (callers fall back to the global EWMA).
    pub fn get(&self, class: u64) -> Option<u64> {
        let s = self.slot_of(class, false)?;
        let ns = self.ewma_fp[s].load(Ordering::Relaxed) >> EWMA_FP_SHIFT;
        (ns > 0).then_some(ns)
    }

    /// Records a deadline-unmeetable reject for `class`: bumps its
    /// consecutive-reject streak and multiplicatively ages the EWMA cell
    /// (× 7/8), so an estimate poisoned by one slow outlier decays toward
    /// feasibility even though rejected requests never produce a service
    /// sample. Returns the new streak length (0 when the table has no slot
    /// for the class).
    pub fn note_reject(&self, class: u64) -> u64 {
        let Some(s) = self.slot_of(class, true) else {
            return 0;
        };
        let mut cur = self.ewma_fp[s].load(Ordering::Relaxed);
        loop {
            let next = cur - cur / 8;
            match self.ewma_fp[s].compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.rejects[s].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Clears `class`'s consecutive-reject streak (called on every
    /// successful feasibility pass — an admit proves the estimate isn't
    /// blocking the class).
    pub fn note_admit(&self, class: u64) {
        if let Some(s) = self.slot_of(class, false) {
            self.rejects[s].store(0, Ordering::Relaxed);
        }
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed per-request service time into the global EWMA.
    /// The accumulator keeps `EWMA_FP_SHIFT` fractional bits so repeated
    /// small samples keep moving the estimate instead of truncating to a
    /// no-op.
    pub fn observe_service_ns(&self, ns: u64) {
        ewma_fold(&self.ewma_service_fp, ns);
    }

    /// Folds one observed per-request service time into both the class
    /// EWMA and the global blend (workers call this; the global estimate
    /// stays live as the fallback for unseen classes).
    pub fn observe_service_class_ns(&self, class: u64, ns: u64) {
        self.class_service.observe(class, ns);
        self.observe_service_ns(ns);
    }

    /// Current smoothed per-request service-time estimate (ns); 0 until
    /// the first observation.
    pub fn ewma_service_ns(&self) -> u64 {
        self.ewma_service_fp.load(Ordering::Relaxed) >> EWMA_FP_SHIFT
    }

    /// Per-class service estimate with the global EWMA as fallback — the
    /// number admission control prices a request of `class` at.
    pub fn service_estimate_ns(&self, class: u64) -> u64 {
        self.class_service
            .get(class)
            .unwrap_or_else(|| self.ewma_service_ns())
    }

    /// Records a batch execution of `n` requests.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Records one fused evaluation block: `n` requests whose coalition
    /// rows (`rows` total) shared a single `predict_block` call.
    pub fn record_fused_group(&self, n: usize, rows: usize) {
        self.fused_groups.fetch_add(1, Ordering::Relaxed);
        self.fused_requests.fetch_add(n as u64, Ordering::Relaxed);
        self.fused_rows.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Records a deadline-unmeetable reject for `class` (ages the class
    /// estimate) and returns the consecutive-reject streak — admission
    /// probes when the streak crosses its threshold.
    pub fn note_class_reject(&self, class: u64) -> u64 {
        self.class_service.note_reject(class)
    }

    /// Clears `class`'s reject streak after a successful feasibility pass.
    pub fn note_class_admit(&self, class: u64) {
        self.class_service.note_admit(class)
    }

    /// Snapshots everything into a serializable report.
    pub fn snapshot(&self) -> ServeStats {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let fused_groups = self.fused_groups.load(Ordering::Relaxed);
        let fused_rows = self.fused_rows.load(Ordering::Relaxed);
        let fused_target = self.fused_target_rows.load(Ordering::Relaxed);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline_unmeetable: self.rejected_deadline_unmeetable.load(Ordering::Relaxed),
            rejected_deadline_expired: self.rejected_deadline_expired.load(Ordering::Relaxed),
            rejected_unknown_model: self.rejected_unknown_model.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            explain_errors: self.explain_errors.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            batches,
            batched_requests: batched,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            max_batch: self.max_batch.load(Ordering::Relaxed),
            fused_groups,
            fused_requests: self.fused_requests.load(Ordering::Relaxed),
            fused_rows,
            fused_fill_ratio: if fused_groups == 0 || fused_target == 0 {
                0.0
            } else {
                fused_rows as f64 / (fused_groups * fused_target) as f64
            },
            dedup_rows_saved: self.dedup_rows_saved.load(Ordering::Relaxed),
            kernel: nfv_ml::soa::active_kernel_name().to_string(),
            single_flight_hits: self.single_flight_hits.load(Ordering::Relaxed),
            probe_admits: self.probe_admits.load(Ordering::Relaxed),
            quantized_hits: self.quantized_hits.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            refined_entries: self.refined_entries.load(Ordering::Relaxed),
            refine_dropped: self.refine_dropped.load(Ordering::Relaxed),
            // Cache occupancy lives in the cache, not the counters; the
            // engine overwrites these right after snapshotting.
            cache_hot_entries: 0,
            cache_cold_entries: 0,
            cache_hot_bytes: 0,
            cache_cold_bytes: 0,
            queue_wait_p50_us: self.queue_wait.quantile_us(0.50),
            queue_wait_p99_us: self.queue_wait.quantile_us(0.99),
            service_p50_us: self.service.quantile_us(0.50),
            service_p99_us: self.service.quantile_us(0.99),
            total_p50_us: self.total.quantile_us(0.50),
            total_p99_us: self.total.quantile_us(0.99),
            total_mean_us: self.total.mean_us(),
        }
    }
}

/// A serializable point-in-time view of the engine's counters and latency
/// distributions — what an operator dashboard would scrape.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests entering `explain`.
    pub submitted: u64,
    /// Requests answered with an attribution.
    pub completed: u64,
    /// Rejects: queue full.
    pub rejected_queue_full: u64,
    /// Rejects: deadline unmeetable at admission.
    pub rejected_deadline_unmeetable: u64,
    /// Rejects: deadline expired while queued.
    pub rejected_deadline_expired: u64,
    /// Rejects: unknown model.
    pub rejected_unknown_model: u64,
    /// Rejects: malformed request.
    pub rejected_invalid: u64,
    /// Explainer errors.
    pub explain_errors: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// hits / (hits + misses), 0 when no lookups.
    pub cache_hit_rate: f64,
    /// Batches executed.
    pub batches: u64,
    /// Requests explained inside batches.
    pub batched_requests: u64,
    /// batched_requests / batches.
    pub mean_batch_size: f64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Fused evaluation blocks executed.
    pub fused_groups: u64,
    /// Requests explained inside fused blocks.
    pub fused_requests: u64,
    /// Composite rows evaluated inside fused blocks.
    pub fused_rows: u64,
    /// Mean rows per fused group ÷ the configured row target — how well
    /// fused blocks fill toward the SoA pack breakeven (0 when fusion is
    /// off or no group has run).
    pub fused_fill_ratio: f64,
    /// Composite rows skipped by the fused-block adjacent-dedup pass
    /// (bit-identical to their predecessor; prediction reused).
    #[serde(default)]
    pub dedup_rows_saved: u64,
    /// The SoA traversal kernel this process has settled on
    /// (`"scalar"`/`"avx2"`/`"lane"`/`"avx512"`; `"auto"` before the first
    /// calibration; `"mixed"` in aggregates whose shards disagree).
    #[serde(default)]
    pub kernel: String,
    /// Requests answered by another request's in-flight computation.
    pub single_flight_hits: u64,
    /// Probe admissions past a possibly-stale class estimate.
    pub probe_admits: u64,
    /// Cache hits served from the quantized cold tier (subset of
    /// `cache_hits`, each with a typed error bound).
    #[serde(default)]
    pub quantized_hits: u64,
    /// Requests served a coarse anytime attribution instead of a
    /// queue-full rejection.
    #[serde(default)]
    pub degraded_served: u64,
    /// Coarse cache entries upgraded in place to full-budget results.
    #[serde(default)]
    pub refined_entries: u64,
    /// Refinement jobs dropped on a full refine queue.
    #[serde(default)]
    pub refine_dropped: u64,
    /// Live exact-tier cache entries.
    #[serde(default)]
    pub cache_hot_entries: u64,
    /// Live quantized-tier cache entries.
    #[serde(default)]
    pub cache_cold_entries: u64,
    /// Estimated exact-tier heap bytes.
    #[serde(default)]
    pub cache_hot_bytes: u64,
    /// Estimated quantized-tier heap bytes.
    #[serde(default)]
    pub cache_cold_bytes: u64,
    /// Queue-wait median, microseconds.
    pub queue_wait_p50_us: f64,
    /// Queue-wait 99th percentile, microseconds.
    pub queue_wait_p99_us: f64,
    /// Service-time median, microseconds.
    pub service_p50_us: f64,
    /// Service-time 99th percentile, microseconds.
    pub service_p99_us: f64,
    /// End-to-end median, microseconds.
    pub total_p50_us: f64,
    /// End-to-end 99th percentile, microseconds.
    pub total_p99_us: f64,
    /// End-to-end mean, microseconds.
    pub total_mean_us: f64,
}

impl ServeStats {
    /// Rolls per-shard snapshots up into one cluster-wide view.
    ///
    /// Counters sum; derived rates (`cache_hit_rate`, `mean_batch_size`)
    /// are recomputed from the summed raw counters; `fused_fill_ratio` is
    /// the group-weighted mean of per-shard ratios (every shard shares the
    /// same configured row target). Latency rollups are approximations —
    /// the raw histograms are not in the snapshot — chosen to stay honest
    /// for alerting: medians and means are completed-weighted averages of
    /// shard medians/means, and the cluster p99 is the *worst* shard p99
    /// (an upper bound; the true pooled p99 can only be lower).
    pub fn aggregate(shards: &[ServeStats]) -> ServeStats {
        let mut agg = ServeStats::default();
        let mut fill_weight = 0.0;
        for s in shards {
            agg.submitted += s.submitted;
            agg.completed += s.completed;
            agg.rejected_queue_full += s.rejected_queue_full;
            agg.rejected_deadline_unmeetable += s.rejected_deadline_unmeetable;
            agg.rejected_deadline_expired += s.rejected_deadline_expired;
            agg.rejected_unknown_model += s.rejected_unknown_model;
            agg.rejected_invalid += s.rejected_invalid;
            agg.explain_errors += s.explain_errors;
            agg.cache_hits += s.cache_hits;
            agg.cache_misses += s.cache_misses;
            agg.batches += s.batches;
            agg.batched_requests += s.batched_requests;
            agg.max_batch = agg.max_batch.max(s.max_batch);
            agg.fused_groups += s.fused_groups;
            agg.fused_requests += s.fused_requests;
            agg.fused_rows += s.fused_rows;
            fill_weight += s.fused_fill_ratio * s.fused_groups as f64;
            agg.dedup_rows_saved += s.dedup_rows_saved;
            if agg.kernel.is_empty() {
                agg.kernel = s.kernel.clone();
            } else if agg.kernel != s.kernel {
                agg.kernel = "mixed".to_string();
            }
            agg.single_flight_hits += s.single_flight_hits;
            agg.probe_admits += s.probe_admits;
            agg.quantized_hits += s.quantized_hits;
            agg.degraded_served += s.degraded_served;
            agg.refined_entries += s.refined_entries;
            agg.refine_dropped += s.refine_dropped;
            agg.cache_hot_entries += s.cache_hot_entries;
            agg.cache_cold_entries += s.cache_cold_entries;
            agg.cache_hot_bytes += s.cache_hot_bytes;
            agg.cache_cold_bytes += s.cache_cold_bytes;
            let w = s.completed as f64;
            agg.queue_wait_p50_us += s.queue_wait_p50_us * w;
            agg.service_p50_us += s.service_p50_us * w;
            agg.total_p50_us += s.total_p50_us * w;
            agg.total_mean_us += s.total_mean_us * w;
            agg.queue_wait_p99_us = agg.queue_wait_p99_us.max(s.queue_wait_p99_us);
            agg.service_p99_us = agg.service_p99_us.max(s.service_p99_us);
            agg.total_p99_us = agg.total_p99_us.max(s.total_p99_us);
        }
        let lookups = agg.cache_hits + agg.cache_misses;
        agg.cache_hit_rate = if lookups > 0 {
            agg.cache_hits as f64 / lookups as f64
        } else {
            0.0
        };
        agg.mean_batch_size = if agg.batches > 0 {
            agg.batched_requests as f64 / agg.batches as f64
        } else {
            0.0
        };
        agg.fused_fill_ratio = if agg.fused_groups > 0 {
            fill_weight / agg.fused_groups as f64
        } else {
            0.0
        };
        if agg.completed > 0 {
            let w = agg.completed as f64;
            agg.queue_wait_p50_us /= w;
            agg.service_p50_us /= w;
            agg.total_p50_us /= w;
            agg.total_mean_us /= w;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // Log buckets: the floor is within ~19% below the true quantile.
        assert!((380.0..=500.0).contains(&p50), "p50={p50}");
        assert!((780.0..=990.0).contains(&p99), "p99={p99}");
        assert!(p50 < p99);
        assert!((h.mean_us() - 500.5).abs() < 1.0);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0usize;
        for ns in [0u64, 1, 2, 3, 7, 8, 100, 1_000, 1_000_000, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(b >= last, "bucket({ns}) regressed");
            assert!(LatencyHistogram::bucket_floor(b) <= ns.max(1));
            last = b;
        }
    }

    #[test]
    fn ewma_converges_toward_observations() {
        let m = Metrics::new();
        assert_eq!(m.ewma_service_ns(), 0);
        m.observe_service_ns(8_000);
        assert_eq!(m.ewma_service_ns(), 8_000, "first sample seeds the EWMA");
        for _ in 0..64 {
            m.observe_service_ns(1_000);
        }
        let e = m.ewma_service_ns();
        assert!(e < 2_500, "ewma={e} should approach 1000");
    }

    #[test]
    fn ewma_tracks_tiny_service_times_without_stalling() {
        // Regression: the integer EWMA `cur − cur/8 + ns/8` truncated both
        // division terms to 0 once `cur < 8`, so the estimate could never
        // fall below ~7 ns no matter how many 1-ns samples arrived. The
        // fixed-point accumulator must drive it all the way down.
        let m = Metrics::new();
        m.observe_service_ns(10_000);
        for target in [4u64, 2, 1] {
            for _ in 0..512 {
                m.observe_service_ns(target);
            }
            let e = m.ewma_service_ns();
            assert!(
                e <= target + 1,
                "ewma={e} should have converged to ~{target} ns"
            );
        }
        // And it climbs back out of the tiny regime too.
        for _ in 0..512 {
            m.observe_service_ns(10_000);
        }
        assert!(m.ewma_service_ns() > 9_000);
    }

    #[test]
    fn class_table_separates_fast_and_slow_workloads() {
        let m = Metrics::new();
        m.observe_service_class_ns(7, 40_000);
        m.observe_service_class_ns(11, 10_000_000);
        assert_eq!(m.class_service.get(7), Some(40_000));
        assert_eq!(m.class_service.get(11), Some(10_000_000));
        assert_eq!(m.service_estimate_ns(7), 40_000);
        assert_eq!(m.service_estimate_ns(11), 10_000_000);
        // An unseen class falls back to the global blend, which sits
        // between the two extremes and would misprice both.
        let global = m.ewma_service_ns();
        assert!(global > 40_000 && global < 10_000_000, "global={global}");
        assert_eq!(m.service_estimate_ns(999), global);
        assert_eq!(m.class_service.get(999), None);
    }

    #[test]
    fn class_table_probes_past_collisions_and_survives_overflow() {
        let m = Metrics::new();
        // 1 and 65 land on the same home slot (mod 64); linear probing
        // must keep their EWMAs distinct.
        m.observe_service_class_ns(1, 100);
        m.observe_service_class_ns(65, 200);
        assert_eq!(m.class_service.get(1), Some(100));
        assert_eq!(m.class_service.get(65), Some(200));
        // Overfill the table: unplaced classes degrade to the fallback
        // instead of corrupting someone else's slot.
        for c in 1..=200u64 {
            m.observe_service_class_ns(c, 1_000);
        }
        let overflowed = (1..=200u64)
            .filter(|&c| m.class_service.get(c).is_none())
            .count();
        assert!(overflowed > 0, "200 classes into 64 slots must overflow");
        assert!(
            m.class_service.get(1).is_some(),
            "placed classes keep their slot"
        );
        assert!(m.service_estimate_ns(4242) > 0, "fallback keeps working");
    }

    #[test]
    fn stats_serialize_to_json() {
        let m = Metrics::new();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.record_batch(4);
        let snap = m.snapshot();
        assert_eq!(snap.cache_hit_rate, 0.5);
        assert_eq!(snap.max_batch, 4);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ServeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn stats_json_from_older_writers_still_parses() {
        // Fields added after the stats format first shipped are all
        // `#[serde(default)]`: a document written by an older shard (no
        // two-tier cache, no anytime counters) must deserialize with those
        // fields zeroed, not error. Simulate the old writer by stripping
        // the new keys from a fresh snapshot's JSON tree.
        let m = Metrics::new();
        m.submitted.fetch_add(2, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        let mut snap = m.snapshot();
        snap.quantized_hits = 7; // would survive a round trip; must not here
        let new_keys = [
            "quantized_hits",
            "degraded_served",
            "refined_entries",
            "refine_dropped",
            "cache_hot_entries",
            "cache_cold_entries",
            "cache_hot_bytes",
            "cache_cold_bytes",
        ];
        let mut tree = serde::Serialize::to_value(&snap);
        match &mut tree {
            serde::Value::Object(fields) => fields.retain(|(k, _)| !new_keys.contains(&k.as_str())),
            other => panic!("stats must serialize to an object, got {}", other.kind()),
        }
        let old_json = serde_json::to_string(&tree).unwrap();
        let back: ServeStats = serde_json::from_str(&old_json).unwrap();
        assert_eq!(back.submitted, snap.submitted);
        assert_eq!(back.cache_hits, snap.cache_hits);
        assert_eq!(back.quantized_hits, 0, "absent key reads as default");
        assert_eq!(back.cache_cold_bytes, 0);
    }

    #[test]
    fn reject_streaks_age_the_estimate_and_reset_on_admit() {
        let m = Metrics::new();
        m.observe_service_class_ns(9, 1_000_000);
        assert_eq!(m.class_service.get(9), Some(1_000_000));
        // Each reject bumps the streak and decays the estimate × 7/8.
        assert_eq!(m.note_class_reject(9), 1);
        assert_eq!(m.note_class_reject(9), 2);
        let aged = m.class_service.get(9).unwrap();
        let expect = 1_000_000u64 * 7 / 8 * 7 / 8;
        assert!(
            aged.abs_diff(expect) <= 2,
            "aged={aged}, expected ≈{expect}"
        );
        // An admit clears the streak; the next reject starts from 1.
        m.note_class_admit(9);
        assert_eq!(m.note_class_reject(9), 1);
        // Enough consecutive rejects drive any finite estimate toward 0,
        // so a poisoned class always becomes feasible again.
        for _ in 0..400 {
            m.note_class_reject(9);
        }
        assert_eq!(m.class_service.get(9), None, "estimate decayed to zero");
        // Rejects for a class the table never saw are harmless.
        m.note_class_admit(424_242);
    }

    #[test]
    fn fused_counters_roll_up_into_the_fill_ratio() {
        let m = Metrics::new();
        m.fused_target_rows.store(1024, Ordering::Relaxed);
        m.record_fused_group(4, 768);
        m.record_fused_group(8, 1280);
        let snap = m.snapshot();
        assert_eq!(snap.fused_groups, 2);
        assert_eq!(snap.fused_requests, 12);
        assert_eq!(snap.fused_rows, 2048);
        assert!((snap.fused_fill_ratio - 1.0).abs() < 1e-12);
        // Zero target (fusion off) never divides by zero.
        let off = Metrics::new();
        off.record_fused_group(2, 100);
        assert_eq!(off.snapshot().fused_fill_ratio, 0.0);
    }
}
