//! Two-tier sharded cache over finished explanations.
//!
//! Keys carry the model *version*, so a re-registered model can never serve
//! a stale entry — the old version's keys simply stop being asked for and
//! age out of the LRU (or are swept eagerly via [`ShardedCache::invalidate_model`]).
//!
//! Inputs are quantized onto a configurable grid before keying: two feature
//! vectors within the same grid cell share an explanation. The grid is part
//! of the engine config, so all keys in one engine agree.
//!
//! # Tiers
//!
//! The capacity frontier for this cache is **bytes, not latency** (the
//! exact hit path is already sub-µs), so each shard holds two LRUs:
//!
//! * a **hot tier** of exact `Arc<Attribution>` entries (f64, bit-identical
//!   to a direct explainer run), and
//! * a **cold tier** of the same attributions **quantized to i16 with a
//!   per-entry f32 scale** — roughly 4× more entries per byte. The measured
//!   max-abs dequantization error (≤ scale/2 by construction) is stored per
//!   entry and surfaced on every cold hit as
//!   [`Fidelity::Quantized`], never silently.
//!
//! Hot entries **demote** to the cold tier on LRU eviction instead of
//! dying; cold hits dequantize into a fresh attribution (they do *not*
//! repopulate the hot tier — only a full recompute restores exactness).
//! Attributions with non-finite values refuse quantization and die on
//! eviction instead of demoting. Cold entries are keyed by a 128-bit
//! fingerprint of the cache key (two independently-seeded FNV-1a folds),
//! not the key itself, so a cold slot costs tens of bytes even when the
//! key's quantized feature vector is large; feature names and the method
//! string are interned per (model, method) and shared across entries.
//!
//! Entries carry a fidelity **grade** (coarse anytime answers vs
//! full-budget answers). Inserts are monotone in the grade: a full-budget
//! result upgrades a coarse entry in place, a coarse result never
//! overwrites a full one.
//!
//! The cache also hosts **single-flight fill** ([`ShardedCache::begin_flight`]):
//! concurrent identical misses elect one leader to compute while followers
//! wait on the leader's result, so N simultaneous copies of a question cost
//! one model evaluation instead of N.

use crate::request::{fnv1a_bytes, fnv1a_words, fnv1a_words_alt, ExplainMethod, Fidelity};
use crossbeam::channel::{bounded, Receiver, Sender};
use nfv_xai::prelude::Attribution;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Cache identity of one explanation: model, version, method (with
/// budget), and the quantized input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry id of the model.
    pub model_id: String,
    /// Registry version the explanation was computed against.
    pub model_version: u64,
    /// Method + budget.
    pub method: ExplainMethod,
    /// Grid-quantized feature vector.
    pub qfeatures: Vec<i64>,
}

impl CacheKey {
    /// Builds a key, quantizing `features` onto `grid`. Returns `None`
    /// when any feature is non-finite or overflows the grid (such inputs
    /// must be rejected upstream, not cached).
    pub fn build(
        model_id: &str,
        model_version: u64,
        method: ExplainMethod,
        features: &[f64],
        grid: f64,
    ) -> Option<CacheKey> {
        let grid = if grid > 0.0 { grid } else { 1e-9 };
        let mut q = Vec::with_capacity(features.len());
        for &x in features {
            if !x.is_finite() {
                return None;
            }
            let cell = (x / grid).round();
            if cell.abs() >= i64::MAX as f64 {
                return None;
            }
            q.push(cell as i64);
        }
        Some(CacheKey {
            model_id: model_id.to_string(),
            model_version,
            method,
            qfeatures: q,
        })
    }

    /// A run-to-run stable content hash (FNV-1a): shard selection and
    /// per-request RNG seeds both derive from this, so it must not depend
    /// on process-local hasher state.
    pub fn stable_hash(&self) -> u64 {
        let (mtag, mbudget) = self.method.hash_parts();
        let id_hash = fnv1a_bytes(self.model_id.as_bytes());
        fnv1a_words(
            [id_hash, self.model_version, mtag, mbudget]
                .into_iter()
                .chain(self.qfeatures.iter().map(|&v| v as u64)),
        )
    }

    /// The 128-bit cold-tier key: [`CacheKey::stable_hash`] in the low
    /// half, an independently-seeded second FNV-1a fold in the high half.
    /// A cold-tier false hit requires both 64-bit hashes to collide at
    /// once.
    pub fn fingerprint(&self) -> u128 {
        let (mtag, mbudget) = self.method.hash_parts();
        let id_hash = fnv1a_bytes(self.model_id.as_bytes());
        let hi = fnv1a_words_alt(
            [id_hash, self.model_version, mtag, mbudget]
                .into_iter()
                .chain(self.qfeatures.iter().map(|&v| v as u64)),
        );
        ((hi as u128) << 64) | self.stable_hash() as u128
    }
}

/// Slab index sentinel.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// One LRU: a hash map into a slab whose slots form an intrusive
/// doubly-linked recency list. All operations are O(1). Generic over key
/// and value so the hot tier (`CacheKey` → exact entry) and the cold tier
/// (`u128` fingerprint → quantized entry) share one implementation.
#[derive(Debug)]
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Hit lookup: refreshes recency.
    fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        self.slots[i].value.as_ref()
    }

    /// Recency-neutral lookup (grade checks, stats).
    fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&i| self.slots[i].value.as_ref())
    }

    /// Inserts (or refreshes) `key`. Returns the evicted LRU victim when
    /// the insert pushed one out — the caller decides its afterlife
    /// (demotion to a colder tier, or death). A zero-capacity shard
    /// "evicts" the incoming pair immediately.
    fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = Some(value);
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.slots[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
            self.slots[victim].value.take().map(|v| (old_key, v))
        } else {
            None
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Removes `key`, returning its value.
    fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        self.slots[i].value.take()
    }

    /// Drops every entry failing `keep`.
    fn retain<F: Fn(&K, &V) -> bool>(&mut self, keep: F) {
        let victims: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, &i)| match self.slots[i].value.as_ref() {
                Some(v) => !keep(k, v),
                None => true,
            })
            .map(|(_, &i)| i)
            .collect();
        for i in victims {
            self.unlink(i);
            let k = self.slots[i].key.clone();
            self.map.remove(&k);
            self.slots[i].value = None;
            self.free.push(i);
        }
    }

    /// Visits every live entry (stats; order unspecified).
    fn for_each<F: FnMut(&K, &V)>(&self, mut f: F) {
        for (k, &i) in &self.map {
            if let Some(v) = self.slots[i].value.as_ref() {
                f(k, v);
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// One exact-tier entry: the attribution plus its sampling-budget grade.
#[derive(Debug)]
struct HotEntry {
    attr: Arc<Attribution>,
    /// 0 = full budget; otherwise the coarse anytime budget it was
    /// computed at (surfaced as [`Fidelity::Coarse`] on hits).
    coarse_budget: u64,
}

/// Feature names + method string shared by every cold entry of one
/// (model, method) pair — interned so a cold slot doesn't pay for them.
#[derive(Debug, PartialEq, Eq)]
struct ColdMeta {
    names: Vec<String>,
    method: String,
}

impl ColdMeta {
    fn intern_hash(&self) -> u64 {
        let mut h = fnv1a_bytes(self.method.as_bytes());
        for n in &self.names {
            h = fnv1a_words([h, fnv1a_bytes(n.as_bytes())]);
        }
        h
    }
}

/// One quantized cold-tier entry: i16 values with a per-entry f32 scale.
/// `base_value` and `prediction` stay exact f64 (they're two words; the
/// savings live in the values vector).
#[derive(Debug)]
struct ColdEntry {
    meta: Arc<ColdMeta>,
    values: Box<[i16]>,
    scale: f32,
    /// Measured max-abs dequantization error for this entry (≤ scale/2).
    max_abs_err: f64,
    base_value: f64,
    prediction: f64,
    /// 0 = full budget (see [`HotEntry::coarse_budget`]).
    coarse_budget: u64,
    /// `fnv1a_bytes(model_id)` — lets [`ShardedCache::invalidate_model`]
    /// sweep cold entries without storing the id string per entry.
    id_hash: u64,
}

impl ColdEntry {
    fn dequantize(&self) -> Attribution {
        let s = self.scale as f64;
        Attribution {
            names: self.meta.names.clone(),
            values: self.values.iter().map(|&q| q as f64 * s).collect(),
            base_value: self.base_value,
            prediction: self.prediction,
            method: self.meta.method.clone(),
        }
    }

    fn fidelity(&self) -> Fidelity {
        if self.coarse_budget == 0 {
            Fidelity::Quantized {
                max_abs_err: self.max_abs_err,
            }
        } else {
            Fidelity::CoarseQuantized {
                sample_budget: self.coarse_budget,
                max_abs_err: self.max_abs_err,
            }
        }
    }
}

/// Quantizes `values` to i16 with one shared f32 scale. Returns the cells,
/// the scale, and the **measured** max-abs reconstruction error (≤ scale/2
/// by construction). `None` when any value is non-finite or so large the
/// f32 scale would overflow — such attributions must stay in the exact
/// tier or die.
fn quantize(values: &[f64]) -> Option<(Box<[i16]>, f32, f64)> {
    let mut max_abs = 0.0f64;
    for &v in values {
        if !v.is_finite() {
            return None;
        }
        max_abs = max_abs.max(v.abs());
    }
    // Scale so the largest magnitude maps to ±i16::MAX. Computed in f32
    // (that's all we store), then nudged up a ULP at a time until
    // max_abs/scale is in range — cast rounding may otherwise land the
    // extreme cell on 32768. The nudge loop runs at most a few steps.
    let mut scale = (max_abs / i16::MAX as f64) as f32;
    if scale == 0.0 {
        // Underflow: all values are (sub)denormally tiny. The smallest
        // positive f32 still represents them to within half a cell.
        scale = f32::from_bits(1);
    }
    if !scale.is_finite() {
        // max_abs/32767 overflows f32 (|v| ≳ 1.1e43): unquantizable.
        return None;
    }
    while max_abs / scale as f64 > i16::MAX as f64 {
        scale = f32::from_bits(scale.to_bits() + 1);
    }
    let s = scale as f64;
    let mut cells = Vec::with_capacity(values.len());
    let mut err = 0.0f64;
    for &v in values {
        let cell = (v / s).round();
        debug_assert!(cell.abs() <= i16::MAX as f64);
        let q = cell as i16;
        cells.push(q);
        err = err.max((q as f64 * s - v).abs());
    }
    debug_assert!(err <= s * 0.5 * (1.0 + 1e-9), "err {err} > scale/2 {s}");
    Some((cells.into_boxed_slice(), scale, err))
}

/// Approximate heap footprint of one hot entry (key + exact attribution).
fn hot_entry_bytes(key: &CacheKey, attr: &Attribution) -> usize {
    let key_bytes = key.model_id.len() + key.qfeatures.len() * 8 + 64;
    let name_bytes: usize = attr.names.iter().map(|n| n.len() + 24).sum();
    key_bytes + name_bytes + attr.method.len() + attr.values.len() * 8 + 96
}

/// Approximate heap footprint of one cold entry (fingerprint key +
/// quantized values; the interned meta is shared and counted once per
/// model/method pair, not per entry).
fn cold_entry_bytes(e: &ColdEntry) -> usize {
    16 + e.values.len() * 2 + 64
}

/// Entry/byte usage of the cache, per tier. Byte counts are the same
/// deterministic estimates the capacity experiments use (allocator
/// overhead is not modeled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheUsage {
    /// Live exact-tier entries.
    pub hot_entries: usize,
    /// Live quantized-tier entries.
    pub cold_entries: usize,
    /// Estimated exact-tier heap bytes.
    pub hot_bytes: usize,
    /// Estimated quantized-tier heap bytes.
    pub cold_bytes: usize,
}

impl CacheUsage {
    /// Total entries across both tiers.
    pub fn entries(&self) -> usize {
        self.hot_entries + self.cold_entries
    }

    /// Total estimated bytes across both tiers.
    pub fn bytes(&self) -> usize {
        self.hot_bytes + self.cold_bytes
    }
}

/// One shard: a hot exact LRU and a cold quantized LRU behind one mutex.
#[derive(Debug)]
struct TierShard {
    hot: LruShard<CacheKey, HotEntry>,
    cold: LruShard<u128, ColdEntry>,
}

impl TierShard {
    /// Grade (0 = coarse, 1 = full) of whatever the shard currently holds
    /// for `key`, in either tier.
    fn grade_of(&self, key: &CacheKey, fp: u128) -> Option<u8> {
        if let Some(e) = self.hot.peek(key) {
            return Some((e.coarse_budget == 0) as u8);
        }
        self.cold.peek(&fp).map(|e| (e.coarse_budget == 0) as u8)
    }

    /// Demotes an evicted hot entry into the cold tier (monotone: never
    /// clobbers a higher-grade cold entry; non-finite values die here).
    fn demote(&mut self, key: CacheKey, entry: HotEntry, intern: &MetaIntern) {
        let fp = key.fingerprint();
        let victim_grade = (entry.coarse_budget == 0) as u8;
        if let Some(existing) = self.cold.peek(&fp) {
            if (existing.coarse_budget == 0) as u8 > victim_grade {
                return;
            }
        }
        let Some((values, scale, max_abs_err)) = quantize(&entry.attr.values) else {
            return;
        };
        let meta = intern.intern(&entry.attr);
        self.cold.insert(
            fp,
            ColdEntry {
                meta,
                values,
                scale,
                max_abs_err,
                base_value: entry.attr.base_value,
                prediction: entry.attr.prediction,
                coarse_budget: entry.coarse_budget,
                id_hash: fnv1a_bytes(key.model_id.as_bytes()),
            },
        );
    }

    fn insert(
        &mut self,
        key: CacheKey,
        attr: Arc<Attribution>,
        coarse_budget: u64,
        intern: &MetaIntern,
    ) {
        let fp = key.fingerprint();
        let new_grade = (coarse_budget == 0) as u8;
        if let Some(existing) = self.grade_of(&key, fp) {
            if existing > new_grade {
                return; // never downgrade an entry in place
            }
        }
        // The hot copy (inserted below) supersedes any cold copy.
        self.cold.remove(&fp);
        if let Some((vk, vv)) = self.hot.insert(
            key,
            HotEntry {
                attr,
                coarse_budget,
            },
        ) {
            self.demote(vk, vv, intern);
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<(Arc<Attribution>, Fidelity)> {
        if let Some(e) = self.hot.get(key) {
            let fid = if e.coarse_budget == 0 {
                Fidelity::Exact
            } else {
                Fidelity::Coarse {
                    sample_budget: e.coarse_budget,
                }
            };
            return Some((Arc::clone(&e.attr), fid));
        }
        let e = self.cold.get(&key.fingerprint())?;
        Some((Arc::new(e.dequantize()), e.fidelity()))
    }

    fn usage(&self) -> CacheUsage {
        let mut u = CacheUsage {
            hot_entries: self.hot.len(),
            cold_entries: self.cold.len(),
            ..CacheUsage::default()
        };
        self.hot
            .for_each(|k, e| u.hot_bytes += hot_entry_bytes(k, &e.attr));
        self.cold
            .for_each(|_, e| u.cold_bytes += cold_entry_bytes(e));
        u
    }
}

/// Intern table for cold-entry metadata (names + method string), shared
/// across shards. Lock order: shard mutex → intern mutex, never reversed.
#[derive(Debug, Default)]
struct MetaIntern {
    table: Mutex<HashMap<u64, Arc<ColdMeta>>>,
}

impl MetaIntern {
    fn intern(&self, attr: &Attribution) -> Arc<ColdMeta> {
        let fresh = ColdMeta {
            names: attr.names.clone(),
            method: attr.method.clone(),
        };
        let h = fresh.intern_hash();
        let mut table = self.table.lock();
        if let Some(m) = table.get(&h) {
            if **m == fresh {
                return Arc::clone(m);
            }
            // Hash collision between distinct metas: serve the fresh one
            // un-interned rather than corrupt either.
            return Arc::new(fresh);
        }
        let m = Arc::new(fresh);
        table.insert(h, Arc::clone(&m));
        m
    }
}

/// Outcome of [`ShardedCache::begin_flight`] for one cache miss.
pub enum Flight {
    /// No identical computation is in flight: this caller computes the
    /// explanation and **must** eventually call
    /// [`ShardedCache::complete_flight`] (with `None` on failure) so
    /// followers are released.
    Leader,
    /// An identical computation is already running; wait on the receiver
    /// for the leader's result (`None` = the leader failed or aborted —
    /// fall back to computing normally). The fidelity rides along so a
    /// coarse anytime leader never releases followers with an unmarked
    /// answer.
    Follower(Receiver<Option<(Arc<Attribution>, Fidelity)>>),
}

// Manual impl: the vendored channel handles don't implement `Debug`.
impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Flight::Leader => "Flight::Leader",
            Flight::Follower(_) => "Flight::Follower",
        })
    }
}

/// The concurrent cache: `n_shards` independent two-tier shards, each
/// behind its own mutex, selected by the key's stable hash. Lock hold
/// times are a map probe plus two list splices (plus one dequantization
/// pass on cold hits). A side table tracks in-flight fills for
/// single-flight deduplication of concurrent identical misses.
pub struct ShardedCache {
    shards: Vec<Mutex<TierShard>>,
    intern: MetaIntern,
    /// Keys being computed right now → waiting followers. Small (bounded
    /// by in-flight requests), so one mutex suffices.
    #[allow(clippy::type_complexity)]
    in_flight: Mutex<HashMap<CacheKey, Vec<Sender<Option<(Arc<Attribution>, Fidelity)>>>>>,
}

impl ShardedCache {
    /// Builds a cache of exactly `capacity` hot (exact) entries and
    /// `cold_capacity` cold (quantized) entries, spread over `n_shards`
    /// shards. The per-shard slices sum to the requested totals exactly:
    /// each shard gets `capacity / n` with the remainder distributed one
    /// entry apiece to the first `capacity % n` shards. `n_shards` is
    /// clamped so every shard holds at least one hot entry.
    /// `cold_capacity == 0` disables the quantized tier (evicted hot
    /// entries die, as before the tier existed).
    pub fn new(capacity: usize, cold_capacity: usize, n_shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = n_shards.clamp(1, 1024).min(capacity);
        let slice = |total: usize, i: usize| total / n_shards + usize::from(i < total % n_shards);
        ShardedCache {
            shards: (0..n_shards)
                .map(|i| {
                    Mutex::new(TierShard {
                        hot: LruShard::new(slice(capacity, i)),
                        cold: LruShard::new(slice(cold_capacity, i)),
                    })
                })
                .collect(),
            intern: MetaIntern::default(),
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    /// Registers interest in computing `key` after a cache miss. The first
    /// caller becomes the [`Flight::Leader`]; concurrent callers become
    /// [`Flight::Follower`]s holding a receiver for the leader's result.
    ///
    /// The leader (whoever ends up computing the key — the worker calls
    /// [`ShardedCache::complete_flight`] unconditionally after every job)
    /// releases the followers. A leader that aborts before enqueueing must
    /// call `complete_flight(key, None)` itself.
    pub fn begin_flight(&self, key: &CacheKey) -> Flight {
        let mut table = self.in_flight.lock();
        match table.get_mut(key) {
            Some(waiters) => {
                let (tx, rx) = bounded(1);
                waiters.push(tx);
                Flight::Follower(rx)
            }
            None => {
                table.insert(key.clone(), Vec::new());
                Flight::Leader
            }
        }
    }

    /// Resolves an in-flight fill: removes `key` from the flight table and
    /// sends `result` to every waiting follower (`None` = compute failed;
    /// followers fall back to their own computation). A no-op when no
    /// flight is registered, so workers may call it unconditionally.
    pub fn complete_flight(&self, key: &CacheKey, result: Option<(Arc<Attribution>, Fidelity)>) {
        let waiters = self.in_flight.lock().remove(key);
        if let Some(waiters) = waiters {
            for tx in waiters {
                let _ = tx.send(result.clone());
            }
        }
    }

    /// Keys currently being computed (test/introspection hook).
    pub fn flights_in_progress(&self) -> usize {
        self.in_flight.lock().len()
    }
}

// Manual impl: the flight table's channel senders aren't `Debug`.
impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("flights_in_progress", &self.flights_in_progress())
            .finish()
    }
}

impl ShardedCache {
    fn shard(&self, key: &CacheKey) -> &Mutex<TierShard> {
        // High bits: FNV's low bits are the most mixed, but keep it simple
        // and uniform by folding.
        let h = key.stable_hash();
        let idx = (h ^ (h >> 32)) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks `key` up, refreshing its recency on hit. Hot hits return the
    /// shared exact attribution; cold hits dequantize into a fresh one and
    /// carry the entry's measured error bound in the fidelity.
    pub fn get(&self, key: &CacheKey) -> Option<(Arc<Attribution>, Fidelity)> {
        self.shard(key).lock().get(key)
    }

    /// Inserts (or refreshes) `key` with a full-budget result.
    pub fn insert(&self, key: CacheKey, value: Arc<Attribution>) {
        self.insert_graded(key, value, 0);
    }

    /// Inserts `key` with an explicit sampling-budget grade
    /// (`coarse_budget == 0` = full budget). Monotone: a coarse result
    /// never overwrites a full-budget entry, in either tier; a full-budget
    /// result upgrades a coarse entry in place (same key).
    pub fn insert_graded(&self, key: CacheKey, value: Arc<Attribution>, coarse_budget: u64) {
        self.shard(&key)
            .lock()
            .insert(key, value, coarse_budget, &self.intern);
    }

    /// Grade of the entry currently cached for `key` (0 = coarse, 1 =
    /// full), without refreshing recency. `None` on miss. The refiner uses
    /// this to skip work another path already upgraded.
    pub fn entry_grade(&self, key: &CacheKey) -> Option<u8> {
        let fp = key.fingerprint();
        self.shard(key).lock().grade_of(key, fp)
    }

    /// Eagerly drops every entry belonging to `model_id` (all versions,
    /// both tiers). Version-carrying keys already make stale hits
    /// impossible; this just reclaims their space immediately on
    /// deregistration.
    pub fn invalidate_model(&self, model_id: &str) {
        let id_hash = fnv1a_bytes(model_id.as_bytes());
        for s in &self.shards {
            let mut s = s.lock();
            s.hot.retain(|k, _| k.model_id != model_id);
            s.cold.retain(|_, e| e.id_hash != id_hash);
        }
    }

    /// Total entries across shards and tiers.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.hot.len() + s.cold.len()
            })
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-tier entry and byte usage, aggregated across shards.
    pub fn usage(&self) -> CacheUsage {
        let mut total = CacheUsage::default();
        for s in &self.shards {
            let u = s.lock().usage();
            total.hot_entries += u.hot_entries;
            total.cold_entries += u.cold_entries;
            total.hot_bytes += u.hot_bytes;
            total.cold_bytes += u.cold_bytes;
        }
        total
    }

    /// Estimated heap bytes across both tiers (see [`CacheUsage`]).
    pub fn bytes_used(&self) -> usize {
        self.usage().bytes()
    }

    /// Exact-tier capacity: the per-shard slices sum to the value passed
    /// to [`ShardedCache::new`].
    pub fn hot_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().hot.capacity).sum()
    }

    /// Quantized-tier capacity (0 = tier disabled).
    pub fn cold_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().cold.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn attr(v: f64) -> Arc<Attribution> {
        Arc::new(Attribution {
            names: vec!["f".into()],
            values: vec![v],
            base_value: 0.0,
            prediction: v,
            method: "test".into(),
        })
    }

    fn key(version: u64, x: f64) -> CacheKey {
        CacheKey::build("m", version, ExplainMethod::TreeShap, &[x], 1e-6).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s: LruShard<CacheKey, Arc<Attribution>> = LruShard::new(2);
        s.insert(key(1, 1.0), attr(1.0));
        s.insert(key(1, 2.0), attr(2.0));
        // Touch 1.0 so 2.0 becomes the LRU victim.
        assert!(s.get(&key(1, 1.0)).is_some());
        let evicted = s.insert(key(1, 3.0), attr(3.0));
        assert_eq!(evicted.unwrap().0, key(1, 2.0), "2.0 evicted and returned");
        assert!(s.get(&key(1, 2.0)).is_none());
        assert!(s.get(&key(1, 1.0)).is_some());
        assert!(s.get(&key(1, 3.0)).is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut s: LruShard<CacheKey, Arc<Attribution>> = LruShard::new(2);
        for i in 0..100 {
            s.insert(key(1, i as f64), attr(i as f64));
        }
        assert_eq!(s.len(), 2);
        assert!(s.slots.len() <= 3, "slab bounded: {}", s.slots.len());
        // remove() frees the slot for reuse too.
        assert!(s.remove(&key(1, 99.0)).is_some());
        assert!(s.remove(&key(1, 99.0)).is_none());
        s.insert(key(1, 200.0), attr(200.0));
        assert_eq!(s.len(), 2);
        assert!(s.slots.len() <= 3);
    }

    #[test]
    fn zero_capacity_shard_rejects_inserts() {
        let mut s: LruShard<u64, u64> = LruShard::new(0);
        assert_eq!(s.insert(1, 10), Some((1, 10)), "bounced straight back");
        assert_eq!(s.len(), 0);
        assert!(s.get(&1).is_none());
    }

    #[test]
    fn version_is_part_of_identity() {
        let c = ShardedCache::new(16, 0, 4);
        c.insert(key(1, 5.0), attr(10.0));
        assert!(c.get(&key(1, 5.0)).is_some());
        assert!(
            c.get(&key(2, 5.0)).is_none(),
            "newer version must miss, never see v1's entry"
        );
    }

    #[test]
    fn quantization_merges_near_inputs_and_rejects_nonfinite() {
        let a = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[1.0000001], 1e-3).unwrap();
        let b = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[0.9999999], 1e-3).unwrap();
        assert_eq!(a, b);
        let far = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[1.1], 1e-3).unwrap();
        assert_ne!(a, far);
        assert!(CacheKey::build("m", 1, ExplainMethod::TreeShap, &[f64::NAN], 1e-3).is_none());
        assert!(
            CacheKey::build("m", 1, ExplainMethod::TreeShap, &[1e300], 1e-9).is_none(),
            "grid overflow"
        );
    }

    #[test]
    fn signed_zero_features_share_a_key() {
        // ±0.0 quantize to the same grid cell: the sign of zero must never
        // split an input into two cache identities.
        let pos = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[0.0], 1e-3).unwrap();
        let neg = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[-0.0], 1e-3).unwrap();
        assert_eq!(pos, neg);
        assert_eq!(pos.stable_hash(), neg.stable_hash());
        assert_eq!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn capacity_split_sums_exactly() {
        // Satellite fix: div_ceil-per-shard used to let the total exceed
        // the requested capacity by up to n_shards-1.
        for (cap, cold, shards) in [
            (10, 40, 4),
            (7, 13, 8),
            (1, 0, 8),
            (4096, 16384, 8),
            (3, 5, 1024),
            (0, 0, 4),
        ] {
            let c = ShardedCache::new(cap, cold, shards);
            assert_eq!(
                c.hot_capacity(),
                cap.max(1),
                "hot cap={cap} shards={shards}"
            );
            assert_eq!(c.cold_capacity(), cold, "cold cap={cold} shards={shards}");
        }
    }

    #[test]
    fn fingerprint_halves_are_independent() {
        let k = key(1, 5.0);
        let fp = k.fingerprint();
        assert_eq!(fp as u64, k.stable_hash(), "low half is the stable hash");
        assert_ne!((fp >> 64) as u64, fp as u64);
        assert_ne!(key(1, 5.0).fingerprint(), key(1, 6.0).fingerprint());
        assert_ne!(key(1, 5.0).fingerprint(), key(2, 5.0).fingerprint());
    }

    #[test]
    fn evicted_hot_entries_demote_to_cold_with_bounded_error() {
        // One shard, one hot slot, room in cold: every eviction demotes.
        let c = ShardedCache::new(1, 8, 1);
        let make = |x: f64| {
            Arc::new(Attribution {
                names: vec!["a".into(), "b".into()],
                values: vec![x, -x / 3.0],
                base_value: 1.5,
                prediction: x,
                method: "test".into(),
            })
        };
        c.insert(key(1, 1.0), make(0.25));
        c.insert(key(1, 2.0), make(0.5)); // evicts 1.0 → cold
        let (got, fid) = c.get(&key(1, 1.0)).expect("demoted, not dead");
        match fid {
            Fidelity::Quantized { max_abs_err } => {
                assert!(max_abs_err >= 0.0);
                for (g, want) in got.values.iter().zip([0.25, -0.25 / 3.0]) {
                    assert!(
                        (g - want).abs() <= max_abs_err,
                        "dequant {g} vs {want} exceeds reported bound {max_abs_err}"
                    );
                }
            }
            other => panic!("cold hit must be marked Quantized, got {other:?}"),
        }
        assert_eq!(got.base_value, 1.5, "base value stays exact");
        assert_eq!(got.prediction, 0.25, "prediction stays exact");
        assert_eq!(got.names, vec!["a".to_string(), "b".to_string()]);
        // The hot entry is exact.
        let (_, fid) = c.get(&key(1, 2.0)).unwrap();
        assert!(fid.is_exact());
        let u = c.usage();
        assert_eq!((u.hot_entries, u.cold_entries), (1, 1));
        assert!(u.hot_bytes > 0 && u.cold_bytes > 0);
        assert!(
            u.cold_bytes < u.hot_bytes,
            "a cold entry must be smaller than a hot one"
        );
    }

    #[test]
    fn cold_hits_do_not_repromote() {
        let c = ShardedCache::new(1, 8, 1);
        c.insert(key(1, 1.0), attr(0.25));
        c.insert(key(1, 2.0), attr(0.5)); // demotes 1.0
        for _ in 0..3 {
            let (_, fid) = c.get(&key(1, 1.0)).unwrap();
            assert!(
                matches!(fid, Fidelity::Quantized { .. }),
                "cold hits stay cold (exactness only returns via recompute)"
            );
        }
        let u = c.usage();
        assert_eq!((u.hot_entries, u.cold_entries), (1, 1));
    }

    #[test]
    fn full_insert_restores_exactness_and_drops_cold_copy() {
        let c = ShardedCache::new(1, 8, 1);
        c.insert(key(1, 1.0), attr(0.25));
        c.insert(key(1, 2.0), attr(0.5)); // 1.0 → cold
        c.insert(key(1, 1.0), attr(0.25)); // recompute → hot again, cold copy dropped
        let (_, fid) = c.get(&key(1, 1.0)).unwrap();
        assert!(fid.is_exact());
        let u = c.usage();
        assert_eq!(u.cold_entries, 1, "2.0 demoted; 1.0's cold copy removed");
    }

    #[test]
    fn nonfinite_attributions_refuse_quantization() {
        let c = ShardedCache::new(1, 8, 1);
        c.insert(key(1, 1.0), attr(f64::NAN));
        // NaN entry lives in the hot (exact) tier…
        let (got, fid) = c.get(&key(1, 1.0)).unwrap();
        assert!(got.values[0].is_nan() && fid.is_exact());
        // …but dies on eviction instead of demoting.
        c.insert(key(1, 2.0), attr(0.5));
        assert!(
            c.get(&key(1, 1.0)).is_none(),
            "NaN must not enter cold tier"
        );
        assert_eq!(c.usage().cold_entries, 0);
        // Same for infinities.
        c.insert(key(1, 3.0), attr(f64::INFINITY));
        c.insert(key(1, 4.0), attr(1.0));
        assert!(c.get(&key(1, 3.0)).is_none());
    }

    #[test]
    fn coarse_entries_upgrade_monotonically() {
        let c = ShardedCache::new(4, 8, 1);
        let k = key(1, 1.0);
        c.insert_graded(k.clone(), attr(0.9), 64); // coarse anytime answer
        let (_, fid) = c.get(&k).unwrap();
        assert_eq!(fid, Fidelity::Coarse { sample_budget: 64 });
        assert_eq!(c.entry_grade(&k), Some(0));
        // Full-budget refinement upgrades in place…
        c.insert(k.clone(), attr(1.0));
        let (got, fid) = c.get(&k).unwrap();
        assert!(fid.is_exact());
        assert_eq!(got.prediction, 1.0);
        assert_eq!(c.entry_grade(&k), Some(1));
        // …and a late coarse result can never downgrade it back.
        c.insert_graded(k.clone(), attr(0.9), 64);
        let (got, fid) = c.get(&k).unwrap();
        assert!(fid.is_exact(), "coarse must not overwrite full");
        assert_eq!(got.prediction, 1.0);
    }

    #[test]
    fn coarse_grade_survives_demotion_and_blocks_stale_writes() {
        let c = ShardedCache::new(1, 8, 1);
        let k = key(1, 1.0);
        c.insert_graded(k.clone(), attr(0.9), 64);
        c.insert(key(1, 2.0), attr(0.5)); // demote the coarse entry
        let (_, fid) = c.get(&k).unwrap();
        assert_eq!(
            fid,
            Fidelity::CoarseQuantized {
                sample_budget: 64,
                max_abs_err: fid.max_abs_err()
            },
            "demoted coarse entry carries both markers"
        );
        // Full insert upgrades the (now cold) entry back to exact hot.
        c.insert(k.clone(), attr(1.0));
        let (_, fid) = c.get(&k).unwrap();
        assert!(fid.is_exact());
        // A cold full entry also blocks coarse overwrites.
        c.insert(key(1, 3.0), attr(0.7)); // demote k's full entry to cold
        c.insert_graded(k.clone(), attr(0.9), 64);
        let (_, fid) = c.get(&k).unwrap();
        assert_eq!(fid.grade(), 1, "cold full entry blocks coarse overwrite");
    }

    #[test]
    fn cold_tier_disabled_means_evictions_die() {
        let c = ShardedCache::new(1, 0, 1);
        c.insert(key(1, 1.0), attr(1.0));
        c.insert(key(1, 2.0), attr(2.0));
        assert!(c.get(&key(1, 1.0)).is_none(), "no cold tier to land in");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn meta_interning_shares_names_across_entries() {
        let c = ShardedCache::new(1, 16, 1);
        for i in 0..8 {
            c.insert(key(1, i as f64), attr(i as f64));
        }
        assert_eq!(c.usage().cold_entries, 7);
        assert_eq!(
            c.intern.table.lock().len(),
            1,
            "one (names, method) pair interned once"
        );
    }

    #[test]
    fn single_flight_elects_one_leader_and_releases_followers() {
        let c = ShardedCache::new(16, 0, 2);
        let k = key(1, 4.0);
        assert!(matches!(c.begin_flight(&k), Flight::Leader));
        let followers: Vec<_> = (0..3)
            .map(|_| match c.begin_flight(&k) {
                Flight::Follower(rx) => rx,
                Flight::Leader => panic!("second caller must not lead"),
            })
            .collect();
        assert_eq!(c.flights_in_progress(), 1);
        c.complete_flight(&k, Some((attr(42.0), Fidelity::Exact)));
        for rx in followers {
            let (got, fid) = rx.recv().unwrap().expect("leader succeeded");
            assert_eq!(got.prediction, 42.0);
            assert!(fid.is_exact());
        }
        assert_eq!(c.flights_in_progress(), 0);
        // The key is free again: a new leader can be elected.
        assert!(matches!(c.begin_flight(&k), Flight::Leader));
        // Aborting releases followers with None.
        let rx = match c.begin_flight(&k) {
            Flight::Follower(rx) => rx,
            Flight::Leader => panic!(),
        };
        c.complete_flight(&k, None);
        assert!(rx.recv().unwrap().is_none(), "abort = None to followers");
        // Completing an unregistered key is a harmless no-op.
        c.complete_flight(&key(1, 99.0), None);
    }

    #[test]
    fn invalidate_model_sweeps_all_versions_and_both_tiers() {
        let c = ShardedCache::new(4, 64, 4);
        for v in 1..=3 {
            for i in 0..5 {
                c.insert(key(v, i as f64), attr(i as f64));
            }
        }
        assert!(
            c.usage().cold_entries > 0,
            "small hot tier forced demotions"
        );
        let other = CacheKey::build("other", 9, ExplainMethod::TreeShap, &[1.0], 1e-6).unwrap();
        c.insert(other.clone(), attr(7.0));
        c.invalidate_model("m");
        assert_eq!(c.len(), 1);
        assert!(c.get(&other).is_some());
        assert_eq!(c.usage().cold_entries, 0, "cold tier swept by id hash");
    }

    #[test]
    fn quantize_error_is_within_half_scale() {
        let (cells, scale, err) = quantize(&[1.0, -0.3333333, 1e-9, 0.0]).unwrap();
        assert_eq!(cells.len(), 4);
        assert!(err <= scale as f64 * 0.5 * (1.0 + 1e-9), "{err} vs {scale}");
        // All-zero vectors quantize losslessly.
        let (cells, _, err) = quantize(&[0.0, -0.0]).unwrap();
        assert!(cells.iter().all(|&q| q == 0) && err == 0.0);
        // Non-finite refuses.
        assert!(quantize(&[1.0, f64::NAN]).is_none());
        assert!(quantize(&[f64::INFINITY]).is_none());
        assert!(quantize(&[f64::NEG_INFINITY, 0.0]).is_none());
    }

    proptest! {
        /// Satellite: the quantize/dequantize round trip respects the
        /// reported bound for arbitrary finite inputs across magnitudes
        /// (subnormals through 1e300), and the bound itself is ≤ scale/2.
        #[test]
        fn prop_quantize_round_trip(
            raw in proptest::collection::vec(-1e300f64..1e300, 1..64),
            exponent in -300i32..300,
        ) {
            let scale_in = 10f64.powi(exponent);
            let values: Vec<f64> = raw.iter().map(|v| v * scale_in)
                .filter(|v| v.is_finite())
                .collect();
            prop_assume!(!values.is_empty());
            match quantize(&values) {
                Some((cells, scale, err)) => {
                    prop_assert!(err <= scale as f64 * 0.5 * (1.0 + 1e-9));
                    for (&q, &v) in cells.iter().zip(&values) {
                        let back = q as f64 * scale as f64;
                        prop_assert!(
                            (back - v).abs() <= err,
                            "reconstruction {} vs {} exceeds measured bound {}", back, v, err
                        );
                    }
                }
                None => {
                    // Refusal is only legal for f32-scale overflow.
                    let max_abs = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                    prop_assert!(max_abs > 1e42, "finite {max_abs} refused quantization");
                }
            }
        }

        /// Non-finite values refuse quantization no matter where they sit.
        #[test]
        fn prop_nonfinite_always_refused(
            values in proptest::collection::vec(-1e12f64..1e12, 1..16),
            idx in 0usize..16,
            kind in 0u8..3,
        ) {
            let mut values = values;
            let poison = match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            let idx = idx % values.len();
            values[idx] = poison;
            prop_assert!(quantize(&values).is_none());
        }

        /// ±0.0 features build identical keys (hit-key concern: the sign
        /// of zero must never split cache identity), and zero values
        /// round-trip losslessly through the cold tier.
        #[test]
        fn prop_signed_zero_is_one_identity(grid in 1e-9f64..1.0) {
            let a = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[0.0, -0.0], grid).unwrap();
            let b = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[-0.0, 0.0], grid).unwrap();
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
            prop_assert_eq!(a, b);
            let (cells, _, err) = quantize(&[0.0, -0.0]).unwrap();
            prop_assert!(cells.iter().all(|&q| q == 0));
            prop_assert_eq!(err, 0.0);
        }
    }
}
