//! Sharded LRU cache over finished explanations.
//!
//! Keys carry the model *version*, so a re-registered model can never serve
//! a stale entry — the old version's keys simply stop being asked for and
//! age out of the LRU (or are swept eagerly via [`ShardedCache::invalidate_model`]).
//!
//! Inputs are quantized onto a configurable grid before keying: two feature
//! vectors within the same grid cell share an explanation. The grid is part
//! of the engine config, so all keys in one engine agree.
//!
//! The cache also hosts **single-flight fill** ([`ShardedCache::begin_flight`]):
//! concurrent identical misses elect one leader to compute while followers
//! wait on the leader's result, so N simultaneous copies of a question cost
//! one model evaluation instead of N.

use crate::request::{fnv1a_bytes, fnv1a_words, ExplainMethod};
use crossbeam::channel::{bounded, Receiver, Sender};
use nfv_xai::prelude::Attribution;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache identity of one explanation: model, version, method (with
/// budget), and the quantized input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry id of the model.
    pub model_id: String,
    /// Registry version the explanation was computed against.
    pub model_version: u64,
    /// Method + budget.
    pub method: ExplainMethod,
    /// Grid-quantized feature vector.
    pub qfeatures: Vec<i64>,
}

impl CacheKey {
    /// Builds a key, quantizing `features` onto `grid`. Returns `None`
    /// when any feature is non-finite or overflows the grid (such inputs
    /// must be rejected upstream, not cached).
    pub fn build(
        model_id: &str,
        model_version: u64,
        method: ExplainMethod,
        features: &[f64],
        grid: f64,
    ) -> Option<CacheKey> {
        let grid = if grid > 0.0 { grid } else { 1e-9 };
        let mut q = Vec::with_capacity(features.len());
        for &x in features {
            if !x.is_finite() {
                return None;
            }
            let cell = (x / grid).round();
            if cell.abs() >= i64::MAX as f64 {
                return None;
            }
            q.push(cell as i64);
        }
        Some(CacheKey {
            model_id: model_id.to_string(),
            model_version,
            method,
            qfeatures: q,
        })
    }

    /// A run-to-run stable content hash (FNV-1a): shard selection and
    /// per-request RNG seeds both derive from this, so it must not depend
    /// on process-local hasher state.
    pub fn stable_hash(&self) -> u64 {
        let (mtag, mbudget) = self.method.hash_parts();
        let id_hash = fnv1a_bytes(self.model_id.as_bytes());
        fnv1a_words(
            [id_hash, self.model_version, mtag, mbudget]
                .into_iter()
                .chain(self.qfeatures.iter().map(|&v| v as u64)),
        )
    }
}

/// Slab index sentinel.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    key: CacheKey,
    value: Arc<Attribution>,
    prev: usize,
    next: usize,
}

/// One LRU shard: a hash map into a slab whose slots form an intrusive
/// doubly-linked recency list. All operations are O(1).
#[derive(Debug)]
struct LruShard {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<Attribution>> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.slots[i].value))
    }

    fn insert(&mut self, key: CacheKey, value: Arc<Attribution>) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old = &self.slots[victim];
            self.map.remove(&old.key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    fn retain<F: Fn(&CacheKey) -> bool>(&mut self, keep: F) {
        let victims: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        for i in victims {
            self.unlink(i);
            self.map.remove(&self.slots[i].key.clone());
            self.free.push(i);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Outcome of [`ShardedCache::begin_flight`] for one cache miss.
pub enum Flight {
    /// No identical computation is in flight: this caller computes the
    /// explanation and **must** eventually call
    /// [`ShardedCache::complete_flight`] (with `None` on failure) so
    /// followers are released.
    Leader,
    /// An identical computation is already running; wait on the receiver
    /// for the leader's result (`None` = the leader failed or aborted —
    /// fall back to computing normally).
    Follower(Receiver<Option<Arc<Attribution>>>),
}

// Manual impl: the vendored channel handles don't implement `Debug`.
impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Flight::Leader => "Flight::Leader",
            Flight::Follower(_) => "Flight::Follower",
        })
    }
}

/// The concurrent cache: `n_shards` independent LRUs, each behind its own
/// mutex, selected by the key's stable hash. Lock hold times are a map
/// probe plus two list splices. A side table tracks in-flight fills for
/// single-flight deduplication of concurrent identical misses.
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    /// Keys being computed right now → waiting followers. Small (bounded
    /// by in-flight requests), so one mutex suffices.
    #[allow(clippy::type_complexity)]
    in_flight: Mutex<HashMap<CacheKey, Vec<Sender<Option<Arc<Attribution>>>>>>,
}

impl ShardedCache {
    /// Builds a cache of roughly `capacity` entries spread over
    /// `n_shards` shards (each shard gets an equal slice, minimum 1).
    pub fn new(capacity: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.clamp(1, 1024);
        let per = capacity.div_ceil(n_shards).max(1);
        ShardedCache {
            shards: (0..n_shards)
                .map(|_| Mutex::new(LruShard::new(per)))
                .collect(),
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    /// Registers interest in computing `key` after a cache miss. The first
    /// caller becomes the [`Flight::Leader`]; concurrent callers become
    /// [`Flight::Follower`]s holding a receiver for the leader's result.
    ///
    /// The leader (whoever ends up computing the key — the worker calls
    /// [`ShardedCache::complete_flight`] unconditionally after every job)
    /// releases the followers. A leader that aborts before enqueueing must
    /// call `complete_flight(key, None)` itself.
    pub fn begin_flight(&self, key: &CacheKey) -> Flight {
        let mut table = self.in_flight.lock();
        match table.get_mut(key) {
            Some(waiters) => {
                let (tx, rx) = bounded(1);
                waiters.push(tx);
                Flight::Follower(rx)
            }
            None => {
                table.insert(key.clone(), Vec::new());
                Flight::Leader
            }
        }
    }

    /// Resolves an in-flight fill: removes `key` from the flight table and
    /// sends `result` to every waiting follower (`None` = compute failed;
    /// followers fall back to their own computation). A no-op when no
    /// flight is registered, so workers may call it unconditionally.
    pub fn complete_flight(&self, key: &CacheKey, result: Option<Arc<Attribution>>) {
        let waiters = self.in_flight.lock().remove(key);
        if let Some(waiters) = waiters {
            for tx in waiters {
                let _ = tx.send(result.clone());
            }
        }
    }

    /// Keys currently being computed (test/introspection hook).
    pub fn flights_in_progress(&self) -> usize {
        self.in_flight.lock().len()
    }
}

// Manual impl: the flight table's channel senders aren't `Debug`.
impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("flights_in_progress", &self.flights_in_progress())
            .finish()
    }
}

impl ShardedCache {
    fn shard(&self, key: &CacheKey) -> &Mutex<LruShard> {
        // High bits: FNV's low bits are the most mixed, but keep it simple
        // and uniform by folding.
        let h = key.stable_hash();
        let idx = (h ^ (h >> 32)) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks `key` up, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Attribution>> {
        self.shard(key).lock().get(key)
    }

    /// Inserts (or refreshes) `key`.
    pub fn insert(&self, key: CacheKey, value: Arc<Attribution>) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Eagerly drops every entry belonging to `model_id` (all versions).
    /// Version-carrying keys already make stale hits impossible; this just
    /// reclaims their space immediately on deregistration.
    pub fn invalidate_model(&self, model_id: &str) {
        for s in &self.shards {
            s.lock().retain(|k| k.model_id != model_id);
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(v: f64) -> Arc<Attribution> {
        Arc::new(Attribution {
            names: vec!["f".into()],
            values: vec![v],
            base_value: 0.0,
            prediction: v,
            method: "test".into(),
        })
    }

    fn key(version: u64, x: f64) -> CacheKey {
        CacheKey::build("m", version, ExplainMethod::TreeShap, &[x], 1e-6).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = LruShard::new(2);
        s.insert(key(1, 1.0), attr(1.0));
        s.insert(key(1, 2.0), attr(2.0));
        // Touch 1.0 so 2.0 becomes the LRU victim.
        assert!(s.get(&key(1, 1.0)).is_some());
        s.insert(key(1, 3.0), attr(3.0));
        assert!(s.get(&key(1, 2.0)).is_none(), "2.0 evicted");
        assert!(s.get(&key(1, 1.0)).is_some());
        assert!(s.get(&key(1, 3.0)).is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut s = LruShard::new(2);
        for i in 0..100 {
            s.insert(key(1, i as f64), attr(i as f64));
        }
        assert_eq!(s.len(), 2);
        assert!(s.slots.len() <= 3, "slab bounded: {}", s.slots.len());
    }

    #[test]
    fn version_is_part_of_identity() {
        let c = ShardedCache::new(16, 4);
        c.insert(key(1, 5.0), attr(10.0));
        assert!(c.get(&key(1, 5.0)).is_some());
        assert!(
            c.get(&key(2, 5.0)).is_none(),
            "newer version must miss, never see v1's entry"
        );
    }

    #[test]
    fn quantization_merges_near_inputs_and_rejects_nonfinite() {
        let a = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[1.0000001], 1e-3).unwrap();
        let b = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[0.9999999], 1e-3).unwrap();
        assert_eq!(a, b);
        let far = CacheKey::build("m", 1, ExplainMethod::TreeShap, &[1.1], 1e-3).unwrap();
        assert_ne!(a, far);
        assert!(CacheKey::build("m", 1, ExplainMethod::TreeShap, &[f64::NAN], 1e-3).is_none());
        assert!(
            CacheKey::build("m", 1, ExplainMethod::TreeShap, &[1e300], 1e-9).is_none(),
            "grid overflow"
        );
    }

    #[test]
    fn single_flight_elects_one_leader_and_releases_followers() {
        let c = ShardedCache::new(16, 2);
        let k = key(1, 4.0);
        assert!(matches!(c.begin_flight(&k), Flight::Leader));
        let followers: Vec<_> = (0..3)
            .map(|_| match c.begin_flight(&k) {
                Flight::Follower(rx) => rx,
                Flight::Leader => panic!("second caller must not lead"),
            })
            .collect();
        assert_eq!(c.flights_in_progress(), 1);
        c.complete_flight(&k, Some(attr(42.0)));
        for rx in followers {
            let got = rx.recv().unwrap().expect("leader succeeded");
            assert_eq!(got.prediction, 42.0);
        }
        assert_eq!(c.flights_in_progress(), 0);
        // The key is free again: a new leader can be elected.
        assert!(matches!(c.begin_flight(&k), Flight::Leader));
        // Aborting releases followers with None.
        let rx = match c.begin_flight(&k) {
            Flight::Follower(rx) => rx,
            Flight::Leader => panic!(),
        };
        c.complete_flight(&k, None);
        assert!(rx.recv().unwrap().is_none(), "abort = None to followers");
        // Completing an unregistered key is a harmless no-op.
        c.complete_flight(&key(1, 99.0), None);
    }

    #[test]
    fn invalidate_model_sweeps_all_versions() {
        let c = ShardedCache::new(64, 4);
        for v in 1..=3 {
            for i in 0..5 {
                c.insert(key(v, i as f64), attr(i as f64));
            }
        }
        let other = CacheKey::build("other", 9, ExplainMethod::TreeShap, &[1.0], 1e-6).unwrap();
        c.insert(other.clone(), attr(7.0));
        c.invalidate_model("m");
        assert_eq!(c.len(), 1);
        assert!(c.get(&other).is_some());
    }
}
