//! The transport-agnostic serving engine: one registry + cache + admission
//! queue + worker pool. [`crate::cluster`] composes N of these into a
//! shared-nothing sharded cluster; a network frontend would wrap either.

use crate::batcher::BatchPolicy;
use crate::cache::{self, CacheKey, CacheUsage, ShardedCache};
use crate::error::{RejectReason, ServeError};
use crate::metrics::{Metrics, ServeStats};
use crate::queue::{Job, JobQueue};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::request::{request_seed, ExplainRequest, ExplainResponse, Fidelity};
use crate::worker;
use nfv_xai::prelude::CoalitionWorkspace;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine configuration. The defaults serve a mid-size control plane on a
/// few cores; everything is tunable per deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads running explainers.
    pub workers: usize,
    /// Bounded queue capacity (admission rejects beyond this).
    pub queue_capacity: usize,
    /// Largest micro-batch a worker forms.
    pub max_batch: usize,
    /// How long a worker waits for batch companions.
    pub gather_window: Duration,
    /// Exact-tier (hot) cache entries across shards.
    pub cache_capacity: usize,
    /// Quantized-tier (cold) cache entries across shards. Hot entries
    /// demote here on eviction; a cold entry costs ~¼ the bytes of a hot
    /// one and serves with a typed `Fidelity::Quantized` error bound.
    /// 0 disables the tier (pre-tier behaviour: evictions die).
    pub cold_capacity: usize,
    /// Number of cache shards (lock-contention control).
    pub cache_shards: usize,
    /// Input quantization grid for cache keys (absolute units).
    pub quantization_grid: f64,
    /// Engine seed mixed into every stochastic explainer's seed.
    pub seed: u64,
    /// Cross-request coalition fusion policy (the mega-block scheduler).
    pub fusion: FusionPolicy,
    /// Deduplicate concurrent identical cache misses: followers wait for
    /// the leader's result instead of enqueueing their own computation.
    pub single_flight: bool,
    /// Anytime (degrade-before-reject) policy for queue-full pressure.
    pub anytime: AnytimePolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            gather_window: Duration::from_micros(500),
            cache_capacity: 4096,
            cold_capacity: 16_384,
            cache_shards: 8,
            quantization_grid: 1e-6,
            seed: 0,
            fusion: FusionPolicy::default(),
            single_flight: true,
            anytime: AnytimePolicy::default(),
        }
    }
}

/// Policy for **anytime explanations**: when admission would reject a
/// sampling-method request with `QueueFull`, the engine instead computes a
/// coarse attribution inline (budget cut via
/// [`crate::request::ExplainMethod::coarsened`]) and returns it immediately,
/// tagged [`Fidelity::Coarse`] — then hands the full-budget recompute to a
/// background refiner that upgrades the cache entry in place (same key,
/// monotone: coarse → full, never back). Repeat keys therefore converge to
/// exact answers without ever rejecting.
///
/// Deterministic methods (no budget to cut) and `DeadlineUnmeetable`
/// rejections still reject: the former can't degrade, the latter means even
/// the queue-free path would blow the caller's deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnytimePolicy {
    /// Master switch. [`crate::cluster::ServeCluster`] turns this off on
    /// its shard engines: the cluster's spill-to-neighbor policy handles
    /// queue-full first, so a shard must surface `QueueFull` honestly.
    pub enabled: bool,
    /// Bounded refine-queue depth. A full queue drops the refinement (the
    /// coarse answer stands; counted in `refine_dropped`) rather than
    /// blocking the serving path.
    pub refine_queue: usize,
}

impl Default for AnytimePolicy {
    fn default() -> Self {
        AnytimePolicy {
            enabled: true,
            refine_queue: 64,
        }
    }
}

/// Policy for the cross-request coalition fusion scheduler: workers stack
/// the coalition matrices of several queued same-model plan-capable
/// requests (the Shapley family and per-instance permutation, methods and
/// budgets mixed) into one shared evaluation block, so one `predict_block`
/// call amortizes traversal setup — and clears the SoA row-major repack
/// breakeven — across the whole group. Results are bit-identical to
/// unfused serving: fusion changes *which call* evaluates a composite row,
/// never its arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionPolicy {
    /// Master switch. Off = every request evaluates its own coalitions
    /// (the pre-fusion behaviour, kept for A/B benchmarking).
    pub enabled: bool,
    /// Smallest fusable group: below this, fusion is pure overhead and the
    /// direct path runs instead.
    pub min_jobs: usize,
    /// Row budget a group *aims* for (the fill-ratio denominator). Sized
    /// to the SoA engine's pack breakeven so fused blocks take the
    /// row-major fast path that single requests rarely reach.
    pub target_rows: usize,
    /// Hard per-block row cap: the scheduler flushes (evaluates and
    /// finishes the planned jobs so far) before exceeding it, bounding the
    /// arena's high-water mark.
    pub max_rows: usize,
}

impl Default for FusionPolicy {
    fn default() -> Self {
        FusionPolicy {
            enabled: true,
            min_jobs: 2,
            target_rows: nfv_ml::soa::PACK_MIN_ROWS,
            max_rows: 16_384,
        }
    }
}

/// The serving engine. Construct with [`Engine::start`], register models,
/// then call [`Engine::explain`] from any number of threads. Dropping the
/// engine (or calling [`Engine::shutdown`]) drains and joins the workers.
pub struct Engine {
    registry: Arc<ModelRegistry>,
    cache: Arc<ShardedCache>,
    metrics: Arc<Metrics>,
    // `None` once shut down: dropping the queue drops the last sender,
    // which is what tells workers to drain and exit.
    queue: Option<JobQueue>,
    workers: Vec<JoinHandle<()>>,
    // Anytime refinement: `None` when anytime is disabled or after
    // shutdown. Dropping the sender is what tells the refiner to exit.
    refine_tx: Option<crossbeam::channel::Sender<RefineJob>>,
    refiner: Option<JoinHandle<()>>,
    config: ServeConfig,
}

/// One pending in-place upgrade: recompute `key` at its full budget and
/// overwrite the coarse cache entry.
struct RefineJob {
    entry: Arc<ModelEntry>,
    key: CacheKey,
    features: Vec<f64>,
}

/// The background refiner: full-budget recomputes of keys the anytime path
/// answered coarsely. Seeds derive from the *original* key's content hash —
/// exactly what a worker would have used — so the upgraded entry is
/// bit-identical to the answer a non-degraded request would have received.
fn refiner_loop(
    rx: crossbeam::channel::Receiver<RefineJob>,
    cache: Arc<ShardedCache>,
    metrics: Arc<Metrics>,
    engine_seed: u64,
) {
    let mut ws = CoalitionWorkspace::default();
    while let Ok(job) = rx.recv() {
        // Another path (a worker fill, or an earlier refinement) may have
        // already upgraded this key.
        if cache.entry_grade(&job.key) == Some(1) {
            continue;
        }
        let explainer = match job.entry.explainer(job.key.method) {
            Ok(e) => e,
            Err(_) => {
                // The coarse answer stands (see the explain-error arm).
                metrics.explain_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let seed = request_seed(engine_seed, job.key.stable_hash());
        match worker::explain_one(&job.entry, &*explainer, &job.features, seed, &mut ws) {
            Ok(attr) => {
                cache.insert(job.key, Arc::new(attr));
                metrics.refined_entries.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // The coarse answer stands; the next full-path request for
                // this key will surface the error through normal serving.
                metrics.explain_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Engine {
    /// Starts the worker pool and returns a ready engine.
    pub fn start(config: ServeConfig) -> Engine {
        let registry = Arc::new(ModelRegistry::new());
        let cache = Arc::new(ShardedCache::new(
            config.cache_capacity,
            config.cold_capacity,
            config.cache_shards,
        ));
        let metrics = Arc::new(Metrics::new());
        if config.fusion.enabled {
            metrics
                .fused_target_rows
                .store(config.fusion.target_rows as u64, Ordering::Relaxed);
        }
        let queue = JobQueue::new(config.queue_capacity, config.workers);
        let ctx = Arc::new(worker::WorkerContext {
            cache: Arc::clone(&cache),
            metrics: Arc::clone(&metrics),
            policy: BatchPolicy {
                max_batch: config.max_batch,
                gather_window: config.gather_window,
            },
            seed: config.seed,
            fusion: config.fusion,
            in_flight: queue.in_flight_handle(),
        });
        let workers = worker::spawn_workers(config.workers, queue.receiver(), ctx);
        let (refine_tx, refiner) = if config.anytime.enabled {
            let (tx, rx) = crossbeam::channel::bounded(config.anytime.refine_queue.max(1));
            let cache = Arc::clone(&cache);
            let metrics = Arc::clone(&metrics);
            let seed = config.seed;
            let handle = std::thread::Builder::new()
                .name("nfv-serve-refiner".into())
                .spawn(move || refiner_loop(rx, cache, metrics, seed))
                .expect("spawn refiner thread");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        Engine {
            registry,
            cache,
            metrics,
            queue: Some(queue),
            workers,
            refine_tx,
            refiner,
            config,
        }
    }

    /// The model registry (register/deregister models here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Synchronously explains one request.
    ///
    /// Fast path: a cache hit returns without touching the queue. Miss
    /// path: admission control (bounded queue + deadline feasibility) may
    /// reject with a [`RejectReason`]; admitted requests block until a
    /// worker answers.
    pub fn explain(&self, request: ExplainRequest) -> Result<ExplainResponse, ServeError> {
        let t0 = Instant::now();
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);

        // Resolve + validate.
        let Some(entry) = self.registry.get(&request.model_id) else {
            self.metrics
                .rejected_unknown_model
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected(RejectReason::UnknownModel {
                model_id: request.model_id,
            }));
        };
        let d = entry.model.n_features();
        if request.features.len() != d {
            self.metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected(RejectReason::InvalidRequest {
                reason: format!(
                    "model `{}` expects {d} features, got {}",
                    request.model_id,
                    request.features.len()
                ),
            }));
        }
        if let Err(e) = entry.supports(request.method) {
            self.metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let Some(key) = CacheKey::build(
            &request.model_id,
            entry.version,
            request.method,
            &request.features,
            self.config.quantization_grid,
        ) else {
            self.metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected(RejectReason::InvalidRequest {
                reason: "features must be finite and within the quantization range".into(),
            }));
        };

        // Cache fast path. Cold-tier hits carry their dequantization error
        // bound in the fidelity; coarse anytime entries re-arm their
        // background refinement (it may have been dropped under pressure).
        if let Some((attr, fidelity)) = self.cache.get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            if matches!(
                fidelity,
                Fidelity::Quantized { .. } | Fidelity::CoarseQuantized { .. }
            ) {
                self.metrics.quantized_hits.fetch_add(1, Ordering::Relaxed);
            }
            if fidelity.grade() == 0 {
                self.request_refine(&entry, &key, &request.features);
            }
            self.metrics.completed.fetch_add(1, Ordering::Relaxed);
            self.metrics.total.record(t0.elapsed());
            return Ok(ExplainResponse {
                attribution: attr,
                model_version: key.model_version,
                cache_hit: true,
                batch_size: 1,
                queue_wait: Duration::ZERO,
                service_time: Duration::ZERO,
                fidelity,
            });
        }

        // Single-flight: collapse concurrent *identical* misses onto one
        // computation. The first miss becomes the leader and proceeds to
        // admission; followers park on a channel and receive the leader's
        // attribution the moment it lands in the cache — one model
        // evaluation instead of N. A follower whose leader fails or whose
        // budget runs out falls through and computes normally.
        let mut leads_flight = false;
        if self.config.single_flight {
            match self.cache.begin_flight(&key) {
                cache::Flight::Leader => leads_flight = true,
                cache::Flight::Follower(rx) => {
                    let remaining = request.budget.saturating_sub(t0.elapsed());
                    if let Ok(Some((attr, fidelity))) = rx.recv_timeout(remaining) {
                        self.metrics
                            .single_flight_hits
                            .fetch_add(1, Ordering::Relaxed);
                        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                        self.metrics.total.record(t0.elapsed());
                        return Ok(ExplainResponse {
                            attribution: attr,
                            model_version: key.model_version,
                            cache_hit: true,
                            batch_size: 1,
                            queue_wait: Duration::ZERO,
                            service_time: Duration::ZERO,
                            fidelity,
                        });
                    }
                }
            }
        }

        // Admission + enqueue.
        let Some(queue) = self.queue.as_ref() else {
            if leads_flight {
                self.cache.complete_flight(&key, None);
            }
            return Err(ServeError::Rejected(RejectReason::ShuttingDown));
        };
        let (respond_tx, respond_rx) = crossbeam::channel::bounded(1);
        let job = Job {
            request,
            entry,
            key,
            admitted: t0,
            respond: respond_tx,
        };
        if let Err((reason, job)) = queue.admit(job, &self.metrics) {
            // Queue-full pressure on a sampling method: degrade before
            // rejecting. The coarse compute runs inline on this caller's
            // thread (≈⅛ of the full budget), answers immediately with a
            // typed coarse fidelity, and schedules the full-budget
            // refinement in the background.
            if matches!(reason, RejectReason::QueueFull { .. }) && self.config.anytime.enabled {
                if let Some(response) = self.serve_anytime(&job, leads_flight, t0) {
                    return Ok(response);
                }
            }
            // An admitted leader's flight is resolved by the worker; a
            // rejected leader must release its followers itself (they fall
            // through and try on their own).
            if leads_flight {
                self.cache.complete_flight(&job.key, None);
            }
            match &reason {
                RejectReason::QueueFull { .. } => {
                    self.metrics
                        .rejected_queue_full
                        .fetch_add(1, Ordering::Relaxed);
                }
                RejectReason::DeadlineUnmeetable { .. } => {
                    self.metrics
                        .rejected_deadline_unmeetable
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            return Err(ServeError::Rejected(reason));
        }

        // Block until a worker answers (the sync in-process client).
        match respond_rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServeError::Internal(
                "worker dropped the response channel".into(),
            )),
        }
    }

    /// The anytime path for a queue-full rejection: compute the coarsened
    /// method inline, cache it **under the original key** with a coarse
    /// grade, release any single-flight followers with the marked answer,
    /// and schedule the full-budget refinement. `None` when the method has
    /// no coarse variant or the coarse compute itself fails — the caller
    /// falls back to the original rejection.
    fn serve_anytime(&self, job: &Job, leads_flight: bool, t0: Instant) -> Option<ExplainResponse> {
        // The coarsening divisor is per-(model, method) service-class
        // configuration (default ÷ 8): a latency-critical class can be
        // configured to degrade harder, an accuracy-critical one gentler
        // or not at all.
        let divisor = self
            .registry
            .anytime_divisor(&job.request.model_id, job.request.method.method_id());
        let (coarse_method, sample_budget) = job.request.method.coarsened_with(divisor)?;
        // Seed from the *coarse* key's content hash: the coarse answer is
        // its own deterministic identity (bit-identical wherever the same
        // coarse question is computed), distinct from the full answer's.
        let coarse_key = CacheKey::build(
            &job.request.model_id,
            job.key.model_version,
            coarse_method,
            &job.request.features,
            self.config.quantization_grid,
        )?;
        let seed = request_seed(self.config.seed, coarse_key.stable_hash());
        let explainer = job.entry.explainer(coarse_method).ok()?;
        let t_run = Instant::now();
        let mut ws = CoalitionWorkspace::default();
        let attr = worker::explain_one(
            &job.entry,
            &*explainer,
            &job.request.features,
            seed,
            &mut ws,
        )
        .ok()?;
        let service = t_run.elapsed();
        let attr = Arc::new(attr);
        let fidelity = Fidelity::Coarse { sample_budget };
        self.cache
            .insert_graded(job.key.clone(), Arc::clone(&attr), sample_budget);
        if leads_flight {
            self.cache
                .complete_flight(&job.key, Some((Arc::clone(&attr), fidelity)));
        }
        self.request_refine(&job.entry, &job.key, &job.request.features);
        self.metrics.degraded_served.fetch_add(1, Ordering::Relaxed);
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
        self.metrics.service.record(service);
        self.metrics.total.record(t0.elapsed());
        Some(ExplainResponse {
            attribution: attr,
            model_version: job.key.model_version,
            cache_hit: false,
            batch_size: 1,
            queue_wait: Duration::ZERO,
            service_time: service,
            fidelity,
        })
    }

    /// Queues a full-budget in-place upgrade for `key`. Dropped (counted)
    /// when the refine queue is full — the coarse answer stands and the
    /// next request for the key re-arms refinement.
    fn request_refine(&self, entry: &Arc<ModelEntry>, key: &CacheKey, features: &[f64]) {
        let Some(tx) = self.refine_tx.as_ref() else {
            return;
        };
        let job = RefineJob {
            entry: Arc::clone(entry),
            key: key.clone(),
            features: features.to_vec(),
        };
        if tx.try_send(job).is_err() {
            self.metrics.refine_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time metrics snapshot, including cache tier occupancy.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.metrics.snapshot();
        let usage = self.cache.usage();
        stats.cache_hot_entries = usage.hot_entries as u64;
        stats.cache_cold_entries = usage.cold_entries as u64;
        stats.cache_hot_bytes = usage.hot_bytes as u64;
        stats.cache_cold_bytes = usage.cold_bytes as u64;
        stats
    }

    /// Per-tier cache entry and byte usage.
    pub fn cache_usage(&self) -> CacheUsage {
        self.cache.usage()
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Jobs currently queued (0 after shutdown).
    pub fn queue_len(&self) -> usize {
        self.queue.as_ref().map_or(0, |q| q.len())
    }

    /// Eagerly drops cached explanations of `model_id` (all versions).
    pub fn invalidate_model(&self, model_id: &str) {
        self.cache.invalidate_model(model_id);
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Dropping the queue drops the last sender; workers finish the
        // backlog and exit.
        self.queue = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Same deal for the refiner: dropping the sender ends its loop
        // after it drains pending upgrades.
        self.refine_tx = None;
        if let Some(h) = self.refiner.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use nfv_data::prelude::*;
    use nfv_ml::prelude::*;
    use nfv_xai::prelude::*;
    use std::time::Duration;

    fn engine_with_gbdt(cfg: ServeConfig) -> (ServeEngine, Vec<Vec<f64>>) {
        let synth = friedman1(300, 5, 0.1, 11).unwrap();
        let model = Gbdt::fit(
            &synth.data,
            &GbdtParams {
                n_rounds: 15,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        let bg = Background::from_dataset(&synth.data, 16, 1).unwrap();
        let engine = ServeEngine::start(cfg);
        engine
            .registry()
            .register("m", ServeModel::Gbdt(model), synth.data.names.clone(), bg)
            .unwrap();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| synth.data.row(i).to_vec()).collect();
        (engine, rows)
    }

    #[test]
    fn serves_and_caches() {
        let (engine, rows) = engine_with_gbdt(ServeConfig::default());
        let req = |x: &Vec<f64>| ExplainRequest {
            model_id: "m".into(),
            features: x.clone(),
            method: ExplainMethod::TreeShap,
            budget: Duration::from_secs(1),
        };
        let first = engine.explain(req(&rows[0])).unwrap();
        assert!(!first.cache_hit);
        assert!(first.attribution.efficiency_gap().abs() < 1e-8);
        let second = engine.explain(req(&rows[0])).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.attribution, first.attribution);
        let stats = engine.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.cache_hit_rate > 0.0);
        engine.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_shape_reject() {
        let (engine, rows) = engine_with_gbdt(ServeConfig::default());
        let err = engine
            .explain(ExplainRequest {
                model_id: "nope".into(),
                features: rows[0].clone(),
                method: ExplainMethod::TreeShap,
                budget: Duration::from_secs(1),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Rejected(RejectReason::UnknownModel { .. })
        ));
        let err = engine
            .explain(ExplainRequest {
                model_id: "m".into(),
                features: vec![1.0],
                method: ExplainMethod::TreeShap,
                budget: Duration::from_secs(1),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Rejected(RejectReason::InvalidRequest { .. })
        ));
        let err = engine
            .explain(ExplainRequest {
                model_id: "m".into(),
                features: vec![f64::NAN; 5],
                method: ExplainMethod::TreeShap,
                budget: Duration::from_secs(1),
            })
            .unwrap_err();
        assert!(err.is_reject());
    }

    #[test]
    fn re_registration_invalidates_old_answers() {
        let (engine, rows) = engine_with_gbdt(ServeConfig::default());
        let req = ExplainRequest {
            model_id: "m".into(),
            features: rows[1].clone(),
            method: ExplainMethod::TreeShap,
            budget: Duration::from_secs(1),
        };
        let v1 = engine.explain(req.clone()).unwrap();
        // Replace the model: a *different* fit under the same id.
        let synth = friedman1(300, 5, 0.1, 99).unwrap();
        let model2 = Gbdt::fit(
            &synth.data,
            &GbdtParams {
                n_rounds: 5,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let bg = Background::from_dataset(&synth.data, 16, 1).unwrap();
        engine
            .registry()
            .register("m", ServeModel::Gbdt(model2), synth.data.names.clone(), bg)
            .unwrap();
        let v2 = engine.explain(req).unwrap();
        assert!(v2.model_version > v1.model_version);
        assert!(!v2.cache_hit, "new version must not hit v1's cache entry");
        assert_ne!(v2.attribution, v1.attribution);
    }

    #[test]
    fn widened_methods_serve_end_to_end() {
        let (engine, rows) = engine_with_gbdt(ServeConfig::default());
        for (method, tag) in [
            (
                ExplainMethod::SamplingShapley {
                    n_permutations: 8,
                    antithetic: true,
                },
                "sampling-shapley-antithetic",
            ),
            (ExplainMethod::ExactShapley, "exact-shapley"),
            (ExplainMethod::GroupedShapley, "grouped-shapley"),
            (ExplainMethod::Permutation, "permutation"),
        ] {
            let resp = engine
                .explain(ExplainRequest {
                    model_id: "m".into(),
                    features: rows[2].clone(),
                    method,
                    budget: Duration::from_secs(5),
                })
                .unwrap();
            assert_eq!(resp.attribution.method, tag, "{method:?}");
            assert!(!resp.cache_hit);
        }
        engine.shutdown();
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let (engine, rows) = engine_with_gbdt(ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        });
        for r in &rows {
            engine
                .explain(ExplainRequest {
                    model_id: "m".into(),
                    features: r.clone(),
                    method: ExplainMethod::TreeShap,
                    budget: Duration::from_secs(1),
                })
                .unwrap();
        }
        drop(engine); // must not hang or panic
    }
}
