//! # nfv-serve — online explanation serving
//!
//! The paper's explainers answer *one* question well; an NFV control plane
//! asks thousands per second, with latency contracts. This crate is the
//! serving layer between the two, split into a transport-agnostic
//! [`Engine`] and a shared-nothing [`cluster`] of them:
//!
//! - a **model registry** (versioned, hot-swappable, `Arc`-shared) that
//!   resolves every request method to a `Box<dyn Explainer>` — workers
//!   contain zero per-method dispatch, so all of the `nfv-xai` trait
//!   registry's methods (TreeSHAP, KernelSHAP, LIME, sampling / exact /
//!   grouped Shapley, per-instance permutation) serve through one path,
//! - a **two-tier sharded LRU cache** keyed by (model id, version,
//!   method+budget, quantized input) — identical questions are answered
//!   once. A small hot tier serves exact f64 attributions; evictions
//!   demote into a large cold tier of i16-quantized entries (~4× the
//!   entries per byte) whose hits carry a typed
//!   [`Fidelity::Quantized`](request::Fidelity) error bound,
//! - **anytime explanations**: under queue-full pressure, sampling
//!   methods answer immediately with a coarse (reduced-budget)
//!   attribution tagged [`Fidelity::Coarse`](request::Fidelity) while a
//!   background refiner upgrades the cache entry in place to the
//!   full-budget result (see [`engine::AnytimePolicy`]),
//! - a **bounded MPMC queue** with admission control: when the queue is
//!   full or a deadline is infeasible the request is *rejected with a
//!   reason*, never silently delayed (backpressure, not buffer bloat),
//! - a **worker pool** that micro-batches compatible requests and runs the
//!   explainers with a persistent per-worker coalition arena (steady-state
//!   serving does not allocate on the hot path) against the registry's
//!   packed SoA tree engine,
//! - a **coalition fusion scheduler**: the coalition matrices of several
//!   queued same-model *plan-capable* requests — methods and budgets mixed
//!   — are stacked into one shared evaluation block and answered by a
//!   single `predict_block` call, bit-identical to unfused serving (see
//!   [`FusionPolicy`]),
//! - **single-flight cache fills**: concurrent identical misses elect one
//!   leader to compute; followers wait for its result instead of
//!   duplicating the evaluation,
//! - **metrics**: queue wait, batch size, cache hit rate, p50/p99, and
//!   per-(model-version, method) service-time EWMAs feeding admission
//!   control, all serializable for scraping — per shard and rolled up
//!   cluster-wide,
//! - a **[`cluster`] module**: N in-process engine shards behind a
//!   consistent-hash router keyed on request content, with spill-to-next-
//!   shard on queue-full. Shards share nothing at runtime; the router is
//!   the only cross-shard component.
//!
//! Stochastic explainers are seeded from request *content* (never arrival
//! order), so results are bit-for-bit reproducible across runs, thread
//! counts, batch compositions — and cluster shards.
//!
//! ```
//! use nfv_serve::prelude::*;
//! use nfv_data::prelude::*;
//! use nfv_ml::prelude::*;
//! use nfv_xai::prelude::*;
//! use std::time::Duration;
//!
//! let synth = friedman1(200, 5, 0.1, 7).unwrap();
//! let model = Gbdt::fit(&synth.data, &GbdtParams { n_rounds: 10, ..Default::default() }, 0).unwrap();
//! let bg = Background::from_dataset(&synth.data, 16, 1).unwrap();
//!
//! let engine = ServeEngine::start(ServeConfig::default());
//! engine.registry().register("sla", ServeModel::Gbdt(model), synth.data.names.clone(), bg).unwrap();
//!
//! let resp = engine.explain(ExplainRequest {
//!     model_id: "sla".into(),
//!     features: synth.data.row(0).to_vec(),
//!     method: ExplainMethod::TreeShap,
//!     budget: Duration::from_millis(100),
//! }).unwrap();
//! assert!(resp.attribution.efficiency_gap().abs() < 1e-8);
//! // The identical question again is a cache hit.
//! let again = engine.explain(ExplainRequest {
//!     model_id: "sla".into(),
//!     features: synth.data.row(0).to_vec(),
//!     method: ExplainMethod::TreeShap,
//!     budget: Duration::from_millis(100),
//! }).unwrap();
//! assert!(again.cache_hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod request;
pub mod worker;

pub use engine::{AnytimePolicy, Engine, FusionPolicy, ServeConfig};

/// Pre-split name of [`Engine`], kept as the primary public alias.
pub use engine::Engine as ServeEngine;

/// One-stop imports.
pub mod prelude {
    pub use crate::cache::CacheUsage;
    pub use crate::cluster::{route_hash, ClusterConfig, ClusterStats, HashRing, ServeCluster};
    pub use crate::error::{RejectReason, ServeError};
    pub use crate::metrics::ServeStats;
    pub use crate::registry::{ModelEntry, ModelRegistry, ServeModel};
    pub use crate::request::{
        ExplainMethod, ExplainRequest, ExplainResponse, Fidelity, DEFAULT_ANYTIME_DIVISOR,
    };
    pub use crate::{AnytimePolicy, Engine, FusionPolicy, ServeConfig, ServeEngine};
}
