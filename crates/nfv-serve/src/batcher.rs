//! Micro-batching: opportunistically gather queued jobs so compatible
//! requests share one `nfv-xai` batch call.
//!
//! The gather never reorders across compatibility groups and never holds a
//! lone request longer than the configured window — tail latency is traded
//! explicitly, not accidentally.

use crate::queue::Job;
use crossbeam::channel::Receiver;
use std::time::{Duration, Instant};

/// How eagerly workers form batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of jobs one worker takes per cycle.
    pub max_batch: usize,
    /// How long a worker lingers for companions after its first job.
    /// Zero disables gathering (every job is a singleton batch).
    pub gather_window: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            gather_window: Duration::from_micros(500),
        }
    }
}

/// Collects up to `max_batch` jobs: `first` plus whatever arrives within
/// the gather window. Drains eagerly (no sleep while jobs are waiting).
pub fn gather(rx: &Receiver<Job>, first: Job, policy: &BatchPolicy) -> Vec<Job> {
    let mut jobs = vec![first];
    let deadline = Instant::now() + policy.gather_window;
    while jobs.len() < policy.max_batch.max(1) {
        match rx.try_recv() {
            Ok(job) => jobs.push(job),
            Err(_) => {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
    }
    jobs
}

/// Splits a gathered batch into compatibility groups — same model id,
/// same version, same method (budget included) — preserving first-seen
/// order both across and within groups, so explanation order is FIFO per
/// group.
pub fn group_compatible(jobs: Vec<Job>) -> Vec<Vec<Job>> {
    let mut groups: Vec<Vec<Job>> = Vec::new();
    for job in jobs {
        let slot = groups.iter_mut().find(|g| {
            let k = &g[0].key;
            k.model_id == job.key.model_id
                && k.model_version == job.key.model_version
                && k.method == job.key.method
        });
        match slot {
            Some(g) => g.push(job),
            None => groups.push(vec![job]),
        }
    }
    groups
}

/// Splits a gathered batch by **model identity only** — same model id and
/// version, methods mixed — preserving first-seen order. This is the
/// fusion scheduler's grouping: every job in a model group shares one
/// `Regressor`, so their coalition plans can stack into one fused
/// evaluation block regardless of method or budget.
pub fn group_same_model(jobs: Vec<Job>) -> Vec<Vec<Job>> {
    let mut groups: Vec<Vec<Job>> = Vec::new();
    for job in jobs {
        let slot = groups.iter_mut().find(|g| {
            let k = &g[0].key;
            k.model_id == job.key.model_id && k.model_version == job.key.model_version
        });
        match slot {
            Some(g) => g.push(job),
            None => groups.push(vec![job]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use crate::request::{ExplainMethod, ExplainRequest};
    use nfv_ml::prelude::*;
    use nfv_xai::prelude::*;
    use std::sync::Arc;

    fn job_for(model_id: &str, version: u64, method: ExplainMethod) -> Job {
        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into()],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let model = LinearRegression::fit(&data, 1e-6).unwrap();
        let entry = Arc::new(crate::registry::ModelEntry {
            model: crate::registry::ServeModel::Linear(model),
            version,
            feature_names: vec!["a".into()],
            background: Background::from_rows(vec![vec![0.0]]).unwrap(),
            packed: None,
            expected_output: 0.0,
            groups: FeatureGroups::new(vec!["all".into()], vec![0]).unwrap(),
            trees: None,
        });
        let request = ExplainRequest {
            model_id: model_id.into(),
            features: vec![0.5],
            method,
            budget: Duration::from_secs(1),
        };
        let key = CacheKey::build(model_id, version, method, &request.features, 1e-6).unwrap();
        let (respond, rx) = crossbeam::channel::bounded(1);
        std::mem::forget(rx);
        Job {
            request,
            entry,
            key,
            admitted: std::time::Instant::now(),
            respond,
        }
    }

    #[test]
    fn grouping_splits_on_model_version_and_method() {
        let ks = ExplainMethod::KernelShap { n_coalitions: 8 };
        let jobs = vec![
            job_for("a", 1, ks),
            job_for("b", 1, ks),
            job_for("a", 1, ks),
            job_for("a", 2, ks),
            job_for("a", 1, ExplainMethod::KernelShap { n_coalitions: 16 }),
        ];
        let groups = group_compatible(jobs);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].len(), 2, "two (a, v1, ks8) jobs merge");
        // First-seen order preserved.
        assert_eq!(groups[1][0].request.model_id, "b");
    }

    #[test]
    fn model_grouping_merges_methods() {
        let ks = ExplainMethod::KernelShap { n_coalitions: 8 };
        let jobs = vec![
            job_for("a", 1, ks),
            job_for("a", 1, ExplainMethod::KernelShap { n_coalitions: 16 }),
            job_for("b", 1, ks),
            job_for("a", 2, ks),
            job_for("a", 1, ExplainMethod::TreeShap),
        ];
        let groups = group_same_model(jobs);
        assert_eq!(groups.len(), 3, "split on (id, version) only");
        assert_eq!(groups[0].len(), 3, "methods fuse within a model group");
        assert_eq!(groups[1][0].request.model_id, "b");
        assert_eq!(groups[2][0].key.model_version, 2);
    }

    #[test]
    fn gather_respects_max_batch_and_drains_eagerly() {
        let (tx, rx) = crossbeam::channel::bounded::<Job>(16);
        let ks = ExplainMethod::KernelShap { n_coalitions: 8 };
        for _ in 0..5 {
            assert!(tx.send(job_for("a", 1, ks)).is_ok());
        }
        let first = job_for("a", 1, ks);
        let policy = BatchPolicy {
            max_batch: 4,
            gather_window: Duration::from_millis(50),
        };
        let t0 = Instant::now();
        let batch = gather(&rx, first, &policy);
        assert_eq!(batch.len(), 4, "capped at max_batch");
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "no waiting when the queue is non-empty"
        );
        // Window elapses when the queue runs dry.
        let first = rx.recv().unwrap();
        let batch = gather(&rx, first, &policy);
        assert_eq!(batch.len(), 2, "drains the remaining job then times out");
    }

    #[test]
    fn zero_window_means_singletons() {
        let (tx, rx) = crossbeam::channel::bounded::<Job>(4);
        let ks = ExplainMethod::TreeShap;
        assert!(tx.send(job_for("a", 1, ks)).is_ok());
        let first = job_for("a", 1, ks);
        let policy = BatchPolicy {
            max_batch: 8,
            gather_window: Duration::ZERO,
        };
        let batch = gather(&rx, first, &policy);
        // try_recv still drains an already-waiting job; the window only
        // controls how long we *wait* for more.
        assert!(batch.len() <= 2);
    }
}
