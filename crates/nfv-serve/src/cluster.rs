//! A shared-nothing, sharded serving cluster: N in-process [`Engine`]s
//! behind a consistent-hash router.
//!
//! ## Why shard-per-request-content
//!
//! The router keys on the request's *cache key minus the model version*
//! (model id, method + budget, quantized features). That choice does two
//! things at once:
//!
//! 1. **Cache locality** — identical questions always land on the shard
//!    that answered them last time, so the cluster-wide hit rate equals a
//!    single engine's despite each shard owning a private cache. No
//!    cross-shard invalidation protocol exists because none is needed.
//! 2. **Shared-nothing scaling** — shards never synchronize on the hot
//!    path: each owns its registry, cache, admission queue, and workers
//!    outright. The only cross-shard interaction is the (rare, explicitly
//!    counted) spill of a request whose home shard's queue is full.
//!
//! The version is deliberately *excluded* from the route hash: routing
//! must not move a model's traffic to a different shard every time the
//! model is re-registered, or each hot-swap would cold-start every cache.
//!
//! ## Determinism across shards
//!
//! Every shard gets the same engine seed, and [`ServeCluster::register`]
//! fans models out to all shards in the same order, so all shards assign
//! identical versions. Per-request explainer seeds derive from (engine
//! seed, content hash) only — so a request served by its home shard, a
//! spill shard, or a standalone engine produces bit-identical attributions
//! (enforced by the cluster bit-identity tests).

use crate::cache::CacheKey;
use crate::engine::{Engine, ServeConfig};
use crate::error::{RejectReason, ServeError};
use crate::metrics::ServeStats;
use crate::registry::ServeModel;
use crate::request::{fnv1a_words, ExplainRequest, ExplainResponse};
use nfv_xai::prelude::Background;
use std::sync::atomic::{AtomicU64, Ordering};

/// Salt folded into every ring point so ring positions are unrelated to
/// the request hashes they partition.
const RING_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A consistent-hash ring over shard indices. Each shard owns `vnodes`
/// pseudo-random points; a key belongs to the first point clockwise from
/// its hash. Adding or removing one shard therefore remaps only the keys
/// in the arcs that shard's points owned — about `1/N` of the space —
/// instead of rehashing everything (the property the router's property
/// tests pin down).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// (ring position, shard index), sorted by position.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring of `shards × vnodes` points over shard indices
    /// `0..shards` (the in-process cluster's identity space).
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let ids: Vec<u32> = (0..shards as u32).collect();
        HashRing::from_ids(&ids, vnodes)
    }

    /// Builds a ring over explicit *stable* shard ids. A shard's points
    /// depend only on its own id, so adding or removing one id leaves
    /// every other shard's points untouched — the bounded-remap property
    /// graceful join/leave rides on (the `nfv-net` router keys its ring on
    /// connection ids that survive other shards joining and leaving).
    pub fn from_ids(ids: &[u32], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, u32)> = ids
            .iter()
            .flat_map(|&s| {
                (0..vnodes).map(move |v| (fnv1a_words([RING_SALT, s as u64, v as u64]), s))
            })
            .collect();
        points.sort_unstable();
        HashRing { points }
    }

    /// The shard owning `hash`: first ring point at or after it, wrapping.
    pub fn shard_of(&self, hash: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < hash);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1 as usize
    }

    /// The next *distinct* shard clockwise from `hash`'s owner — the spill
    /// target when the owner's queue is full. `None` on a one-shard ring.
    pub fn next_shard(&self, hash: u64, exclude: usize) -> Option<usize> {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        for i in 0..n {
            let (_, s) = self.points[(start + i) % n];
            if s as usize != exclude {
                return Some(s as usize);
            }
        }
        None
    }

    /// The first `r` *distinct* shards clockwise from `hash` — the read
    /// fan-out candidates when a hot model is replicated. The first entry
    /// is always [`HashRing::shard_of`]; answers are bit-identical on
    /// every shard, so serving a read from any candidate is safe.
    pub fn shards_for(&self, hash: u64, r: usize) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        let mut out = Vec::with_capacity(r.min(4));
        for i in 0..n {
            let (_, s) = self.points[(start + i) % n];
            if !out.contains(&(s as usize)) {
                out.push(s as usize);
                if out.len() >= r.max(1) {
                    break;
                }
            }
        }
        out
    }

    /// Number of points on the ring.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the ring has no points (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The placement hash of a request: its cache key with the model version
/// zeroed out, so the same question routes to the same shard across model
/// hot-swaps. `None` when the features are unroutable (non-finite or
/// outside the quantization range) — callers send those to any shard,
/// whose engine rejects them with the proper reason.
///
/// This is the **single** placement function: the in-process
/// [`ServeCluster`] and the `nfv-net` wire router both call it, so a key's
/// home shard is the same on either transport.
pub fn route_hash(
    model_id: &str,
    method: crate::request::ExplainMethod,
    features: &[f64],
    grid: f64,
) -> Option<u64> {
    CacheKey::build(model_id, 0, method, features, grid).map(|k| k.stable_hash())
}

/// Cluster configuration: N identical shards plus routing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of in-process engine shards.
    pub shards: usize,
    /// Configuration applied to every shard (notably: all shards share
    /// one seed, which is what keeps spilled requests bit-identical).
    pub shard: ServeConfig,
    /// Retry a queue-full rejection once on the next ring shard instead of
    /// failing it. Trades a cold cache + an extra queue for availability.
    pub spill: bool,
    /// Virtual nodes per shard on the routing ring (more = smoother key
    /// balance, linearly larger ring).
    pub vnodes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            shard: ServeConfig::default(),
            spill: true,
            vnodes: 128,
        }
    }
}

/// Cluster-wide statistics: the per-shard snapshots plus their rollup.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterStats {
    /// All shards rolled into one view (see [`ServeStats::aggregate`]).
    pub cluster: ServeStats,
    /// Per-shard snapshots, indexed by shard.
    pub per_shard: Vec<ServeStats>,
    /// Requests retried on a neighbour shard after a queue-full rejection.
    pub spills: u64,
}

/// N shared-nothing [`Engine`] shards behind a consistent-hash router.
///
/// Register models **through the cluster**, not through individual
/// shards: registration fans out to every shard in the same order, which
/// is what keeps versions — and therefore cache keys and seeds —
/// identical everywhere.
pub struct ServeCluster {
    shards: Vec<Engine>,
    ring: HashRing,
    grid: f64,
    spill: bool,
    spills: AtomicU64,
}

impl ServeCluster {
    /// Starts every shard's worker pool and returns a ready cluster.
    ///
    /// Shard engines run with anytime degradation **disabled** regardless
    /// of the shard config: the cluster's own overload policy is
    /// spill-to-neighbor, which requires a full shard to surface
    /// `QueueFull` honestly. Degrading is the single-engine fallback for
    /// when there is no neighbor to spill to.
    pub fn start(config: ClusterConfig) -> ServeCluster {
        let n = config.shards.max(1);
        let mut shard_cfg = config.shard;
        shard_cfg.anytime.enabled = false;
        let shards = (0..n).map(|_| Engine::start(shard_cfg)).collect();
        ServeCluster {
            shards,
            ring: HashRing::new(n, config.vnodes),
            grid: config.shard.quantization_grid,
            spill: config.spill,
            spills: AtomicU64::new(0),
        }
    }

    /// Registers (or replaces) `id` on every shard, returning the version
    /// they all assigned. Fan-out is sequential and in shard order, so
    /// identical registration sequences yield identical versions on every
    /// shard.
    pub fn register(
        &self,
        id: &str,
        model: ServeModel,
        feature_names: Vec<String>,
        background: Background,
    ) -> Result<u64, ServeError> {
        let mut version = 0;
        for shard in &self.shards {
            version = shard.registry().register(
                id,
                model.clone(),
                feature_names.clone(),
                background.clone(),
            )?;
        }
        Ok(version)
    }

    /// Removes `id` from every shard; true when any shard held it.
    pub fn deregister(&self, id: &str) -> bool {
        let mut any = false;
        for shard in &self.shards {
            any |= shard.registry().deregister(id);
        }
        any
    }

    /// Eagerly drops cached explanations of `model_id` on every shard.
    pub fn invalidate_model(&self, model_id: &str) {
        for shard in &self.shards {
            shard.invalidate_model(model_id);
        }
    }

    /// Routes one request to its home shard and explains it there,
    /// spilling to the next ring shard once if the home queue is full and
    /// spill is enabled.
    pub fn explain(&self, request: ExplainRequest) -> Result<ExplainResponse, ServeError> {
        // Route on the versionless cache key: same question → same shard,
        // across model hot-swaps. Unroutable requests (non-finite
        // features) go to shard 0, whose engine rejects them with the
        // proper reason.
        let hash = route_hash(
            &request.model_id,
            request.method,
            &request.features,
            self.grid,
        );
        let Some(hash) = hash else {
            return self.shards[0].explain(request);
        };
        let home = self.ring.shard_of(hash);
        let retry = if self.spill && self.shards.len() > 1 {
            Some(request.clone())
        } else {
            None
        };
        match self.shards[home].explain(request) {
            Err(ServeError::Rejected(RejectReason::QueueFull { .. })) if retry.is_some() => {
                let request = retry.expect("checked is_some above");
                let next = self
                    .ring
                    .next_shard(hash, home)
                    .expect("spill requires > 1 shard");
                self.spills.fetch_add(1, Ordering::Relaxed);
                self.shards[next].explain(request)
            }
            outcome => outcome,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to shard `i` (stats, cache inspection, tests).
    pub fn shard(&self, i: usize) -> &Engine {
        &self.shards[i]
    }

    /// Entries cached across all shards.
    pub fn cache_len(&self) -> usize {
        self.shards.iter().map(Engine::cache_len).sum()
    }

    /// Jobs queued across all shards.
    pub fn queue_len(&self) -> usize {
        self.shards.iter().map(Engine::queue_len).sum()
    }

    /// Point-in-time cluster statistics.
    pub fn stats(&self) -> ClusterStats {
        let per_shard: Vec<ServeStats> = self.shards.iter().map(Engine::stats).collect();
        ClusterStats {
            cluster: ServeStats::aggregate(&per_shard),
            per_shard,
            spills: self.spills.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work, drains every shard, and joins all workers.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(4, 128);
        let b = HashRing::new(4, 128);
        let mut seen = [false; 4];
        for k in 0..10_000u64 {
            let h = fnv1a_words([k]);
            assert_eq!(a.shard_of(h), b.shard_of(h));
            seen[a.shard_of(h)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every shard owns some keys");
        assert_eq!(a.len(), 4 * 128);
        assert!(!a.is_empty());
    }

    #[test]
    fn stable_id_ring_keeps_surviving_points_fixed() {
        // Removing id 2 from {0,1,2,3} must only move keys that 2 owned.
        let full = HashRing::from_ids(&[0, 1, 2, 3], 64);
        let without = HashRing::from_ids(&[0, 1, 3], 64);
        for k in 0..20_000u64 {
            let h = fnv1a_words([k, 3]);
            let before = full.shard_of(h);
            let after = without.shard_of(h);
            if before != 2 {
                assert_eq!(before, after, "keys of surviving shards must not move");
            } else {
                assert_ne!(after, 2, "orphaned keys land on a survivor");
            }
        }
        // An index ring is the same thing over 0..n.
        let a = HashRing::new(4, 64);
        let b = HashRing::from_ids(&[0, 1, 2, 3], 64);
        for k in 0..1_000u64 {
            let h = fnv1a_words([k]);
            assert_eq!(a.shard_of(h), b.shard_of(h));
        }
    }

    #[test]
    fn shards_for_lists_distinct_candidates_starting_at_home() {
        let ring = HashRing::new(4, 64);
        for k in 0..1_000u64 {
            let h = fnv1a_words([k, 11]);
            let cands = ring.shards_for(h, 3);
            assert_eq!(cands.len(), 3);
            assert_eq!(cands[0], ring.shard_of(h), "home is first");
            let mut sorted = cands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "candidates are distinct");
            assert_eq!(cands[1], ring.next_shard(h, cands[0]).unwrap());
        }
        // Asking for more replicas than shards returns them all.
        assert_eq!(ring.shards_for(42, 9).len(), 4);
    }

    #[test]
    fn next_shard_differs_from_home_and_is_stable() {
        let ring = HashRing::new(4, 64);
        for k in 0..1_000u64 {
            let h = fnv1a_words([k, 7]);
            let home = ring.shard_of(h);
            let next = ring.next_shard(h, home).unwrap();
            assert_ne!(next, home);
            assert_eq!(next, ring.next_shard(h, home).unwrap());
        }
        let one = HashRing::new(1, 64);
        assert_eq!(one.next_shard(42, 0), None, "nowhere to spill on 1 shard");
    }
}
