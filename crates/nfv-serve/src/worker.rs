//! Worker threads: pull jobs, micro-batch them, run the explainers through
//! `nfv-xai`'s batch path, fill the cache, and answer the waiting clients.
//!
//! Determinism: stochastic explainers get a seed derived from the request's
//! *content* (cache key hash mixed with the engine seed), never from
//! arrival order, thread id, or batch composition. The same request on the
//! same engine therefore yields bit-for-bit the same attribution no matter
//! how it was batched.

use crate::batcher::{gather, group_compatible, BatchPolicy};
use crate::cache::ShardedCache;
use crate::error::{RejectReason, ServeError};
use crate::metrics::Metrics;
use crate::queue::Job;
use crate::registry::ServeModel;
use crate::request::{fnv1a_words, ExplainMethod, ExplainResponse};
use crossbeam::channel::Receiver;
use nfv_xai::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Shared state a worker needs (a slice of the engine).
pub struct WorkerContext {
    /// The shared explanation cache.
    pub cache: Arc<ShardedCache>,
    /// Shared metrics.
    pub metrics: Arc<Metrics>,
    /// Batch formation policy.
    pub policy: BatchPolicy,
    /// Engine seed mixed into every per-request explainer seed.
    pub seed: u64,
    /// Dequeued-but-unanswered job count, shared with admission control
    /// (see [`crate::queue::JobQueue::in_flight_handle`]).
    pub in_flight: Arc<AtomicU64>,
}

/// Spawns `n` worker threads consuming `rx`. Threads exit when every
/// sender is dropped and the queue drains.
pub fn spawn_workers(n: usize, rx: Receiver<Job>, ctx: Arc<WorkerContext>) -> Vec<JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let rx = rx.clone();
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("nfv-serve-worker-{i}"))
                .spawn(move || worker_loop(rx, ctx))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(rx: Receiver<Job>, ctx: Arc<WorkerContext>) {
    while let Ok(first) = rx.recv() {
        let batch = gather(&rx, first, &ctx.policy);
        // Everything gathered is now invisible to the channel length;
        // count it as in-flight until each group's responses are sent, so
        // admission keeps seeing the work.
        ctx.in_flight
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for group in group_compatible(batch) {
            let n = group.len() as u64;
            process_group(group, &ctx);
            ctx.in_flight.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// The per-request explainer seed: engine seed mixed with the request's
/// stable content hash.
fn request_seed(engine_seed: u64, key_hash: u64) -> u64 {
    fnv1a_words([engine_seed, key_hash])
}

fn process_group(group: Vec<Job>, ctx: &WorkerContext) {
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(group.len());
    for job in group {
        // Drop requests whose budget burned away in the queue: answering
        // late is worse than answering "no" (the caller's deadline passed).
        let waited = now.duration_since(job.admitted);
        if waited > job.request.budget {
            ctx.metrics
                .rejected_deadline_expired
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = job
                .respond
                .send(Err(ServeError::Rejected(RejectReason::DeadlineExpired {
                    waited_us: waited.as_micros().min(u64::MAX as u128) as u64,
                    budget_us: job.request.budget.as_micros().min(u64::MAX as u128) as u64,
                })));
            continue;
        }
        // Re-check the cache: an identical request may have been explained
        // while this one sat in the queue.
        if let Some(attr) = ctx.cache.get(&job.key) {
            ctx.metrics
                .cache_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.metrics
                .completed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.metrics.queue_wait.record(waited);
            ctx.metrics.total.record(waited);
            let _ = job.respond.send(Ok(ExplainResponse {
                attribution: attr,
                model_version: job.key.model_version,
                cache_hit: true,
                batch_size: 1,
                queue_wait: waited,
                service_time: std::time::Duration::ZERO,
            }));
            continue;
        }
        live.push(job);
    }
    if live.is_empty() {
        return;
    }

    ctx.metrics.record_batch(live.len());
    ctx.metrics
        .cache_misses
        .fetch_add(live.len() as u64, std::sync::atomic::Ordering::Relaxed);

    let entry = Arc::clone(&live[0].entry);
    let method = live[0].key.method;
    let names = entry.feature_names.clone();
    let instances: Vec<Vec<f64>> = live.iter().map(|j| j.request.features.clone()).collect();
    let seeds: Vec<u64> = live
        .iter()
        .map(|j| request_seed(ctx.seed, j.key.stable_hash()))
        .collect();

    let t0 = Instant::now();
    // threads=1: parallelism comes from the worker pool itself. The
    // workspace keeps KernelSHAP's composite-row block allocated across
    // the whole group (it does not affect results).
    let result = explain_batch_seeded_ws(
        &instances,
        &seeds,
        1,
        CoalitionWorkspace::default,
        |x, seed, ws| match (&entry.model, method) {
            (ServeModel::Gbdt(m), ExplainMethod::TreeShap) => gbdt_shap(m, x, &names),
            (ServeModel::Forest(m), ExplainMethod::TreeShap) => forest_shap(m, x, &names),
            (_, ExplainMethod::TreeShap) => Err(XaiError::Input(format!(
                "tree-shap unsupported for `{}`",
                entry.model.kind()
            ))),
            (_, ExplainMethod::KernelShap { n_coalitions }) => {
                let cfg = KernelShapConfig {
                    n_coalitions,
                    ridge: 0.0,
                    seed,
                };
                kernel_shap_with(
                    entry.model.as_regressor(),
                    x,
                    &entry.background,
                    &names,
                    &cfg,
                    ws,
                )
            }
            (_, ExplainMethod::Lime { n_samples }) => {
                let cfg = LimeConfig {
                    n_samples,
                    seed,
                    ..LimeConfig::default()
                };
                lime(
                    entry.model.as_regressor(),
                    x,
                    &entry.background,
                    &names,
                    &cfg,
                )
                .map(|e| e.attribution)
            }
        },
    );
    let service = t0.elapsed();
    let per_request_ns = (service.as_nanos() / live.len() as u128).min(u64::MAX as u128) as u64;
    ctx.metrics.observe_service_ns(per_request_ns);

    match result {
        Ok(attrs) => {
            let batch_size = live.len();
            for (job, attr) in live.into_iter().zip(attrs) {
                let attr = Arc::new(attr);
                ctx.cache.insert(job.key.clone(), Arc::clone(&attr));
                let waited = now.duration_since(job.admitted);
                ctx.metrics.queue_wait.record(waited);
                ctx.metrics.service.record(service);
                ctx.metrics.total.record(waited + service);
                ctx.metrics
                    .completed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let _ = job.respond.send(Ok(ExplainResponse {
                    attribution: attr,
                    model_version: job.key.model_version,
                    cache_hit: false,
                    batch_size,
                    queue_wait: waited,
                    service_time: service,
                }));
            }
        }
        Err(e) => {
            // One failing instance fails its whole group (the batch call
            // reports the first error); callers see the explainer error.
            for job in live {
                ctx.metrics
                    .explain_errors
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let _ = job.respond.send(Err(ServeError::Explain(e.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_depend_on_content_not_order() {
        let a = request_seed(7, 100);
        let b = request_seed(7, 101);
        assert_ne!(a, b);
        assert_eq!(a, request_seed(7, 100), "pure function of (seed, key)");
        assert_ne!(a, request_seed(8, 100), "engine seed matters");
    }
}
