//! Worker threads: pull jobs, micro-batch them, run the explainers, fill
//! the cache, and answer the waiting clients.
//!
//! Dispatch is generic: a job's method resolves to a `Box<dyn Explainer>`
//! once (via [`crate::registry::ModelEntry::explainer`]) and everything
//! after that — direct execution, coalition planning, fused finishing — is
//! trait dispatch. No per-method `match` exists in this module, so a new
//! method added to the registry is served, batched, *and fused* with no
//! scheduler change.
//!
//! Determinism: stochastic explainers get a seed derived from the request's
//! *content* (cache key hash mixed with the engine seed), never from
//! arrival order, thread id, or batch composition. The same request on the
//! same engine therefore yields bit-for-bit the same attribution no matter
//! how it was batched.
//!
//! Allocation: each worker owns one [`CoalitionWorkspace`] for its whole
//! lifetime. The fused composite-row block — the largest transient buffer
//! in serving — grows to its high-water mark during the first few requests
//! and is then reused verbatim, so steady-state serving does not allocate
//! on the coalition hot path. Model evaluation inside that path goes
//! through [`crate::registry::ModelEntry::explain_regressor`], i.e. the
//! packed SoA engine for tree ensembles.

use crate::batcher::{gather, group_compatible, group_same_model, BatchPolicy};
use crate::cache::ShardedCache;
use crate::error::{RejectReason, ServeError};
use crate::metrics::Metrics;
use crate::queue::Job;
use crate::registry::ModelEntry;
use crate::request::{request_seed, service_class_key, ExplainResponse, Fidelity};
use crate::FusionPolicy;
use crossbeam::channel::Receiver;
use nfv_xai::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared state a worker needs (a slice of the engine).
pub struct WorkerContext {
    /// The shared explanation cache.
    pub cache: Arc<ShardedCache>,
    /// Shared metrics.
    pub metrics: Arc<Metrics>,
    /// Batch formation policy.
    pub policy: BatchPolicy,
    /// Engine seed mixed into every per-request explainer seed.
    pub seed: u64,
    /// Cross-request coalition fusion policy.
    pub fusion: FusionPolicy,
    /// Dequeued-but-unanswered job count, shared with admission control
    /// (see [`crate::queue::JobQueue::in_flight_handle`]).
    pub in_flight: Arc<AtomicU64>,
}

/// Spawns `n` worker threads consuming `rx`. Threads exit when every
/// sender is dropped and the queue drains.
pub fn spawn_workers(n: usize, rx: Receiver<Job>, ctx: Arc<WorkerContext>) -> Vec<JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let rx = rx.clone();
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("nfv-serve-worker-{i}"))
                .spawn(move || worker_loop(rx, ctx))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(rx: Receiver<Job>, ctx: Arc<WorkerContext>) {
    // The worker's arenas: persist across every micro-batch this thread
    // ever serves (not per-group), which is what makes steady state
    // allocation-free. Seeding keeps results independent of which worker
    // got the job, so reuse is invisible to callers.
    let mut ws = CoalitionWorkspace::default();
    let mut block = FusedBlock::default();
    while let Ok(first) = rx.recv() {
        let batch = gather(&rx, first, &ctx.policy);
        // Everything gathered is now invisible to the channel length;
        // count it as in-flight until each group's responses are sent, so
        // admission keeps seeing the work.
        ctx.in_flight
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if ctx.fusion.enabled {
            // Fusion groups by model identity only (methods mixed): every
            // job in a group shares one regressor, so coalition plans can
            // stack into one shared evaluation block.
            for group in group_same_model(batch) {
                let n = group.len() as u64;
                process_model_group(group, &ctx, &mut ws, &mut block);
                ctx.in_flight.fetch_sub(n, Ordering::Relaxed);
            }
        } else {
            for group in group_compatible(batch) {
                let n = group.len() as u64;
                process_group(group, &ctx, &mut ws);
                ctx.in_flight.fetch_sub(n, Ordering::Relaxed);
            }
        }
    }
}

/// Builds the [`ExplainContext`] for one job against its resolved entry:
/// the packed SoA engine where one exists, the registration-time base
/// value (bit-identical to a recompute), and the content-derived seed.
fn explain_context<'a>(entry: &'a ModelEntry, x: &'a [f64], seed: u64) -> ExplainContext<'a> {
    ExplainContext {
        model: entry.explain_regressor(),
        x,
        background: &entry.background,
        names: &entry.feature_names,
        base_hint: Some(entry.expected_output),
        seed,
    }
}

/// Runs one explanation end to end through the trait's direct path. Also
/// used by the engine's anytime/refinement paths, which must be
/// bit-identical to worker execution.
pub(crate) fn explain_one(
    entry: &ModelEntry,
    explainer: &dyn Explainer,
    x: &[f64],
    seed: u64,
    ws: &mut CoalitionWorkspace,
) -> Result<Attribution, XaiError> {
    explainer.direct(&explain_context(entry, x, seed), ws)
}

/// Drops deadline-expired jobs and answers queue-time cache hits, returning
/// the jobs that still need computing. Every job that exits here resolves
/// its single-flight entry (expired → `None`, hit → the attribution), so
/// followers are never left waiting on a job that will not run.
fn prefilter(group: Vec<Job>, ctx: &WorkerContext, now: Instant) -> Vec<Job> {
    let mut live: Vec<Job> = Vec::with_capacity(group.len());
    for job in group {
        // Drop requests whose budget burned away in the queue: answering
        // late is worse than answering "no" (the caller's deadline passed).
        let waited = now.duration_since(job.admitted);
        if waited > job.request.budget {
            ctx.metrics
                .rejected_deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            ctx.cache.complete_flight(&job.key, None);
            let _ = job
                .respond
                .send(Err(ServeError::Rejected(RejectReason::DeadlineExpired {
                    waited_us: waited.as_micros().min(u64::MAX as u128) as u64,
                    budget_us: job.request.budget.as_micros().min(u64::MAX as u128) as u64,
                })));
            continue;
        }
        // Re-check the cache: an identical request may have been explained
        // while this one sat in the queue.
        if let Some((attr, fidelity)) = ctx.cache.get(&job.key) {
            ctx.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            if matches!(
                fidelity,
                Fidelity::Quantized { .. } | Fidelity::CoarseQuantized { .. }
            ) {
                ctx.metrics.quantized_hits.fetch_add(1, Ordering::Relaxed);
            }
            ctx.metrics.completed.fetch_add(1, Ordering::Relaxed);
            ctx.metrics.queue_wait.record(waited);
            ctx.metrics.total.record(waited);
            ctx.cache
                .complete_flight(&job.key, Some((Arc::clone(&attr), fidelity)));
            let _ = job.respond.send(Ok(ExplainResponse {
                attribution: attr,
                model_version: job.key.model_version,
                cache_hit: true,
                batch_size: 1,
                queue_wait: waited,
                service_time: Duration::ZERO,
                fidelity,
            }));
            continue;
        }
        live.push(job);
    }
    live
}

/// Answers one job that produced `result`: fills the cache, resolves the
/// job's single-flight entry, records latency metrics, and responds.
fn deliver(
    job: Job,
    result: Result<Attribution, XaiError>,
    batch_size: usize,
    service: Duration,
    now: Instant,
    ctx: &WorkerContext,
) {
    match result {
        Ok(attr) => {
            let attr = Arc::new(attr);
            // Workers always run the full budget, so this insert is a
            // full-grade write: it upgrades any coarse anytime entry for
            // the same key in place.
            ctx.cache.insert(job.key.clone(), Arc::clone(&attr));
            ctx.cache
                .complete_flight(&job.key, Some((Arc::clone(&attr), Fidelity::Exact)));
            let waited = now.duration_since(job.admitted);
            ctx.metrics.queue_wait.record(waited);
            ctx.metrics.service.record(service);
            ctx.metrics.total.record(waited + service);
            ctx.metrics.completed.fetch_add(1, Ordering::Relaxed);
            let _ = job.respond.send(Ok(ExplainResponse {
                attribution: attr,
                model_version: job.key.model_version,
                cache_hit: false,
                batch_size,
                queue_wait: waited,
                service_time: service,
                fidelity: Fidelity::Exact,
            }));
        }
        Err(e) => {
            ctx.metrics.explain_errors.fetch_add(1, Ordering::Relaxed);
            ctx.cache.complete_flight(&job.key, None);
            let _ = job.respond.send(Err(ServeError::Explain(e)));
        }
    }
}

/// The unfused execution path for one *compatible* group (same model,
/// version, and method): resolve the group's explainer once, then explain
/// jobs one by one against the shared entry.
fn execute_compatible(live: Vec<Job>, ctx: &WorkerContext, ws: &mut CoalitionWorkspace) {
    if live.is_empty() {
        return;
    }
    let now = Instant::now();
    ctx.metrics.record_batch(live.len());
    ctx.metrics
        .cache_misses
        .fetch_add(live.len() as u64, Ordering::Relaxed);

    // Compatibility groups share (model id, version, method), so entry,
    // explainer, and service class are group-wide constants. Resolution
    // goes through the open method registry; a miss (method deregistered
    // after admission, factory refused the config) fails the group's jobs
    // individually rather than the worker.
    let entry = Arc::clone(&live[0].entry);
    let explainer = match entry.explainer(live[0].key.method) {
        Ok(e) => e,
        Err(e) => {
            for job in live {
                ctx.metrics.explain_errors.fetch_add(1, Ordering::Relaxed);
                ctx.cache.complete_flight(&job.key, None);
                let _ = job.respond.send(Err(e.clone()));
            }
            return;
        }
    };
    let class = service_class_key(live[0].key.model_version, live[0].key.method);

    // Explain in admission order, straight off each job's own feature
    // buffer — no instance/name/seed staging vectors. The worker arena is
    // threaded through, and a failure is scoped to its own request instead
    // of failing the whole group.
    let t0 = Instant::now();
    let results: Vec<Result<Attribution, XaiError>> = live
        .iter()
        .map(|job| {
            let seed = request_seed(ctx.seed, job.key.stable_hash());
            explain_one(&entry, &*explainer, &job.request.features, seed, &mut *ws)
        })
        .collect();
    let service = t0.elapsed();
    let per_request_ns = (service.as_nanos() / live.len() as u128).min(u64::MAX as u128) as u64;
    ctx.metrics.observe_service_class_ns(class, per_request_ns);

    let batch_size = live.len();
    for (job, result) in live.into_iter().zip(results) {
        deliver(job, result, batch_size, service, now, ctx);
    }
}

fn process_group(group: Vec<Job>, ctx: &WorkerContext, ws: &mut CoalitionWorkspace) {
    let live = prefilter(group, ctx, Instant::now());
    execute_compatible(live, ctx, ws);
}

/// The fusion scheduler: one *model* group (same model id + version,
/// methods mixed). Every job whose explainer is plan-capable — the whole
/// Shapley family plus per-instance permutation — is planned into the
/// shared [`FusedBlock`] and evaluated by a single `predict_block` call
/// spanning every request's rows; non-fusable methods (TreeSHAP, LIME)
/// run through the per-method compatible path.
///
/// Determinism: a plan materializes exactly the composite rows the direct
/// path would build, the block evaluates them with the same row-pure
/// kernel, and each finish runs the same reduction on its own slice — so
/// fused results are bit-identical to unfused ones (enforced by core
/// property tests and the serve integration tests).
fn process_model_group(
    group: Vec<Job>,
    ctx: &WorkerContext,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) {
    let live = prefilter(group, ctx, Instant::now());
    if live.is_empty() {
        return;
    }
    let mut fusable: Vec<(Job, Box<dyn Explainer>)> = Vec::with_capacity(live.len());
    let mut rest: Vec<Job> = Vec::new();
    for job in live {
        match job.entry.explainer(job.key.method) {
            Ok(explainer) if explainer.fusable() => fusable.push((job, explainer)),
            Ok(_) => rest.push(job),
            // A resolution failure is scoped to its own request, exactly
            // like a plan failure below: the rest of the group proceeds.
            Err(e) => {
                ctx.metrics.explain_errors.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                ctx.cache.complete_flight(&job.key, None);
                let _ = job.respond.send(Err(e));
            }
        }
    }
    if fusable.len() >= ctx.fusion.min_jobs.max(1) {
        execute_fused(fusable, ctx, ws, block);
    } else {
        // Too few to amortize anything: the direct path is cheaper. A
        // model group's fusable jobs may still span methods and budgets,
        // so split into compatible (per-method) groups first.
        for g in group_compatible(fusable.into_iter().map(|(job, _)| job).collect()) {
            execute_compatible(g, ctx, ws);
        }
    }
    for g in group_compatible(rest) {
        execute_compatible(g, ctx, ws);
    }
}

/// Plans every job in `jobs` into the shared block via its own explainer,
/// flushing (evaluate + finish) whenever the stacked rows cross the
/// policy's `max_rows` cap. The cap bounds the arena's high-water mark at
/// `max_rows` plus one plan's rows (a plan is appended before the check).
fn execute_fused(
    jobs: Vec<(Job, Box<dyn Explainer>)>,
    ctx: &WorkerContext,
    ws: &mut CoalitionWorkspace,
    block: &mut FusedBlock,
) {
    let entry = Arc::clone(&jobs[0].0.entry);
    let mut pending: Vec<(Job, Box<dyn ExplainPlan>)> = Vec::with_capacity(jobs.len());
    block.clear();
    for (job, explainer) in jobs {
        let planned = {
            let seed = request_seed(ctx.seed, job.key.stable_hash());
            let ectx = explain_context(&entry, &job.request.features, seed);
            explainer.plan(&ectx, &mut *ws, &mut *block)
        };
        match planned {
            Ok(plan) => pending.push((job, plan)),
            // A plan failure (zero budget, malformed input) is scoped to
            // its own request: the rest of the group still fuses.
            Err(e) => {
                ctx.metrics.explain_errors.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                ctx.cache.complete_flight(&job.key, None);
                let _ = job.respond.send(Err(ServeError::Explain(e)));
            }
        }
        if block.n_rows() >= ctx.fusion.max_rows {
            flush_fused(&mut pending, block, &entry, ctx);
        }
    }
    flush_fused(&mut pending, block, &entry, ctx);
}

/// Evaluates the shared block once and finishes every pending plan against
/// it, then delivers. Service time is attributed to each request in
/// proportion to its share of the block's rows (its actual footprint in
/// the fused evaluation), keeping per-class EWMAs honest when budgets mix.
fn flush_fused(
    pending: &mut Vec<(Job, Box<dyn ExplainPlan>)>,
    block: &mut FusedBlock,
    entry: &ModelEntry,
    ctx: &WorkerContext,
) {
    if pending.is_empty() {
        block.clear();
        return;
    }
    let now = Instant::now();
    let n = pending.len();
    let total_rows = block.n_rows();
    ctx.metrics.record_batch(n);
    ctx.metrics
        .cache_misses
        .fetch_add(n as u64, Ordering::Relaxed);
    if n >= 2 {
        ctx.metrics.record_fused_group(n, total_rows);
    }

    let t0 = Instant::now();
    block.evaluate(entry.explain_regressor());
    ctx.metrics
        .dedup_rows_saved
        .fetch_add(block.last_dedup_saved() as u64, Ordering::Relaxed);
    let results: Vec<Result<Attribution, XaiError>> = pending
        .iter()
        .map(|(_, plan)| plan.finish(block, &entry.feature_names))
        .collect();
    let service = t0.elapsed();
    let service_ns = service.as_nanos().min(u64::MAX as u128) as u64;

    for ((job, plan), result) in pending.drain(..).zip(results) {
        let job_ns = if total_rows > 0 {
            (service_ns as u128 * plan.n_rows() as u128 / total_rows as u128) as u64
        } else {
            service_ns / n as u64
        };
        let class = service_class_key(job.key.model_version, job.key.method);
        ctx.metrics.observe_service_class_ns(class, job_ns);
        deliver(job, result, n, Duration::from_nanos(job_ns), now, ctx);
    }
    block.clear();
}
