//! Serving errors. The key distinction: a [`RejectReason`] is the engine
//! *working as designed* (admission control shedding load it cannot serve
//! within contract), while the other [`ServeError`] variants are failures.

use nfv_xai::XaiError;
use std::fmt;

/// Why admission control refused a request.
///
/// Every variant carries the numbers the operator needs to size the
/// deployment: rejects are a control signal, not an exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue was full; the caller should back off.
    QueueFull {
        /// Configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline budget cannot be met given the current
    /// backlog and the observed service time.
    DeadlineUnmeetable {
        /// Predicted wait+service time, microseconds.
        estimated_us: u64,
        /// The request's budget, microseconds.
        budget_us: u64,
    },
    /// The request's budget expired while it sat in the queue; it was
    /// dropped by the worker instead of being explained late.
    DeadlineExpired {
        /// Time spent queued, microseconds.
        waited_us: u64,
        /// The request's budget, microseconds.
        budget_us: u64,
    },
    /// No model registered under the requested id.
    UnknownModel {
        /// The id that failed to resolve.
        model_id: String,
    },
    /// The request itself is malformed (wrong feature count, non-finite
    /// features, method unsupported by the model).
    InvalidRequest {
        /// Human-readable cause.
        reason: String,
    },
    /// No explainer registered under the requested method name/id. Unlike
    /// [`RejectReason::InvalidRequest`] (a model/method mismatch), this is
    /// a dispatch miss: nothing in the process's `MethodRegistry` answers
    /// to the name, so the wire tier can answer typed instead of treating
    /// an unknown name as a protocol error.
    UnknownMethod {
        /// The method name (or `#hex` id escape) that failed to resolve.
        method: String,
    },
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// The caller pipelined more concurrent requests over one connection
    /// than the server's per-connection depth limit allows. Raised by
    /// the wire tier, not by in-process admission: the fix is on the
    /// client (cap its pipeline), so the reject names both numbers.
    PipelineTooDeep {
        /// Requests already in flight on the connection.
        depth: u64,
        /// The server's configured per-connection limit.
        limit: u64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::DeadlineUnmeetable {
                estimated_us,
                budget_us,
            } => write!(
                f,
                "deadline unmeetable: estimated {estimated_us}us > budget {budget_us}us"
            ),
            RejectReason::DeadlineExpired {
                waited_us,
                budget_us,
            } => write!(
                f,
                "deadline expired in queue: waited {waited_us}us of {budget_us}us budget"
            ),
            RejectReason::UnknownModel { model_id } => {
                write!(f, "unknown model `{model_id}`")
            }
            RejectReason::InvalidRequest { reason } => {
                write!(f, "invalid request: {reason}")
            }
            RejectReason::UnknownMethod { method } => {
                write!(f, "no explainer registered for method `{method}`")
            }
            RejectReason::ShuttingDown => write!(f, "engine shutting down"),
            RejectReason::PipelineTooDeep { depth, limit } => write!(
                f,
                "pipeline too deep: {depth} requests in flight on this connection, limit {limit}"
            ),
        }
    }
}

/// Anything `ServeEngine::explain` can return besides a result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request (by design, under load).
    Rejected(RejectReason),
    /// The underlying explainer failed.
    Explain(XaiError),
    /// Engine-internal failure (worker died, response channel broken).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Explain(e) => write!(f, "explainer error: {e}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<XaiError> for ServeError {
    fn from(e: XaiError) -> Self {
        ServeError::Explain(e)
    }
}

impl ServeError {
    /// True when this is a load-shedding reject rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, ServeError::Rejected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_numbers() {
        let r = RejectReason::DeadlineUnmeetable {
            estimated_us: 900,
            budget_us: 100,
        };
        let s = ServeError::Rejected(r).to_string();
        assert!(s.contains("900") && s.contains("100"), "{s}");
        assert!(ServeError::Rejected(RejectReason::ShuttingDown).is_reject());
        assert!(!ServeError::Internal("x".into()).is_reject());
    }
}
