//! The bounded admission queue: a crossbeam MPMC channel wrapped with
//! reject-don't-block semantics and a deadline-feasibility check.

use crate::cache::CacheKey;
use crate::error::{RejectReason, ServeError};
use crate::metrics::Metrics;
use crate::registry::ModelEntry;
use crate::request::{service_class_key, ExplainRequest, ExplainResponse};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One admitted unit of work travelling from client thread to worker.
pub struct Job {
    /// The original request.
    pub request: ExplainRequest,
    /// Resolved registry entry (pinned: a concurrent re-registration does
    /// not change what this job is explained against).
    pub entry: Arc<ModelEntry>,
    /// Cache identity (also the seed source).
    pub key: CacheKey,
    /// When the job was admitted (queue-wait measurement + deadline base).
    pub admitted: Instant,
    /// Where the worker sends the outcome; capacity 1, never blocks.
    pub respond: Sender<Result<ExplainResponse, ServeError>>,
}

/// Consecutive deadline-unmeetable rejects of one service class before
/// admission lets a probe request through to resample the class EWMA.
/// Small enough that a poisoned estimate recovers within a handful of
/// requests; large enough that a genuinely overloaded class still sheds
/// ~87% of its doomed load.
pub const PROBE_AFTER: u64 = 8;

/// The bounded queue plus the admission logic in front of it.
pub struct JobQueue {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    capacity: usize,
    workers: usize,
    /// Jobs pulled off the channel but not yet answered. Workers keep this
    /// current via [`JobQueue::in_flight_handle`]; without it, admission
    /// only sees the channel length and underestimates the backlog by up
    /// to one full batch per worker.
    in_flight: Arc<AtomicU64>,
}

impl JobQueue {
    /// Creates a queue of `capacity` jobs feeding `workers` workers.
    pub fn new(capacity: usize, workers: usize) -> Self {
        let capacity = capacity.max(1);
        let (tx, rx) = channel::bounded(capacity);
        JobQueue {
            tx,
            rx,
            capacity,
            workers: workers.max(1),
            in_flight: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The consuming end, for worker threads.
    pub fn receiver(&self) -> Receiver<Job> {
        self.rx.clone()
    }

    /// Shared in-flight counter. Workers `fetch_add` when they take jobs
    /// off the channel and `fetch_sub` once responses are sent, so
    /// admission sees dequeued-but-unfinished work.
    pub fn in_flight_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.in_flight)
    }

    /// Jobs dequeued by workers but not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Admission: feasibility check, then a non-blocking enqueue.
    ///
    /// Feasibility model: the backlog ahead of this request — everything
    /// still queued *plus* jobs workers have dequeued but not finished —
    /// is served by `workers` at the EWMA per-request service time of this
    /// request's (model-version, method) class, falling back to the global
    /// EWMA for classes never observed. Per-class pricing matters in mixed
    /// workloads: a global blend of cheap TreeSHAP and expensive KernelSHAP
    /// rejects feasible fast requests and admits doomed slow ones. The
    /// estimate is compared against the budget *remaining* at admission
    /// time (the budget runs from `Job.admitted`, which the caller stamps
    /// before any admission work). If even this optimistic estimate misses,
    /// reject now instead of making the caller discover it the slow way.
    ///
    /// Estimate recovery: a class EWMA poisoned by one slow outlier can
    /// reject every subsequent request of that class, and since rejected
    /// requests produce no service samples the estimate would stay wrong
    /// forever. Two mechanisms break the loop: every reject multiplicatively
    /// ages the class estimate (× 7/8), and after [`PROBE_AFTER`]
    /// consecutive rejects one probe request is admitted anyway so the
    /// class gets a fresh measurement.
    ///
    /// The rejected `Job` rides back boxed so the `Err` variant stays
    /// small on the (hot) `Ok` path; rejection is the cold path and can
    /// afford the allocation.
    pub fn admit(&self, job: Job, metrics: &Metrics) -> Result<(), (RejectReason, Box<Job>)> {
        let class = service_class_key(job.key.model_version, job.request.method);
        let ewma_ns = metrics.service_estimate_ns(class);
        if ewma_ns > 0 {
            let backlog = self.tx.len() as u64 + self.in_flight.load(Ordering::Relaxed);
            let est_ns = ewma_ns * (backlog / self.workers as u64 + 1);
            let budget_ns = job.request.budget.as_nanos().min(u64::MAX as u128) as u64;
            let spent_ns = job.admitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let remaining_ns = budget_ns.saturating_sub(spent_ns);
            if est_ns > remaining_ns {
                let streak = metrics.note_class_reject(class);
                if streak > 0 && streak.is_multiple_of(PROBE_AFTER) {
                    // Probe: admit past the estimate so the worker can
                    // resample the class. The streak keeps counting, so
                    // a class that is genuinely too slow probes only once
                    // per PROBE_AFTER rejects, not on every request.
                    metrics.probe_admits.fetch_add(1, Ordering::Relaxed);
                } else {
                    return Err((
                        RejectReason::DeadlineUnmeetable {
                            estimated_us: est_ns / 1_000,
                            budget_us: remaining_ns / 1_000,
                        },
                        Box::new(job),
                    ));
                }
            } else {
                metrics.note_class_admit(class);
            }
        }
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => Err((
                RejectReason::QueueFull {
                    capacity: self.capacity,
                },
                Box::new(job),
            )),
            Err(TrySendError::Disconnected(job)) => {
                Err((RejectReason::ShuttingDown, Box::new(job)))
            }
        }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ExplainMethod;
    use nfv_ml::prelude::*;
    use nfv_xai::prelude::*;
    use std::time::Duration;

    fn test_job(budget: Duration) -> Job {
        test_job_with(ExplainMethod::KernelShap { n_coalitions: 8 }, budget)
    }

    fn test_job_with(method: ExplainMethod, budget: Duration) -> Job {
        let data = nfv_data::dataset::Dataset::new(
            vec!["a".into()],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            nfv_data::dataset::Task::Regression,
        )
        .unwrap();
        let model = LinearRegression::fit(&data, 1e-6).unwrap();
        let bg = Background::from_rows(vec![vec![0.0]]).unwrap();
        let entry = Arc::new(crate::registry::ModelEntry {
            model: crate::registry::ServeModel::Linear(model),
            version: 1,
            feature_names: vec!["a".into()],
            background: bg,
            packed: None,
            expected_output: 0.0,
            groups: FeatureGroups::new(vec!["all".into()], vec![0]).unwrap(),
            trees: None,
        });
        let request = ExplainRequest {
            model_id: "m".into(),
            features: vec![0.5],
            method,
            budget,
        };
        let key = CacheKey::build("m", 1, request.method, &request.features, 1e-6).unwrap();
        let (respond, _keep) = channel::bounded(1);
        // Leak the receiver handle so sends would succeed if attempted.
        std::mem::forget(_keep);
        Job {
            request,
            entry,
            key,
            admitted: Instant::now(),
            respond,
        }
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = JobQueue::new(2, 1);
        let m = Metrics::new();
        assert!(q.admit(test_job(Duration::from_secs(1)), &m).is_ok());
        assert!(q.admit(test_job(Duration::from_secs(1)), &m).is_ok());
        let (reason, _) = q.admit(test_job(Duration::from_secs(1)), &m).unwrap_err();
        assert_eq!(reason, RejectReason::QueueFull { capacity: 2 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn infeasible_deadline_is_rejected_up_front() {
        let q = JobQueue::new(8, 1);
        let m = Metrics::new();
        // Teach the EWMA that one request costs ~10ms.
        m.observe_service_ns(10_000_000);
        let (reason, _) = q
            .admit(test_job(Duration::from_micros(50)), &m)
            .unwrap_err();
        assert!(
            matches!(reason, RejectReason::DeadlineUnmeetable { .. }),
            "{reason:?}"
        );
        // A generous budget is admitted.
        assert!(q.admit(test_job(Duration::from_secs(1)), &m).is_ok());
    }

    #[test]
    fn in_flight_work_counts_toward_the_backlog() {
        let q = JobQueue::new(8, 1);
        let m = Metrics::new();
        // One request costs ~10ms; the channel is empty but the single
        // worker is busy with 3 dequeued jobs → estimate (3/1 + 1) × 10ms
        // = 40ms, so a 25ms budget must be rejected. The old channel-only
        // backlog saw 0 queued and wrongly admitted.
        m.observe_service_ns(10_000_000);
        q.in_flight_handle().store(3, Ordering::Relaxed);
        assert_eq!(q.in_flight(), 3);
        assert!(q.is_empty(), "nothing queued; pressure is all in-flight");
        let (reason, _) = q
            .admit(test_job(Duration::from_millis(25)), &m)
            .unwrap_err();
        assert!(
            matches!(reason, RejectReason::DeadlineUnmeetable { .. }),
            "{reason:?}"
        );
        // Enough budget for the same backlog is still admitted.
        assert!(q.admit(test_job(Duration::from_millis(200)), &m).is_ok());
        // Once the worker drains, the tight budget becomes feasible again.
        q.in_flight_handle().store(0, Ordering::Relaxed);
        assert!(q.admit(test_job(Duration::from_millis(25)), &m).is_ok());
    }

    #[test]
    fn mixed_workloads_are_priced_per_class() {
        let q = JobQueue::new(8, 1);
        let m = Metrics::new();
        let tree = ExplainMethod::TreeShap;
        let kernel = ExplainMethod::KernelShap { n_coalitions: 8 };
        // Workers have observed the two classes at very different costs:
        // TreeSHAP ~40µs, KernelSHAP ~10ms (version 1 matches test jobs).
        m.observe_service_class_ns(service_class_key(1, tree), 40_000);
        m.observe_service_class_ns(service_class_key(1, kernel), 10_000_000);
        // Under a single global EWMA (the blend, here ~1.3ms) both 5ms
        // requests would be admitted — including the KernelSHAP one that
        // cannot possibly finish in time. Per-class pricing splits them.
        let budget = Duration::from_millis(5);
        let (reason, _) = q.admit(test_job_with(kernel, budget), &m).unwrap_err();
        assert!(
            matches!(reason, RejectReason::DeadlineUnmeetable { .. }),
            "{reason:?}"
        );
        assert!(
            q.admit(test_job_with(tree, budget), &m).is_ok(),
            "the cheap class must not be punished for the expensive one"
        );
        // A class never observed falls back to the global blend.
        let lime = ExplainMethod::Lime { n_samples: 16 };
        assert_eq!(
            m.service_estimate_ns(service_class_key(1, lime)),
            m.ewma_service_ns()
        );
    }

    #[test]
    fn poisoned_class_estimate_recovers_without_warm_up() {
        let q = JobQueue::new(64, 1);
        let m = Metrics::new();
        let kernel = ExplainMethod::KernelShap { n_coalitions: 8 };
        let class = service_class_key(1, kernel);
        // Poison the class estimate with one pathological 10s sample. The
        // true cost is ~1ms, so every 100ms-budget request is feasible —
        // but the estimate says none are, and pre-probe admission would
        // reject this class forever (rejects produce no fresh samples).
        m.observe_service_class_ns(class, 10_000_000_000);
        let budget = Duration::from_millis(100);
        let mut rejected = 0u64;
        let mut admitted = 0u64;
        for _ in 0..64 {
            match q.admit(test_job_with(kernel, budget), &m) {
                Ok(()) => admitted += 1,
                Err((reason, _)) => {
                    assert!(
                        matches!(reason, RejectReason::DeadlineUnmeetable { .. }),
                        "{reason:?}"
                    );
                    rejected += 1;
                    // The worker the probe would reach: report the true cost.
                    if m.snapshot().probe_admits > 0 {
                        m.observe_service_class_ns(class, 1_000_000);
                    }
                }
            }
        }
        assert!(rejected > 0, "the poisoned estimate must bite first");
        assert!(
            admitted > 0,
            "probing + ageing must re-open the class without external help"
        );
        // Once recovered, the class stays open: feasibility passes reset
        // the streak and the estimate reflects reality again.
        assert!(q.admit(test_job_with(kernel, budget), &m).is_ok());
        assert!(m.class_service.get(class).unwrap() < 100_000_000);
        let stats = m.snapshot();
        assert!(stats.probe_admits >= 1, "at least one probe fired");
    }

    #[test]
    fn admission_compares_against_remaining_budget() {
        let q = JobQueue::new(8, 1);
        let m = Metrics::new();
        m.observe_service_ns(10_000_000);
        // The job was stamped 30ms ago; of its 35ms budget only ~5ms is
        // left, which one 10ms service cannot meet.
        let mut job = test_job(Duration::from_millis(35));
        job.admitted = Instant::now() - Duration::from_millis(30);
        let (reason, _) = q.admit(job, &m).unwrap_err();
        assert!(
            matches!(reason, RejectReason::DeadlineUnmeetable { .. }),
            "{reason:?}"
        );
    }
}
